#include "sampling/sequence.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace isasgd::sampling {

SampleSequence SampleSequence::weighted(std::span<const double> weights,
                                        std::size_t length,
                                        std::uint64_t seed) {
  AliasTable table(weights);
  util::Rng rng(seed);
  std::vector<std::uint32_t> out(length);
  for (auto& v : out) v = static_cast<std::uint32_t>(table.sample(rng));
  return SampleSequence(std::move(out));
}

SampleSequence SampleSequence::uniform(std::size_t n, std::size_t length,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> out(length);
  for (auto& v : out) {
    v = static_cast<std::uint32_t>(util::uniform_index(rng, n));
  }
  return SampleSequence(std::move(out));
}

SampleSequence SampleSequence::permutation(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  util::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(out[i - 1], out[j]);
  }
  return SampleSequence(std::move(out));
}

double SampleSequence::empirical_frequency(std::uint32_t i) const noexcept {
  if (indices_.empty()) return 0.0;
  const auto count = std::count(indices_.begin(), indices_.end(), i);
  return static_cast<double>(count) / static_cast<double>(indices_.size());
}

StratifiedSequence::StratifiedSequence(std::span<const double> weights,
                                       std::size_t length, std::uint64_t seed,
                                       std::size_t min_visits)
    : rng_(seed) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("StratifiedSequence: empty weights");
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "StratifiedSequence: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("StratifiedSequence: all weights zero");
  }
  if (length == 0) {
    throw std::invalid_argument("StratifiedSequence: zero length");
  }

  // Systematic resampling: one uniform offset, `length` equally spaced
  // strata over the cumulative distribution. count_i = number of strata
  // points landing in i's probability interval — the minimum-variance
  // unbiased integerisation of length·p_i.
  counts_.assign(n, 0);
  const double u = util::uniform_double(rng_);
  double cumulative = 0;
  std::size_t k = 0;  // next stratum index
  for (std::size_t i = 0; i < n; ++i) {
    cumulative += weights[i] / total;
    while (k < length &&
           (static_cast<double>(k) + u) / static_cast<double>(length) <
               cumulative) {
      ++counts_[i];
      ++k;
    }
  }
  // Floating-point slack: assign any unplaced strata to the last outcome.
  for (; k < length; ++k) ++counts_[n - 1];

  // Coverage floor.
  for (auto& c : counts_) c = std::max(c, min_visits);

  std::size_t total_visits = 0;
  for (std::size_t c : counts_) total_visits += c;
  indices_.reserve(total_visits);
  for (std::size_t i = 0; i < n; ++i) {
    indices_.insert(indices_.end(), counts_[i],
                    static_cast<std::uint32_t>(i));
  }
  reshuffle();
}

void StratifiedSequence::reshuffle() {
  for (std::size_t i = indices_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng_, i);
    std::swap(indices_[i - 1], indices_[j]);
  }
}

ShardedSequence::ShardedSequence(std::vector<std::size_t> shard_sizes,
                                 std::uint64_t seed)
    : shard_sizes_(std::move(shard_sizes)), seed_(seed) {
  for (std::size_t rows : shard_sizes_) total_rows_ += rows;
  shard_order_.resize(shard_sizes_.size());
  begin_epoch(1);
}

void ShardedSequence::begin_epoch(std::size_t epoch) {
  epoch_ = epoch;
  std::iota(shard_order_.begin(), shard_order_.end(), 0u);
  // Seeded from (seed, epoch) only — never from how the previous epoch was
  // consumed — so schedules are identical across backends and replays.
  util::Rng rng(util::derive_seed(seed_, epoch));
  for (std::size_t i = shard_order_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(shard_order_[i - 1], shard_order_[j]);
  }
}

std::span<const std::uint32_t> ShardedSequence::rows(std::size_t s) {
  const std::size_t rows = shard_sizes_.at(s);
  row_scratch_.resize(rows);
  std::iota(row_scratch_.begin(), row_scratch_.end(), 0u);
  // Pure function of (seed, epoch, shard): interleave the shard ordinal into
  // the seed derivation so two shards of one epoch draw distinct streams.
  util::Rng rng(util::derive_seed(util::derive_seed(seed_, epoch_), s + 1));
  for (std::size_t i = rows; i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(row_scratch_[i - 1], row_scratch_[j]);
  }
  return row_scratch_;
}

ReshuffledSequence::ReshuffledSequence(std::span<const double> weights,
                                       std::size_t length, std::uint64_t seed)
    : rng_(seed) {
  AliasTable table(weights);
  indices_.resize(length);
  for (auto& v : indices_) v = static_cast<std::uint32_t>(table.sample(rng_));
}

ReshuffledSequence::ReshuffledSequence(std::size_t n, std::size_t length,
                                       std::uint64_t seed)
    : rng_(seed) {
  indices_.resize(length);
  for (auto& v : indices_) {
    v = static_cast<std::uint32_t>(util::uniform_index(rng_, n));
  }
}

void ReshuffledSequence::reshuffle() {
  for (std::size_t i = indices_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng_, i);
    std::swap(indices_[i - 1], indices_[j]);
  }
}

BlockSequence::BlockSequence(Mode mode, std::span<const double> weights,
                             std::size_t epoch_length, std::uint64_t seed,
                             std::size_t block_size, std::size_t min_visits)
    : mode_(mode), block_size_(std::max<std::size_t>(1, block_size)) {
  switch (mode_) {
    case Mode::kIid:
      table_.emplace(weights);  // once — never again unless rebuild()
      epoch_length_ = epoch_length;
      buffer_.resize(std::min(block_size_, epoch_length_));
      block_data_ = buffer_.data();
      break;
    case Mode::kReshuffle:
      reshuffled_ = std::make_unique<ReshuffledSequence>(weights, epoch_length,
                                                         seed);
      epoch_length_ = reshuffled_->size();
      break;
    case Mode::kStratified:
      stratified_ = std::make_unique<StratifiedSequence>(weights, epoch_length,
                                                         seed, min_visits);
      epoch_length_ = stratified_->size();
      break;
  }
  // Until begin_epoch, the stream is exhausted (refill throws on a draw
  // attempt).
  produced_ = epoch_length_;
  cursor_ = block_end_ = 0;
}

void BlockSequence::begin_epoch(std::size_t epoch, std::uint64_t epoch_seed) {
  switch (mode_) {
    case Mode::kIid:
      draw_rng_.reseed(epoch_seed);
      break;
    case Mode::kReshuffle:
      if (epoch > 1) reshuffled_->reshuffle();
      block_data_ = reshuffled_->view().data();
      break;
    case Mode::kStratified:
      if (epoch > 1) stratified_->reshuffle();
      block_data_ = stratified_->view().data();
      break;
  }
  epoch_ = epoch;
  produced_ = 0;
  cursor_ = block_end_ = 0;
}

void BlockSequence::rewind_to(std::size_t epoch) {
  if (epoch < epoch_) {
    throw std::logic_error(
        "BlockSequence::rewind_to: cannot rewind backwards (at epoch " +
        std::to_string(epoch_) + ", requested " + std::to_string(epoch) +
        ") — rebuild the sequence and fast-forward instead");
  }
  // Only the shuffled modes carry cross-epoch sampler state (the reshuffle
  // stream advanced by each begin_epoch); replay exactly those calls. The
  // epoch_seed is irrelevant here — the shuffled modes ignore it, and the
  // i.i.d. mode's stream is reseeded by the next real begin_epoch anyway.
  if (mode_ != Mode::kIid) {
    for (std::size_t e = epoch_ + 1; e <= epoch; ++e) begin_epoch(e);
  }
  epoch_ = epoch;
  // Epoch `epoch` was fully consumed before the fence the caller is
  // restoring; mark the stream exhausted until the next begin_epoch.
  produced_ = epoch_length_;
  cursor_ = block_end_ = 0;
}

void BlockSequence::rebuild(std::span<const double> weights) {
  if (mode_ != Mode::kIid) {
    throw std::logic_error(
        "BlockSequence::rebuild: only the i.i.d. mode re-weights in place "
        "(the shuffled modes' multiset is fixed at construction)");
  }
  table_.emplace(weights);
}

void BlockSequence::refill() {
  // next() past epoch_length(), or before the first begin_epoch, lands
  // here with nothing left to produce — a caller bug. Loud in every build:
  // the alternative is silently re-serving stale indices into a solver.
  // Costs one branch per *refill*, never per draw.
  if (produced_ >= epoch_length_) {
    throw std::logic_error(
        "BlockSequence: next() past epoch_length() or before begin_epoch()");
  }
  const std::size_t remaining = epoch_length_ - produced_;
  const std::size_t count = std::min(block_size_, remaining);
  switch (mode_) {
    case Mode::kIid:
      // One alias draw per index — identical stream to the pre-materialized
      // SampleSequence::weighted under the same (weights, epoch seed).
      for (std::size_t k = 0; k < count; ++k) {
        buffer_[k] = static_cast<std::uint32_t>(table_->sample(draw_rng_));
      }
      block_data_ = buffer_.data();
      cursor_ = 0;
      block_end_ = count;
      break;
    case Mode::kReshuffle:
    case Mode::kStratified:
      // Zero copy: the window slides over the reference class's multiset.
      cursor_ = produced_;
      block_end_ = produced_ + count;
      break;
  }
  produced_ += count;
}

std::span<const std::uint32_t> BlockSequence::next_block() {
  // Serve whatever the cursor has not consumed yet, refilling when drained —
  // mixing next() and next_block() never skips or repeats an index.
  if (cursor_ == block_end_) {
    if (produced_ == epoch_length_) return {};
    refill();
  }
  const std::span<const std::uint32_t> out(block_data_ + cursor_,
                                           block_end_ - cursor_);
  cursor_ = block_end_;
  return out;
}

}  // namespace isasgd::sampling
