// Inverse-CDF weighted sampler: O(n) build, O(log n) per draw.
//
// Kept alongside the alias table for two reasons: it is the natural baseline
// in the alias-vs-CDF micro benchmark, and its cumulative array doubles as
// the exact-quantile oracle the distribution tests check the alias table
// against.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace isasgd::sampling {

/// Binary-search sampler over a fixed weight vector.
class CdfSampler {
 public:
  /// Builds from non-negative weights. Same validation as AliasTable.
  explicit CdfSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws one index with probability proportional to its weight.
  template <class Gen>
  [[nodiscard]] std::size_t sample(Gen& gen) const noexcept {
    return index_of(util::uniform_double(gen));
  }

  /// Maps a uniform variate u ∈ [0,1) to its outcome (exposed for tests).
  [[nodiscard]] std::size_t index_of(double u) const noexcept;

  /// Normalised probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
  }

 private:
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_.back() == 1
};

}  // namespace isasgd::sampling
