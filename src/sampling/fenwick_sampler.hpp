// Fenwick-tree (binary indexed tree) dynamic weighted sampler.
//
// The alias table is O(1) per draw but frozen: any weight change forces an
// O(n) rebuild. The adaptive-importance extension (SolverOptions::
// adaptive_importance, the Eq.-11 "completely impractical" ideal) re-weights
// samples as the model moves, and rebuilding an alias table per refresh is
// exactly the cost the paper is trying to avoid. A Fenwick tree over the
// weights supports both `sample` and `set_weight` in O(log n), turning the
// full-rebuild refresh into an incremental one; bench/micro_kernels
// quantifies the draw-cost gap against AliasTable and CdfSampler.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace isasgd::sampling {

/// Mutable weighted sampler: O(log n) draw, O(log n) single-weight update.
class FenwickSampler {
 public:
  /// Builds from non-negative weights (need not be normalised). Throws
  /// std::invalid_argument if empty, any weight is negative/non-finite, or
  /// all weights are zero (same contract as AliasTable).
  explicit FenwickSampler(std::span<const double> weights);

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return weight_.size(); }

  /// Current (unnormalised) weight of outcome i.
  [[nodiscard]] double weight(std::size_t i) const noexcept {
    return weight_[i];
  }

  /// Sum of all weights.
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Normalised probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return weight_[i] / total_;
  }

  /// Sets the weight of outcome i (must be non-negative and finite; the
  /// total must stay positive). O(log n).
  void set_weight(std::size_t i, double w);

  /// Prefix sum Σ_{j<i} weight(j). O(log n); exposed for tests.
  [[nodiscard]] double prefix_sum(std::size_t i) const noexcept;

  /// Draws one index with probability proportional to its current weight.
  template <class Gen>
  [[nodiscard]] std::size_t sample(Gen& gen) const noexcept {
    return locate(util::uniform_double(gen) * total_);
  }

  /// Index i such that prefix_sum(i) <= target < prefix_sum(i+1), clamped to
  /// the last positive-weight outcome (guards the target == total_ edge from
  /// floating-point roundup). Exposed for tests.
  [[nodiscard]] std::size_t locate(double target) const noexcept;

 private:
  std::vector<double> tree_;    // 1-indexed Fenwick partial sums
  std::vector<double> weight_;  // current raw weights
  double total_ = 0;
  std::size_t mask_ = 0;  // highest power of two <= size()
};

}  // namespace isasgd::sampling
