// Compact binary serialization for datasets and models.
//
// LibSVM text parsing dominates load time for the multi-gigabyte datasets
// the paper targets; the binary cache loads at memcpy speed. Models are
// saved so a trained classifier can be reused without retraining (the
// libsvm_train example's --save-model/--load-model flags).
//
// Format (little-endian, as on every platform this library targets):
//   dataset:  magic "ISASGDD1" | u64 dim | u64 rows | u64 nnz
//             | row_ptr  (rows+1 × u64)
//             | col_idx  (nnz × u32)
//             | values   (nnz × f64)
//             | labels   (rows × f64)
//   model:    magic "ISASGDW1" | u64 dim | weights (dim × f64)
//
// All readers validate the magic, the header arithmetic and the CSR
// invariants (via the CsrMatrix constructor), so a truncated or corrupted
// file fails loudly instead of producing garbage.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/csr_matrix.hpp"

namespace isasgd::io {

/// Serialises a dataset. Throws std::runtime_error on I/O failure.
void write_dataset_binary(std::ostream& out, const sparse::CsrMatrix& data);
void write_dataset_binary_file(const std::string& path,
                               const sparse::CsrMatrix& data);

/// Deserialises a dataset. Throws std::runtime_error on bad magic,
/// truncation, or invariant violations.
sparse::CsrMatrix read_dataset_binary(std::istream& in);
sparse::CsrMatrix read_dataset_binary_file(const std::string& path);

/// Serialises a model vector.
void write_model_binary(std::ostream& out, std::span<const double> weights);
void write_model_binary_file(const std::string& path,
                             std::span<const double> weights);

/// Deserialises a model vector.
std::vector<double> read_model_binary(std::istream& in);
std::vector<double> read_model_binary_file(const std::string& path);

}  // namespace isasgd::io
