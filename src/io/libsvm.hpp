// LibSVM text format reader/writer.
//
// All four datasets the paper evaluates (News20, URL, KDD-Algebra,
// KDD-Bridge) ship in this format:
//
//   <label> <index>:<value> <index>:<value> ...
//
// with 1-based, ascending indices. The reader is tolerant of blank lines,
// '#' comments, \r\n endings and unsorted indices; hard format errors carry
// the offending line number.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr_matrix.hpp"

namespace isasgd::io {

struct LibsvmReadOptions {
  /// Force at least this dimensionality (LibSVM files do not record d).
  std::size_t dim_hint = 0;
  /// Map labels {0,1} / {-1,+1} / {1,2} onto ±1 automatically.
  bool normalize_binary_labels = true;
  /// Stop after this many rows (0 = read everything). Lets benches subsample
  /// the giant KDD files if a user supplies real copies.
  std::size_t max_rows = 0;
};

/// Parses a LibSVM stream into a CsrMatrix. Throws std::runtime_error with
/// the 1-based line number on malformed input.
sparse::CsrMatrix read_libsvm(std::istream& in,
                              const LibsvmReadOptions& options = {});

/// Convenience overload opening `path`. Throws if the file cannot be opened.
sparse::CsrMatrix read_libsvm_file(const std::string& path,
                                   const LibsvmReadOptions& options = {});

/// Serialises a dataset back to LibSVM text (1-based indices, %.17g values —
/// round-trip exact for doubles).
void write_libsvm(std::ostream& out, const sparse::CsrMatrix& data);

/// Convenience overload writing to `path`.
void write_libsvm_file(const std::string& path, const sparse::CsrMatrix& data);

}  // namespace isasgd::io
