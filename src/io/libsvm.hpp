// LibSVM text format reader/writer.
//
// All four datasets the paper evaluates (News20, URL, KDD-Algebra,
// KDD-Bridge) ship in this format:
//
//   <label> <index>:<value> <index>:<value> ...
//
// with 1-based, ascending indices. The reader is tolerant of blank lines,
// '#' comments, \r\n endings and unsorted indices; hard format errors carry
// the offending line number.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sparse/csr_matrix.hpp"

namespace isasgd::io {

struct LibsvmReadOptions {
  /// Force at least this dimensionality (LibSVM files do not record d).
  std::size_t dim_hint = 0;
  /// Map labels {0,1} / {-1,+1} / {1,2} onto ±1 automatically.
  bool normalize_binary_labels = true;
  /// Stop after this many rows (0 = read everything). Lets benches subsample
  /// the giant KDD files if a user supplies real copies.
  std::size_t max_rows = 0;
  /// Added to reported line numbers. A reader positioned mid-file by a
  /// LibsvmIndex passes shard_first_line[s] - 1 so parse errors still name
  /// the true line in the file.
  std::size_t line_number_offset = 0;
};

/// Parses a LibSVM stream into a CsrMatrix. Throws std::runtime_error with
/// the 1-based line number on malformed input.
sparse::CsrMatrix read_libsvm(std::istream& in,
                              const LibsvmReadOptions& options = {});

/// Convenience overload opening `path`. Throws if the file cannot be opened.
sparse::CsrMatrix read_libsvm_file(const std::string& path,
                                   const LibsvmReadOptions& options = {});

/// Serialises a dataset back to LibSVM text (1-based indices, %.17g values —
/// round-trip exact for doubles).
void write_libsvm(std::ostream& out, const sparse::CsrMatrix& data);

/// Convenience overload writing to `path`.
void write_libsvm_file(const std::string& path, const sparse::CsrMatrix& data);

/// Shard index of a LibSVM stream: one validating scan that records where
/// each `rows_per_shard`-row shard starts (byte offset + 1-based line
/// number, so a later partial read can still report exact line numbers) and
/// the global shape, without materialising any data. data::StreamingSource
/// seeks by this index to load shards on demand.
struct LibsvmIndex {
  std::size_t rows = 0;
  std::size_t dim = 0;  ///< max(dim_hint, 1 + max feature index)
  std::size_t nnz = 0;
  std::vector<std::uint64_t> shard_offset;  ///< byte offset of shard start
  std::vector<std::size_t> shard_first_line;  ///< 1-based line number
  std::vector<std::size_t> shard_rows;        ///< data rows in the shard
  /// Distinct label values, capped at 3 ("more than two" is all the binary
  /// normalisation logic needs to know), sorted ascending.
  std::vector<double> distinct_labels;
};

/// Builds the shard index by scanning `in` once. Parse errors throw
/// std::runtime_error with the offending 1-based line number, exactly as
/// read_libsvm. `dim_hint` floors the recorded dim.
LibsvmIndex index_libsvm(std::istream& in, std::size_t rows_per_shard,
                         std::size_t dim_hint = 0);

}  // namespace isasgd::io
