#include "io/binary.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace isasgd::io {

namespace {

constexpr char kDatasetMagic[8] = {'I', 'S', 'A', 'S', 'G', 'D', 'D', '1'};
constexpr char kModelMagic[8] = {'I', 'S', 'A', 'S', 'G', 'D', 'W', '1'};

void write_raw(std::ostream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("binary write failed");
}

void read_raw(std::istream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("binary read failed: truncated stream");
  }
}

template <class T>
void write_value(std::ostream& out, T v) {
  write_raw(out, &v, sizeof v);
}

template <class T>
T read_value(std::istream& in) {
  T v;
  read_raw(in, &v, sizeof v);
  return v;
}

template <class T>
void write_vector(std::ostream& out, const std::vector<T>& v) {
  write_raw(out, v.data(), v.size() * sizeof(T));
}

template <class T>
std::vector<T> read_vector(std::istream& in, std::size_t count) {
  // Guard against header-driven overallocation on corrupt files.
  constexpr std::size_t kMaxElements = std::size_t{1} << 34;
  if (count > kMaxElements) {
    throw std::runtime_error("binary read failed: implausible element count");
  }
  std::vector<T> v(count);
  read_raw(in, v.data(), count * sizeof(T));
  return v;
}

}  // namespace

void write_dataset_binary(std::ostream& out, const sparse::CsrMatrix& data) {
  write_raw(out, kDatasetMagic, sizeof kDatasetMagic);
  write_value<std::uint64_t>(out, data.dim());
  write_value<std::uint64_t>(out, data.rows());
  write_value<std::uint64_t>(out, data.nnz());
  // row_ptr is stored as u64 regardless of the in-memory size_t width.
  std::vector<std::uint64_t> ptr(data.row_ptr().begin(), data.row_ptr().end());
  write_vector(out, ptr);
  write_vector(out, data.col_idx());
  write_vector(out, data.values());
  write_vector(out, data.labels());
}

void write_dataset_binary_file(const std::string& path,
                               const sparse::CsrMatrix& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_dataset_binary_file: cannot open '" +
                             path + "'");
  }
  write_dataset_binary(out, data);
}

sparse::CsrMatrix read_dataset_binary(std::istream& in) {
  char magic[8];
  read_raw(in, magic, sizeof magic);
  if (std::memcmp(magic, kDatasetMagic, sizeof magic) != 0) {
    throw std::runtime_error("read_dataset_binary: bad magic");
  }
  const auto dim = read_value<std::uint64_t>(in);
  const auto rows = read_value<std::uint64_t>(in);
  const auto nnz = read_value<std::uint64_t>(in);
  // Plausibility bounds catch corrupted headers before any allocation; 2^40
  // columns is three orders of magnitude beyond the paper's largest dataset.
  constexpr std::uint64_t kMaxDim = 1ULL << 40;
  if (dim > kMaxDim) {
    throw std::runtime_error("read_dataset_binary: implausible dimension");
  }
  // Division, not multiplication: rows·dim can overflow u64 on a corrupt
  // header, which would defeat this very check.
  if (nnz / std::max<std::uint64_t>(1, dim) > rows) {
    throw std::runtime_error("read_dataset_binary: nnz exceeds rows*dim");
  }
  const auto ptr64 = read_vector<std::uint64_t>(in, rows + 1);
  auto col = read_vector<sparse::index_t>(in, nnz);
  auto val = read_vector<sparse::value_t>(in, nnz);
  auto lab = read_vector<sparse::value_t>(in, rows);
  std::vector<std::size_t> ptr(ptr64.begin(), ptr64.end());
  // CsrMatrix's constructor re-validates every CSR invariant.
  return sparse::CsrMatrix(dim, std::move(ptr), std::move(col),
                           std::move(val), std::move(lab));
}

sparse::CsrMatrix read_dataset_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_dataset_binary_file: cannot open '" +
                             path + "'");
  }
  return read_dataset_binary(in);
}

void write_model_binary(std::ostream& out, std::span<const double> weights) {
  write_raw(out, kModelMagic, sizeof kModelMagic);
  write_value<std::uint64_t>(out, weights.size());
  write_raw(out, weights.data(), weights.size() * sizeof(double));
}

void write_model_binary_file(const std::string& path,
                             std::span<const double> weights) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_model_binary_file: cannot open '" + path +
                             "'");
  }
  write_model_binary(out, weights);
}

std::vector<double> read_model_binary(std::istream& in) {
  char magic[8];
  read_raw(in, magic, sizeof magic);
  if (std::memcmp(magic, kModelMagic, sizeof magic) != 0) {
    throw std::runtime_error("read_model_binary: bad magic");
  }
  const auto dim = read_value<std::uint64_t>(in);
  return read_vector<double>(in, dim);
}

std::vector<double> read_model_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_model_binary_file: cannot open '" + path +
                             "'");
  }
  return read_model_binary(in);
}

}  // namespace isasgd::io
