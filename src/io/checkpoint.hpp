// Versioned binary checkpoint files for solvers::SnapshotState.
//
// A checkpoint is the durable form of one epoch-fence snapshot: the model
// vector, the solver's named state sections (RNG words, SVRG anchors,
// SAG/SAGA gradient memory, adaptive-IS vectors), and the run header (solver
// name, completed epoch, seed, epoch budget, dataset fingerprint). The
// format is deliberately dumb — length-prefixed little-endian sections, each
// protected by its own CRC32 — so a checkpoint written by any build loads in
// any other, and a partial write (kill mid-save) or a flipped byte is
// detected and reported instead of silently resuming from garbage.
//
// File layout (all integers little-endian):
//
//   bytes 0..3   magic "ISCK"
//   u32          format version (kCheckpointVersion)
//   u32          solver-name length, then the name bytes
//   u64 ×4       epoch, seed, epochs_budget, dataset_fingerprint
//   u32          CRC32 of everything from the name length through the header
//   u32          section count
//   per section:
//     u8         payload kind: 0 = f64 words, 1 = u64 words
//     u32        name length, then the name bytes
//     u64        element count
//     payload    count × 8 bytes
//     u32        CRC32 of the name bytes + payload bytes
//
// The model vector travels as an f64 section named "__model"; solver
// sections keep their SnapshotState names ("rng", "svrg.anchor", ...).
//
// Durability: save_checkpoint writes to `path + ".tmp"` and renames over
// `path`, so a reader never observes a half-written file at the final path —
// the worst a crash leaves behind is a stale .tmp next to a complete
// previous checkpoint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "solvers/snapshot.hpp"

namespace isasgd::io {

/// Raised on any checkpoint load/save failure: missing or unopenable file,
/// bad magic, unsupported version, truncation, CRC mismatch. The message
/// names the file and the failing part.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kCheckpointVersion = 1;
inline constexpr char kCheckpointMagic[4] = {'I', 'S', 'C', 'K'};

/// CRC-32 (reflected, polynomial 0xEDB88320 — the zlib/PNG polynomial) of
/// `size` bytes at `data`, continued from `seed` (pass a previous return
/// value to checksum discontiguous spans as one stream; 0 starts fresh).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0) noexcept;

/// Serialises `state` to `path` atomically (tmp + rename). Throws
/// CheckpointError when the file cannot be written.
void save_checkpoint(const std::string& path,
                     const solvers::SnapshotState& state);

/// Loads and fully validates a checkpoint: magic, version, every CRC.
/// Throws CheckpointError on any defect.
[[nodiscard]] solvers::SnapshotState load_checkpoint(const std::string& path);

}  // namespace isasgd::io
