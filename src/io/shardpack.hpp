// Compiled columnar shard format for out-of-core training ("shardpack").
//
// StreamingSource re-parses libsvm text (or re-validates raw binary) on
// every shard fault, and adaptive-IS setup plus PartitionPlan construction
// need a full data pass just to compute row norms and per-shard Φ totals.
// A shardpack is the compiled answer: the dataset pre-sharded into columnar
// blocks that decode with a few memcpys and a varint scan, every section
// CRC-protected, and *sidecars* carrying each row's squared norm and each
// shard's totals — recorded at pack time with the exact arithmetic of the
// loaded path (`row.squared_norm()`), so setup over a packed file touches
// no row data at all and still produces bit-identical models.
//
// File layout (all integers little-endian):
//
//   bytes 0..3   magic "ISSP"
//   u32          format version (kShardPackVersion)
//   -- header, one trailing CRC32 over the span:
//   u64          file_bytes   (total file size; any truncation is detected
//                              at open by comparing against the real size)
//   u64          rows, dim, nnz
//   u64          shard_rows   (nominal rows per shard)
//   u64          shard_count
//   u8           value kind: 0 = f64, 1 = f32 (lossy, half the bytes)
//   u8 ×7        reserved (zero)
//   u32          header CRC
//   -- shard directory, one trailing CRC32:
//   per shard:   u64 block_offset, u64 block_bytes, u64 row_begin,
//                u64 row_count, u64 shard_nnz
//   u32          directory CRC
//   -- sidecars, one trailing CRC32:
//   f64 × rows         row squared norms (exact row(i).squared_norm())
//   f64 × shard_count  per-shard Σ squared-norm totals
//   u32          sidecar CRC
//   -- shard blocks, each starting at its directory block_offset
//      (8-byte aligned), block_bytes of payload + trailing u32 CRC:
//   u64          index_bytes  (length of the varint stream)
//   u8 × index_bytes  delta-encoded column indices: per row, the first
//                     column is encoded absolute, each later one as
//                     (col - prev - 1) — strict increase is a decode
//                     guarantee, not a validation pass
//   pad to 8
//   value column: shard_nnz × 4 or × 8 (f32 widened to f64 on decode)
//   f64 × row_count   labels
//   u32 × row_count   per-row nnz (rebuilds the shard row_ptr)
//   u32          block CRC
//
// Open-time validation covers magic, version, header/directory/sidecar
// CRCs, the declared-vs-real file size, and directory geometry, so *every*
// prefix truncation and any metadata corruption fails at open. Shard block
// CRCs are verified once, on the shard's first decode. Writes go to
// `path + ".tmp"` and rename over `path` (same durability contract as
// io::checkpoint).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sparse/csr_matrix.hpp"

namespace isasgd::data {
class DataSource;
}

namespace isasgd::io {

/// Raised on any shardpack write/open/decode failure: missing file, bad
/// magic, unsupported version, truncation, CRC mismatch, malformed varint
/// stream. The message names the file and the failing part — a defective
/// pack never yields a partial dataset.
class ShardPackError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kShardPackVersion = 1;
inline constexpr char kShardPackMagic[4] = {'I', 'S', 'S', 'P'};

enum class PackValueKind : std::uint8_t {
  kF64 = 0,  ///< lossless; packed training is bit-identical to the source
  kF32 = 1,  ///< half the value bytes; values round-trip through float
};

struct ShardPackWriteOptions {
  /// Rows per shard. Ignored (the source's own sharding wins) when writing
  /// from a DataSource; used when packing a plain CsrMatrix.
  std::size_t shard_rows = 4096;
  PackValueKind values = PackValueKind::kF64;
};

/// Packs `data` to `path` atomically (tmp + rename). Throws ShardPackError
/// when the file cannot be written.
void write_shardpack(const std::string& path, const sparse::CsrMatrix& data,
                     const ShardPackWriteOptions& options = {});

/// Packs a DataSource shard-by-shard — shard geometry is preserved, and
/// peak memory is one shard, so a StreamingSource converts files larger
/// than RAM. Sidecars are computed per shard as it streams through.
void write_shardpack(const std::string& path, const data::DataSource& source,
                     const ShardPackWriteOptions& options = {});

/// Memory-mapped shardpack reader. Open validates all metadata (see file
/// comment); shard payload CRCs are checked once on first decode. Decoding
/// fills caller-provided buffers so a cache layer can pool and reuse them.
/// Thread-safe: decode_shard may be called concurrently.
class ShardPackReader {
 public:
  /// Maps `path` and validates. Throws ShardPackError on any defect.
  explicit ShardPackReader(std::string path);
  ~ShardPackReader();

  ShardPackReader(const ShardPackReader&) = delete;
  ShardPackReader& operator=(const ShardPackReader&) = delete;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] PackValueKind value_kind() const noexcept { return values_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  [[nodiscard]] std::size_t shard_rows(std::size_t s) const {
    return shards_.at(s).row_count;
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const {
    return shards_.at(s).row_begin;
  }
  [[nodiscard]] std::size_t shard_nnz(std::size_t s) const {
    return shards_.at(s).nnz;
  }
  /// Encoded bytes of shard s on disk (payload, excluding its CRC).
  [[nodiscard]] std::size_t shard_bytes(std::size_t s) const {
    return shards_.at(s).block_bytes;
  }

  /// Sidecar: exact row(i).squared_norm() for global row i.
  [[nodiscard]] double row_squared_norm(std::size_t row) const {
    return row_sq_norms_.at(row);
  }
  [[nodiscard]] const std::vector<double>& row_squared_norms() const noexcept {
    return row_sq_norms_;
  }
  /// Sidecar: Σ row_squared_norm over shard s (pack-time row order).
  [[nodiscard]] double shard_sq_norm_sum(std::size_t s) const {
    return shard_sq_sums_.at(s);
  }

  /// Decodes shard s into the given CSR buffers (resized as needed; capacity
  /// is reused across calls — the pooling hook). Verifies the block CRC on
  /// the shard's first decode. Throws ShardPackError on corruption.
  void decode_shard(std::size_t s, std::vector<std::size_t>& row_ptr,
                    std::vector<sparse::index_t>& col_idx,
                    std::vector<sparse::value_t>& values,
                    std::vector<sparse::value_t>& labels) const;

 private:
  struct ShardMeta {
    std::uint64_t block_offset = 0;
    std::uint64_t block_bytes = 0;
    std::uint64_t row_begin = 0;
    std::uint64_t row_count = 0;
    std::uint64_t nnz = 0;
  };

  [[nodiscard]] const std::uint8_t* block(std::size_t s) const {
    return map_ + shards_[s].block_offset;
  }
  void verify_block_crc(std::size_t s) const;

  std::string path_;
  const std::uint8_t* map_ = nullptr;  ///< whole-file read-only mapping
  std::size_t map_bytes_ = 0;

  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t nnz_ = 0;
  PackValueKind values_ = PackValueKind::kF64;
  std::vector<ShardMeta> shards_;
  std::vector<double> row_sq_norms_;
  std::vector<double> shard_sq_sums_;

  /// One flag per shard: block CRC verified. Guarded by crc_mu_; the CRC
  /// itself is computed outside the lock.
  mutable std::mutex crc_mu_;
  mutable std::vector<bool> crc_checked_;
};

/// True when the file at `path` starts with the ISSP magic (cheap sniff for
/// open_source auto-detection; does not validate anything else).
[[nodiscard]] bool is_shardpack_file(const std::string& path);

}  // namespace isasgd::io
