#include "io/libsvm.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sparse/csr_builder.hpp"

namespace isasgd::io {

namespace {

/// All parse failures funnel through here so every message carries the
/// 1-based line number and a snippet of the offending line — "libsvm parse
/// error" with no location is useless against a multi-gigabyte file.
[[noreturn]] void fail(std::size_t line_no, const std::string& what,
                       const std::string& line) {
  constexpr std::size_t kSnippet = 60;
  std::string context = line.substr(0, kSnippet);
  if (line.size() > kSnippet) context += "...";
  throw std::runtime_error("libsvm parse error at line " +
                           std::to_string(line_no) + ": " + what + " near '" +
                           context + "'");
}

/// Parses a double starting at `pos`; advances pos past it.
double parse_double(const std::string& line, std::size_t& pos,
                    std::size_t line_no, const char* what) {
  const char* begin = line.data() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) fail(line_no, std::string("expected ") + what, line);
  pos += static_cast<std::size_t>(end - begin);
  return v;
}

/// Parses one LibSVM line into (label, idx, val). Returns false for blank
/// and comment lines. Shared by read_libsvm (materialising read) and
/// index_libsvm (shape-only scan) so both validate identically.
bool parse_line(const std::string& line, std::size_t line_no, double& label,
                std::vector<sparse::index_t>& idx,
                std::vector<sparse::value_t>& val) {
  std::size_t pos = line.find_first_not_of(" \t");
  if (pos == std::string::npos || line[pos] == '#') return false;

  label = parse_double(line, pos, line_no, "label");
  idx.clear();
  val.clear();
  while (pos < line.size()) {
    pos = line.find_first_not_of(" \t", pos);
    if (pos == std::string::npos || line[pos] == '#') break;
    // <index>:<value>
    std::size_t feat = 0;
    const char* begin = line.data() + pos;
    const char* end_limit = line.data() + line.size();
    auto [p, ec] = std::from_chars(begin, end_limit, feat);
    if (ec == std::errc::result_out_of_range) {
      fail(line_no, "feature index out of range", line);
    }
    if (ec != std::errc{} || p == begin) {
      fail(line_no, "expected feature index", line);
    }
    pos += static_cast<std::size_t>(p - begin);
    if (pos >= line.size() || line[pos] != ':') fail(line_no, "expected ':'", line);
    ++pos;
    const double v = parse_double(line, pos, line_no, "feature value");
    if (feat == 0) fail(line_no, "feature indices are 1-based", line);
    if (feat - 1 > std::numeric_limits<sparse::index_t>::max()) {
      // Without this check the narrowing cast below would silently wrap a
      // 64-bit index into a wrong 32-bit column.
      fail(line_no, "feature index out of range", line);
    }
    idx.push_back(static_cast<sparse::index_t>(feat - 1));
    val.push_back(v);
  }
  return true;
}

}  // namespace

sparse::CsrMatrix read_libsvm(std::istream& in,
                              const LibsvmReadOptions& options) {
  sparse::CsrBuilder builder(options.dim_hint);
  std::string line;
  std::size_t line_no = options.line_number_offset;
  std::vector<sparse::index_t> idx;
  std::vector<sparse::value_t> val;
  std::vector<sparse::value_t> raw_labels;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    double label = 0;
    if (!parse_line(line, line_no, label, idx, val)) continue;
    // Tolerate unsorted/duplicate indices by normalising through
    // add_row_unsorted; sorted input takes the same path (cheap for small
    // rows, correct for all). Builder-side rejections (e.g. CSR invariant
    // violations) get the line number stapled on here.
    try {
      builder.add_row_unsorted(std::vector<sparse::index_t>(idx),
                               std::vector<sparse::value_t>(val), label);
    } catch (const std::exception& e) {
      fail(line_no, e.what(), line);
    }
    raw_labels.push_back(label);
    if (options.max_rows && builder.rows() >= options.max_rows) break;
  }

  sparse::CsrMatrix data = builder.build();
  if (!options.normalize_binary_labels || data.rows() == 0) return data;

  // Binary label normalisation: when the file holds exactly two distinct
  // label values that are not already {-1, +1} (e.g. {0,1} or {1,2}), map
  // the smaller onto -1 and the larger onto +1.
  std::set<double> distinct;
  for (double y : raw_labels) {
    distinct.insert(y);
    if (distinct.size() > 2) break;
  }
  if (distinct.size() == 2) {
    const double lo = *distinct.begin();
    const double hi = *std::next(distinct.begin());
    if (!(lo == -1.0 && hi == 1.0)) {
      std::vector<sparse::value_t> mapped;
      mapped.reserve(raw_labels.size());
      for (double y : raw_labels) mapped.push_back(y == lo ? -1.0 : 1.0);
      data = sparse::CsrMatrix(data.dim(), data.row_ptr(), data.col_idx(),
                               data.values(), std::move(mapped));
    }
  }
  return data;
}

LibsvmIndex index_libsvm(std::istream& in, std::size_t rows_per_shard,
                         std::size_t dim_hint) {
  if (rows_per_shard == 0) {
    throw std::invalid_argument("index_libsvm: rows_per_shard must be > 0");
  }
  LibsvmIndex index;
  index.dim = dim_hint;
  std::string line;
  std::size_t line_no = 0;
  std::vector<sparse::index_t> idx;
  std::vector<sparse::value_t> val;
  std::set<double> distinct;

  const std::streamoff start = in.tellg();
  std::uint64_t line_offset = start < 0 ? 0 : static_cast<std::uint64_t>(start);
  for (;;) {
    if (!std::getline(in, line)) break;
    ++line_no;
    // getline consumed the row plus its terminator; the next line starts at
    // the current stream position (tellg is unusable mid-loop once EOF has
    // been hit, so track offsets by line length instead).
    const std::uint64_t next_offset =
        line_offset + static_cast<std::uint64_t>(line.size()) +
        (in.eof() ? 0 : 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    double label = 0;
    if (parse_line(line, line_no, label, idx, val)) {
      if (index.rows % rows_per_shard == 0) {
        index.shard_offset.push_back(line_offset);
        index.shard_first_line.push_back(line_no);
        index.shard_rows.push_back(0);
      }
      ++index.shard_rows.back();
      ++index.rows;
      // Count *merged* nonzeros: read_libsvm folds duplicate indices into
      // one entry, and the index must report the shape the reader produces.
      std::sort(idx.begin(), idx.end());
      index.nnz += static_cast<std::size_t>(
          std::distance(idx.begin(), std::unique(idx.begin(), idx.end())));
      for (sparse::index_t c : idx) {
        index.dim = std::max(index.dim, static_cast<std::size_t>(c) + 1);
      }
      if (distinct.size() <= 2) distinct.insert(label);
    }
    line_offset = next_offset;
  }
  index.distinct_labels.assign(distinct.begin(), distinct.end());
  return index;
}

sparse::CsrMatrix read_libsvm_file(const std::string& path,
                                   const LibsvmReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_libsvm_file: cannot open '" + path + "'");
  }
  return read_libsvm(in, options);
}

void write_libsvm(std::ostream& out, const sparse::CsrMatrix& data) {
  char buf[64];
  for (std::size_t i = 0; i < data.rows(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", data.label(i));
    out << buf;
    const auto row = data.row(i);
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      std::snprintf(buf, sizeof buf, "%.17g", row.value(k));
      out << ' ' << (row.index(k) + 1) << ':' << buf;
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const sparse::CsrMatrix& data) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_libsvm_file: cannot open '" + path + "'");
  }
  write_libsvm(out, data);
}

}  // namespace isasgd::io
