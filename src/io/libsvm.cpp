#include "io/libsvm.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "sparse/csr_builder.hpp"

namespace isasgd::io {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("libsvm parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

/// Parses a double starting at `pos`; advances pos past it.
double parse_double(const std::string& line, std::size_t& pos,
                    std::size_t line_no, const char* what) {
  const char* begin = line.data() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) fail(line_no, std::string("expected ") + what);
  pos += static_cast<std::size_t>(end - begin);
  return v;
}

}  // namespace

sparse::CsrMatrix read_libsvm(std::istream& in,
                              const LibsvmReadOptions& options) {
  sparse::CsrBuilder builder(options.dim_hint);
  std::string line;
  std::size_t line_no = 0;
  bool saw_negative_like = false;  // label in {-1} or {0}
  std::vector<sparse::index_t> idx;
  std::vector<sparse::value_t> val;
  std::vector<sparse::value_t> raw_labels;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t pos = line.find_first_not_of(" \t");
    if (pos == std::string::npos || line[pos] == '#') continue;

    const double label = parse_double(line, pos, line_no, "label");
    idx.clear();
    val.clear();
    while (pos < line.size()) {
      pos = line.find_first_not_of(" \t", pos);
      if (pos == std::string::npos || line[pos] == '#') break;
      // <index>:<value>
      std::size_t feat = 0;
      const char* begin = line.data() + pos;
      const char* end_limit = line.data() + line.size();
      auto [p, ec] = std::from_chars(begin, end_limit, feat);
      if (ec != std::errc{} || p == begin) fail(line_no, "expected feature index");
      pos += static_cast<std::size_t>(p - begin);
      if (pos >= line.size() || line[pos] != ':') fail(line_no, "expected ':'");
      ++pos;
      const double v = parse_double(line, pos, line_no, "feature value");
      if (feat == 0) fail(line_no, "feature indices are 1-based");
      idx.push_back(static_cast<sparse::index_t>(feat - 1));
      val.push_back(v);
    }
    // Tolerate unsorted/duplicate indices by normalising through
    // add_row_unsorted; sorted input takes the same path (cheap for small
    // rows, correct for all).
    builder.add_row_unsorted(std::vector<sparse::index_t>(idx),
                             std::vector<sparse::value_t>(val), label);
    raw_labels.push_back(label);
    if (label <= 0) saw_negative_like = true;
    if (options.max_rows && builder.rows() >= options.max_rows) break;
  }

  sparse::CsrMatrix data = builder.build();
  if (!options.normalize_binary_labels || data.rows() == 0) return data;
  (void)saw_negative_like;

  // Binary label normalisation: when the file holds exactly two distinct
  // label values that are not already {-1, +1} (e.g. {0,1} or {1,2}), map
  // the smaller onto -1 and the larger onto +1.
  std::set<double> distinct;
  for (double y : raw_labels) {
    distinct.insert(y);
    if (distinct.size() > 2) break;
  }
  if (distinct.size() == 2) {
    const double lo = *distinct.begin();
    const double hi = *std::next(distinct.begin());
    if (!(lo == -1.0 && hi == 1.0)) {
      std::vector<sparse::value_t> mapped;
      mapped.reserve(raw_labels.size());
      for (double y : raw_labels) mapped.push_back(y == lo ? -1.0 : 1.0);
      data = sparse::CsrMatrix(data.dim(), data.row_ptr(), data.col_idx(),
                               data.values(), std::move(mapped));
    }
  }
  return data;
}

sparse::CsrMatrix read_libsvm_file(const std::string& path,
                                   const LibsvmReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_libsvm_file: cannot open '" + path + "'");
  }
  return read_libsvm(in, options);
}

void write_libsvm(std::ostream& out, const sparse::CsrMatrix& data) {
  char buf[64];
  for (std::size_t i = 0; i < data.rows(); ++i) {
    std::snprintf(buf, sizeof buf, "%.17g", data.label(i));
    out << buf;
    const auto row = data.row(i);
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      std::snprintf(buf, sizeof buf, "%.17g", row.value(k));
      out << ' ' << (row.index(k) + 1) << ':' << buf;
    }
    out << '\n';
  }
}

void write_libsvm_file(const std::string& path, const sparse::CsrMatrix& data) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_libsvm_file: cannot open '" + path + "'");
  }
  write_libsvm(out, data);
}

}  // namespace isasgd::io
