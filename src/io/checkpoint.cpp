#include "io/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

namespace isasgd::io {

namespace {

/// The reflected CRC-32 table, built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// Incremental writer: buffers the whole file, tracks a CRC over explicit
/// spans, and flushes once — a crash can only ever lose the .tmp.
class Writer {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }

  /// Bytes written since `mark`, as one span (for trailing CRCs).
  [[nodiscard]] std::uint32_t crc_since(std::size_t mark) const {
    return crc32(buffer_.data() + mark, buffer_.size() - mark);
  }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

  void flush(const std::string& path) {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw CheckpointError("checkpoint save: cannot open '" + tmp +
                              "' for writing");
      }
      out.write(reinterpret_cast<const char*>(buffer_.data()),
                static_cast<std::streamsize>(buffer_.size()));
      out.flush();
      if (!out) {
        throw CheckpointError("checkpoint save: short write to '" + tmp +
                              "'");
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw CheckpointError("checkpoint save: rename '" + tmp + "' -> '" +
                            path + "' failed: " + ec.message());
    }
  }

 private:
  std::vector<std::byte> buffer_;
};

/// Bounds-checked reader over the whole file image.
class Reader {
 public:
  Reader(std::vector<std::byte> data, std::string path)
      : data_(std::move(data)), path_(std::move(path)) {}

  void bytes(void* out, std::size_t size, const char* what) {
    if (pos_ + size > data_.size()) {
      throw CheckpointError("checkpoint '" + path_ +
                            "': truncated while reading " + what);
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }
  std::uint8_t u8(const char* what) {
    std::uint8_t v;
    bytes(&v, 1, what);
    return v;
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    bytes(&v, 4, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    bytes(&v, 8, what);
    return v;
  }
  std::string string(std::size_t size, const char* what) {
    std::string s(size, '\0');
    bytes(s.data(), size, what);
    return s;
  }
  [[nodiscard]] std::uint32_t crc_since(std::size_t mark) const {
    return crc32(data_.data() + mark, pos_ - mark);
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::vector<std::byte> data_;
  std::string path_;
  std::size_t pos_ = 0;
};

constexpr std::uint8_t kKindReals = 0;
constexpr std::uint8_t kKindWords = 1;
constexpr const char* kModelSection = "__model";

void write_section(Writer& out, std::uint8_t kind, const std::string& name,
                   const void* payload, std::size_t count) {
  out.u8(kind);
  out.u32(static_cast<std::uint32_t>(name.size()));
  const std::size_t mark = out.size();
  out.bytes(name.data(), name.size());
  out.u64(count);
  out.bytes(payload, count * 8);
  out.u32(out.crc_since(mark));
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto& table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void save_checkpoint(const std::string& path,
                     const solvers::SnapshotState& state) {
  Writer out;
  out.bytes(kCheckpointMagic, 4);
  out.u32(kCheckpointVersion);

  const std::size_t header_mark = out.size();
  out.u32(static_cast<std::uint32_t>(state.solver.size()));
  out.bytes(state.solver.data(), state.solver.size());
  out.u64(state.epoch);
  out.u64(state.seed);
  out.u64(state.epochs_budget);
  out.u64(state.dataset_fingerprint);
  out.u32(out.crc_since(header_mark));

  out.u32(static_cast<std::uint32_t>(1 + state.reals.size() +
                                     state.words.size()));
  write_section(out, kKindReals, kModelSection, state.model.data(),
                state.model.size());
  for (const auto& [name, values] : state.reals) {
    write_section(out, kKindReals, name, values.data(), values.size());
  }
  for (const auto& [name, values] : state.words) {
    write_section(out, kKindWords, name, values.data(), values.size());
  }
  out.flush(path);
}

solvers::SnapshotState load_checkpoint(const std::string& path) {
  std::vector<std::byte> image;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
      throw CheckpointError("checkpoint '" + path +
                            "': cannot open for reading");
    }
    const std::streamsize size = in.tellg();
    in.seekg(0);
    image.resize(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(image.data()), size);
    if (!in) {
      throw CheckpointError("checkpoint '" + path + "': read failed");
    }
  }
  Reader in(std::move(image), path);

  char magic[4];
  in.bytes(magic, 4, "magic");
  if (std::memcmp(magic, kCheckpointMagic, 4) != 0) {
    throw CheckpointError("checkpoint '" + path +
                          "': bad magic (not an ISCK checkpoint file)");
  }
  const std::uint32_t version = in.u32("version");
  if (version != kCheckpointVersion) {
    throw CheckpointError(
        "checkpoint '" + path + "': unsupported format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }

  solvers::SnapshotState state;
  const std::size_t header_mark = in.pos();
  const std::uint32_t name_len = in.u32("solver-name length");
  state.solver = in.string(name_len, "solver name");
  state.epoch = in.u64("epoch");
  state.seed = in.u64("seed");
  state.epochs_budget = in.u64("epoch budget");
  state.dataset_fingerprint = in.u64("dataset fingerprint");
  const std::uint32_t header_crc = in.crc_since(header_mark);
  if (in.u32("header CRC") != header_crc) {
    throw CheckpointError("checkpoint '" + path +
                          "': header CRC mismatch (corrupted file)");
  }

  const std::uint32_t sections = in.u32("section count");
  for (std::uint32_t k = 0; k < sections; ++k) {
    const std::uint8_t kind = in.u8("section kind");
    if (kind != kKindReals && kind != kKindWords) {
      throw CheckpointError("checkpoint '" + path +
                            "': unknown section kind " + std::to_string(kind));
    }
    const std::uint32_t section_name_len = in.u32("section-name length");
    const std::size_t mark = in.pos();
    const std::string name = in.string(section_name_len, "section name");
    const std::uint64_t count = in.u64("section element count");
    // Validate the declared length against the bytes actually present, so a
    // corrupted count reads as truncation instead of a giant allocation.
    if (count > in.remaining() / 8) {
      throw CheckpointError("checkpoint '" + path + "': truncated section '" +
                            name + "' (declares " + std::to_string(count) +
                            " elements past end of file)");
    }
    if (kind == kKindReals) {
      std::vector<double> values(count);
      in.bytes(values.data(), count * 8, ("section '" + name + "'").c_str());
      const std::uint32_t crc = in.crc_since(mark);
      if (in.u32("section CRC") != crc) {
        throw CheckpointError("checkpoint '" + path + "': CRC mismatch in "
                              "section '" + name + "' (corrupted file)");
      }
      if (name == kModelSection) {
        state.model = std::move(values);
      } else {
        state.reals[name] = std::move(values);
      }
    } else {
      std::vector<std::uint64_t> values(count);
      in.bytes(values.data(), count * 8, ("section '" + name + "'").c_str());
      const std::uint32_t crc = in.crc_since(mark);
      if (in.u32("section CRC") != crc) {
        throw CheckpointError("checkpoint '" + path + "': CRC mismatch in "
                              "section '" + name + "' (corrupted file)");
      }
      state.words[name] = std::move(values);
    }
  }
  return state;
}

}  // namespace isasgd::io
