#include "io/shardpack.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "data/data_source.hpp"
#include "io/checkpoint.hpp"  // io::crc32

namespace isasgd::io {

namespace {

constexpr std::size_t kHeaderFixedBytes =
    4 + 4 +          // magic + version
    6 * 8 + 8 +      // file_bytes, rows, dim, nnz, shard_rows, shard_count,
                     // value kind byte + 7 reserved
    4;               // header CRC
constexpr std::size_t kDirEntryBytes = 5 * 8;

std::size_t align8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + 8);
}

void put_bytes(std::vector<std::uint8_t>& out, const void* data,
               std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), p, p + size);
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// One shard's encoded payload (sans trailing CRC) plus its sidecar rows.
struct EncodedShard {
  std::vector<std::uint8_t> payload;
  std::vector<double> row_sq_norms;
  double sq_sum = 0;
  std::size_t rows = 0;
  std::size_t nnz = 0;
};

EncodedShard encode_shard(const sparse::CsrMatrix& shard,
                          PackValueKind values) {
  EncodedShard enc;
  enc.rows = shard.rows();
  enc.nnz = shard.nnz();

  // Column varint stream: per row, first column absolute, then gaps − 1.
  std::vector<std::uint8_t> index_stream;
  index_stream.reserve(enc.nnz * 2);
  for (std::size_t r = 0; r < shard.rows(); ++r) {
    const auto row = shard.row(r);
    for (std::size_t j = 0; j < row.indices().size(); ++j) {
      const std::uint64_t col = row.index(j);
      put_varint(index_stream,
                 j == 0 ? col : col - row.index(j - 1) - 1);
    }
  }

  put_u64(enc.payload, index_stream.size());
  put_bytes(enc.payload, index_stream.data(), index_stream.size());
  enc.payload.resize(align8(enc.payload.size()), 0);

  if (values == PackValueKind::kF64) {
    put_bytes(enc.payload, shard.values().data(),
              enc.nnz * sizeof(sparse::value_t));
  } else {
    for (sparse::value_t v : shard.values()) {
      const float f = static_cast<float>(v);
      put_bytes(enc.payload, &f, sizeof f);
    }
  }
  put_bytes(enc.payload, shard.labels().data(),
            enc.rows * sizeof(sparse::value_t));
  for (std::size_t r = 0; r < shard.rows(); ++r) {
    const auto row = shard.row(r);
    put_u32(enc.payload, static_cast<std::uint32_t>(row.indices().size()));
  }

  // Sidecar rows: the exact loaded-path arithmetic, in row order.
  enc.row_sq_norms.reserve(enc.rows);
  for (std::size_t r = 0; r < shard.rows(); ++r) {
    const double sq = shard.row(r).squared_norm();
    enc.row_sq_norms.push_back(sq);
    enc.sq_sum += sq;
  }
  return enc;
}

/// Assembles and atomically writes the pack from pre-encoded shards.
/// `next_shard` yields shards in order and returns false when done —
/// writing needs two passes over the geometry, so shards are encoded once
/// and their payloads kept; peak memory is the encoded file, not the
/// decoded dataset.
void write_pack(const std::string& path, std::size_t rows, std::size_t dim,
                std::size_t nnz, std::size_t nominal_shard_rows,
                PackValueKind values, std::vector<EncodedShard> shards,
                const std::vector<std::size_t>& row_begins) {
  const std::size_t dir_bytes = shards.size() * kDirEntryBytes + 4;
  const std::size_t sidecar_bytes = (rows + shards.size()) * 8 + 4;
  std::size_t offset =
      align8(kHeaderFixedBytes + dir_bytes + sidecar_bytes);

  std::vector<std::uint64_t> block_offsets;
  std::size_t file_bytes = offset;
  for (const EncodedShard& s : shards) {
    block_offsets.push_back(file_bytes);
    file_bytes = align8(file_bytes + s.payload.size() + 4);
  }

  std::vector<std::uint8_t> image;
  image.reserve(file_bytes);
  put_bytes(image, kShardPackMagic, 4);
  put_u32(image, kShardPackVersion);
  const std::size_t header_mark = image.size();
  put_u64(image, file_bytes);
  put_u64(image, rows);
  put_u64(image, dim);
  put_u64(image, nnz);
  put_u64(image, nominal_shard_rows);
  put_u64(image, shards.size());
  image.push_back(static_cast<std::uint8_t>(values));
  image.insert(image.end(), 7, 0);
  put_u32(image, crc32(image.data() + header_mark,
                       image.size() - header_mark));

  const std::size_t dir_mark = image.size();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    put_u64(image, block_offsets[s]);
    put_u64(image, shards[s].payload.size());
    put_u64(image, row_begins[s]);
    put_u64(image, shards[s].rows);
    put_u64(image, shards[s].nnz);
  }
  put_u32(image, crc32(image.data() + dir_mark, image.size() - dir_mark));

  const std::size_t side_mark = image.size();
  for (const EncodedShard& s : shards) {
    put_bytes(image, s.row_sq_norms.data(), s.row_sq_norms.size() * 8);
  }
  for (const EncodedShard& s : shards) {
    put_bytes(image, &s.sq_sum, 8);
  }
  put_u32(image, crc32(image.data() + side_mark, image.size() - side_mark));

  for (std::size_t s = 0; s < shards.size(); ++s) {
    image.resize(block_offsets[s], 0);  // alignment padding
    const std::uint32_t crc =
        crc32(shards[s].payload.data(), shards[s].payload.size());
    put_bytes(image, shards[s].payload.data(), shards[s].payload.size());
    put_u32(image, crc);
    shards[s].payload.clear();
    shards[s].payload.shrink_to_fit();
  }
  image.resize(file_bytes, 0);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ShardPackError("shardpack save: cannot open '" + tmp +
                           "' for writing");
    }
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) {
      throw ShardPackError("shardpack save: short write to '" + tmp + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw ShardPackError("shardpack save: rename '" + tmp + "' -> '" + path +
                         "' failed: " + ec.message());
  }
}

}  // namespace

void write_shardpack(const std::string& path, const sparse::CsrMatrix& data,
                     const ShardPackWriteOptions& options) {
  if (options.shard_rows == 0) {
    throw ShardPackError("shardpack save: shard_rows must be > 0");
  }
  std::vector<EncodedShard> shards;
  std::vector<std::size_t> row_begins;
  for (std::size_t begin = 0; begin < data.rows();
       begin += options.shard_rows) {
    const std::size_t count = std::min(options.shard_rows,
                                       data.rows() - begin);
    row_begins.push_back(begin);
    shards.push_back(encode_shard(
        data::slice_rows(data, begin, count), options.values));
  }
  write_pack(path, data.rows(), data.dim(), data.nnz(), options.shard_rows,
             options.values, std::move(shards), row_begins);
}

void write_shardpack(const std::string& path, const data::DataSource& source,
                     const ShardPackWriteOptions& options) {
  std::vector<EncodedShard> shards;
  std::vector<std::size_t> row_begins;
  std::size_t nominal = options.shard_rows;
  for (std::size_t s = 0; s < source.shard_count(); ++s) {
    const data::ShardPtr shard = source.shard(s);
    row_begins.push_back(shard->row_begin);
    shards.push_back(encode_shard(*shard->matrix, options.values));
    if (s == 0) nominal = shard->matrix->rows();
  }
  write_pack(path, source.rows(), source.dim(), source.nnz(), nominal,
             options.values, std::move(shards), row_begins);
}

ShardPackReader::ShardPackReader(std::string path) : path_(std::move(path)) {
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw ShardPackError("shardpack '" + path_ + "': cannot open: " +
                         std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw ShardPackError("shardpack '" + path_ + "': fstat failed: " +
                         std::strerror(err));
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  if (map_bytes_ > 0) {
    void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) {
      throw ShardPackError("shardpack '" + path_ + "': mmap failed: " +
                           std::strerror(errno));
    }
    map_ = static_cast<const std::uint8_t*>(map);
  } else {
    ::close(fd);
  }

  // From here on any defect must unmap before throwing.
  try {
    std::size_t pos = 0;
    auto need = [&](std::size_t bytes, const char* what) {
      if (pos + bytes > map_bytes_) {
        throw ShardPackError("shardpack '" + path_ +
                             "': truncated while reading " + what);
      }
    };
    auto get_u32 = [&](const char* what) {
      need(4, what);
      std::uint32_t v;
      std::memcpy(&v, map_ + pos, 4);
      pos += 4;
      return v;
    };
    auto get_u64 = [&](const char* what) {
      need(8, what);
      std::uint64_t v;
      std::memcpy(&v, map_ + pos, 8);
      pos += 8;
      return v;
    };

    need(4, "magic");
    if (std::memcmp(map_, kShardPackMagic, 4) != 0) {
      throw ShardPackError("shardpack '" + path_ +
                           "': bad magic (not an ISSP shardpack file)");
    }
    pos = 4;
    const std::uint32_t version = get_u32("version");
    if (version != kShardPackVersion) {
      throw ShardPackError(
          "shardpack '" + path_ + "': unsupported format version " +
          std::to_string(version) + " (this build reads version " +
          std::to_string(kShardPackVersion) + ")");
    }

    const std::size_t header_mark = pos;
    const std::uint64_t file_bytes = get_u64("file size");
    rows_ = get_u64("row count");
    dim_ = get_u64("dim");
    nnz_ = get_u64("nnz");
    (void)get_u64("shard rows");
    const std::uint64_t shard_count = get_u64("shard count");
    need(8, "value kind");
    const std::uint8_t kind = map_[pos];
    pos += 8;  // kind + 7 reserved
    if (crc32(map_ + header_mark, pos - header_mark) != get_u32("header CRC")) {
      throw ShardPackError("shardpack '" + path_ +
                           "': header CRC mismatch (corrupted file)");
    }
    if (kind != static_cast<std::uint8_t>(PackValueKind::kF64) &&
        kind != static_cast<std::uint8_t>(PackValueKind::kF32)) {
      throw ShardPackError("shardpack '" + path_ + "': unknown value kind " +
                           std::to_string(kind));
    }
    values_ = static_cast<PackValueKind>(kind);
    if (file_bytes != map_bytes_) {
      throw ShardPackError(
          "shardpack '" + path_ + "': file is " + std::to_string(map_bytes_) +
          " bytes but the header declares " + std::to_string(file_bytes) +
          " (truncated or appended-to)");
    }
    // A corrupted count must read as truncation, not a giant allocation.
    if (shard_count > (map_bytes_ - pos) / kDirEntryBytes) {
      throw ShardPackError("shardpack '" + path_ +
                           "': truncated shard directory (declares " +
                           std::to_string(shard_count) + " shards)");
    }

    const std::size_t dir_mark = pos;
    shards_.resize(shard_count);
    for (ShardMeta& m : shards_) {
      m.block_offset = get_u64("directory entry");
      m.block_bytes = get_u64("directory entry");
      m.row_begin = get_u64("directory entry");
      m.row_count = get_u64("directory entry");
      m.nnz = get_u64("directory entry");
    }
    if (crc32(map_ + dir_mark, pos - dir_mark) != get_u32("directory CRC")) {
      throw ShardPackError("shardpack '" + path_ +
                           "': directory CRC mismatch (corrupted file)");
    }

    const std::size_t side_mark = pos;
    if (rows_ > (map_bytes_ - pos) / 8) {
      throw ShardPackError("shardpack '" + path_ + "': truncated sidecars");
    }
    row_sq_norms_.resize(rows_);
    need(rows_ * 8, "row-norm sidecar");
    std::memcpy(row_sq_norms_.data(), map_ + pos, rows_ * 8);
    pos += rows_ * 8;
    shard_sq_sums_.resize(shard_count);
    need(shard_count * 8, "shard-total sidecar");
    std::memcpy(shard_sq_sums_.data(), map_ + pos, shard_count * 8);
    pos += shard_count * 8;
    if (crc32(map_ + side_mark, pos - side_mark) != get_u32("sidecar CRC")) {
      throw ShardPackError("shardpack '" + path_ +
                           "': sidecar CRC mismatch (corrupted file)");
    }

    // Directory geometry: blocks in bounds, row ranges contiguous and
    // summing to the header totals.
    std::size_t row_cursor = 0;
    std::size_t nnz_sum = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const ShardMeta& m = shards_[s];
      if (m.block_offset < pos || m.block_offset % 8 != 0 ||
          m.block_bytes > map_bytes_ ||
          m.block_offset + m.block_bytes + 4 > map_bytes_) {
        throw ShardPackError("shardpack '" + path_ + "': shard " +
                             std::to_string(s) +
                             " block out of bounds (corrupted directory)");
      }
      if (m.row_begin != row_cursor) {
        throw ShardPackError("shardpack '" + path_ + "': shard " +
                             std::to_string(s) +
                             " row range is not contiguous");
      }
      row_cursor += m.row_count;
      nnz_sum += m.nnz;
    }
    if (row_cursor != rows_ || nnz_sum != nnz_) {
      throw ShardPackError("shardpack '" + path_ +
                           "': directory totals disagree with the header");
    }
    crc_checked_.assign(shards_.size(), false);
  } catch (...) {
    if (map_) ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
    map_ = nullptr;
    throw;
  }
}

ShardPackReader::~ShardPackReader() {
  if (map_) ::munmap(const_cast<std::uint8_t*>(map_), map_bytes_);
}

void ShardPackReader::verify_block_crc(std::size_t s) const {
  {
    const std::lock_guard<std::mutex> lock(crc_mu_);
    if (crc_checked_[s]) return;
  }
  const ShardMeta& m = shards_[s];
  const std::uint32_t computed = crc32(block(s), m.block_bytes);
  std::uint32_t stored;
  std::memcpy(&stored, block(s) + m.block_bytes, 4);
  if (computed != stored) {
    throw ShardPackError("shardpack '" + path_ + "': CRC mismatch in shard " +
                         std::to_string(s) + " (corrupted file)");
  }
  const std::lock_guard<std::mutex> lock(crc_mu_);
  crc_checked_[s] = true;
}

void ShardPackReader::decode_shard(std::size_t s,
                                   std::vector<std::size_t>& row_ptr,
                                   std::vector<sparse::index_t>& col_idx,
                                   std::vector<sparse::value_t>& values,
                                   std::vector<sparse::value_t>& labels) const {
  if (s >= shards_.size()) {
    throw ShardPackError("shardpack '" + path_ + "': shard ordinal " +
                         std::to_string(s) + " of " +
                         std::to_string(shards_.size()));
  }
  verify_block_crc(s);
  const ShardMeta& m = shards_[s];
  const std::uint8_t* base = block(s);

  std::uint64_t index_bytes;
  std::memcpy(&index_bytes, base, 8);
  const std::size_t values_off = align8(8 + index_bytes);
  const std::size_t value_width = values_ == PackValueKind::kF64 ? 8 : 4;
  const std::size_t labels_off = values_off + m.nnz * value_width;
  const std::size_t rownnz_off = labels_off + m.row_count * 8;
  if (index_bytes > m.block_bytes ||
      rownnz_off + m.row_count * 4 != m.block_bytes) {
    throw ShardPackError("shardpack '" + path_ + "': shard " +
                         std::to_string(s) +
                         " layout disagrees with its directory entry");
  }

  row_ptr.resize(m.row_count + 1);
  col_idx.resize(m.nnz);
  values.resize(m.nnz);
  labels.resize(m.row_count);

  // row_ptr from the per-row nnz column.
  row_ptr[0] = 0;
  for (std::size_t r = 0; r < m.row_count; ++r) {
    std::uint32_t n;
    std::memcpy(&n, base + rownnz_off + r * 4, 4);
    row_ptr[r + 1] = row_ptr[r] + n;
  }
  if (row_ptr[m.row_count] != m.nnz) {
    throw ShardPackError("shardpack '" + path_ + "': shard " +
                         std::to_string(s) +
                         " row nnz column disagrees with its directory entry");
  }

  // Column indices from the delta varint stream. Strict in-row increase is
  // guaranteed by construction (gap - 1 encoding); only bounds need checks.
  // This loop is the whole decode cost on the fault path. Delta gaps for a
  // sparse row over a large dim land almost entirely in the 1- and 2-byte
  // encodings (gap < 2^14), so both get a branch-light fast path; the
  // per-byte end-checked loop only runs for 3+-byte varints or within two
  // bytes of the stream end.
  const std::uint8_t* in = base + 8;
  const std::uint8_t* const end = in + index_bytes;
  const auto malformed = [&]() -> ShardPackError {
    return ShardPackError("shardpack '" + path_ + "': shard " +
                          std::to_string(s) +
                          " has a malformed column index stream");
  };
  const auto out_of_range = [&](std::uint64_t col) -> ShardPackError {
    return ShardPackError("shardpack '" + path_ + "': shard " +
                          std::to_string(s) + " column index " +
                          std::to_string(col) + " out of range (dim " +
                          std::to_string(dim_) + ")");
  };
  const auto read_varint = [&](const std::uint8_t*& p) -> std::uint64_t {
    if (end - p >= 2) [[likely]] {
      const std::uint64_t b0 = p[0];
      if (b0 < 0x80) {
        p += 1;
        return b0;
      }
      const std::uint64_t b1 = p[1];
      if (b1 < 0x80) {
        p += 2;
        return (b0 & 0x7F) | (b1 << 7);
      }
    }
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (p == end || shift > 63) throw malformed();
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  };
  for (std::size_t r = 0; r < m.row_count; ++r) {
    const std::size_t jb = row_ptr[r];
    const std::size_t je = row_ptr[r + 1];
    if (jb == je) continue;
    std::uint64_t col = read_varint(in);  // first column is absolute
    if (col >= dim_) throw out_of_range(col);
    col_idx[jb] = static_cast<sparse::index_t>(col);
    for (std::size_t j = jb + 1; j < je; ++j) {
      col += read_varint(in) + 1;
      if (col >= dim_) throw out_of_range(col);
      col_idx[j] = static_cast<sparse::index_t>(col);
    }
  }
  if (in != end) {
    throw ShardPackError("shardpack '" + path_ + "': shard " +
                         std::to_string(s) +
                         " column index stream has trailing bytes");
  }

  if (values_ == PackValueKind::kF64) {
    std::memcpy(values.data(), base + values_off, m.nnz * 8);
  } else {
    for (std::size_t j = 0; j < m.nnz; ++j) {
      float f;
      std::memcpy(&f, base + values_off + j * 4, 4);
      values[j] = static_cast<sparse::value_t>(f);
    }
  }
  std::memcpy(labels.data(), base + labels_off, m.row_count * 8);
}

bool is_shardpack_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {};
  in.read(magic, sizeof magic);
  return static_cast<std::size_t>(in.gcount()) == sizeof magic &&
         std::memcmp(magic, kShardPackMagic, sizeof magic) == 0;
}

}  // namespace isasgd::io
