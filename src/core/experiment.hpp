// Experiment runner: the algorithm × thread-count sweeps behind Figures 3–5,
// plus trace CSV export so every bench can dump its raw series.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"

namespace isasgd::core {

/// One sweep: run each algorithm at each thread count (serial algorithms run
/// once, at threads = 1).
struct ExperimentSpec {
  std::string dataset_name;
  std::vector<solvers::Algorithm> algorithms;
  std::vector<std::size_t> thread_counts;
  solvers::SolverOptions base_options;
  /// Print one-line progress per run to stderr.
  bool verbose = true;
};

/// A completed run within a sweep.
struct ExperimentRun {
  solvers::Algorithm algorithm;
  std::size_t threads = 1;
  solvers::Trace trace;
};

struct ExperimentResult {
  std::string dataset_name;
  std::vector<ExperimentRun> runs;

  /// Finds the run for (algorithm, threads); serial algorithms match any
  /// requested thread count. Returns nullptr when absent.
  [[nodiscard]] const ExperimentRun* find(solvers::Algorithm algorithm,
                                          std::size_t threads) const;
};

/// Executes the sweep against a prepared Trainer.
ExperimentResult run_experiment(const Trainer& trainer,
                                const ExperimentSpec& spec);

/// Writes every trace point of the sweep as long-form CSV:
/// dataset,algorithm,threads,epoch,seconds,rmse,error_rate,objective,setup_s.
void write_traces_csv(const std::string& path, const ExperimentResult& result);

/// True if `algorithm` ignores the thread count (serial solver).
[[nodiscard]] bool is_serial(solvers::Algorithm algorithm);

}  // namespace isasgd::core
