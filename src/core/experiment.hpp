// Experiment runner: the solver × thread-count sweeps behind Figures 3–5,
// plus trace CSV export so every bench can dump its raw series.
//
// Specs address solvers by SolverRegistry name ("SGD", "is_asgd", ...), so
// a sweep can include any registered solver — including ones added outside
// this library. Whether a solver ignores the thread count comes from its
// registered capabilities, not from a hard-wired list.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/trainer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"

namespace isasgd::core {

/// One sweep: run each solver at each thread count (serial solvers run
/// once, at threads = 1).
struct ExperimentSpec {
  std::string dataset_name;
  /// Registry names, e.g. {"SGD", "ASGD", "IS-ASGD"}. Any spelling the
  /// registry accepts works ("is_asgd" == "IS-ASGD").
  std::vector<std::string> solvers;
  std::vector<std::size_t> thread_counts;
  solvers::SolverOptions base_options;
  /// Print one-line progress per run to stderr.
  bool verbose = true;
};

/// A completed run within a sweep.
struct ExperimentRun {
  std::string solver;  ///< canonical registry name, e.g. "IS-ASGD"
  std::size_t threads = 1;
  solvers::Trace trace;
};

struct ExperimentResult {
  std::string dataset_name;
  std::vector<ExperimentRun> runs;

  /// Finds the run for (solver, threads); serial solvers match any
  /// requested thread count. Accepts any registry spelling of the name.
  /// Returns nullptr when absent.
  [[nodiscard]] const ExperimentRun* find(std::string_view solver,
                                          std::size_t threads) const;
};

/// Executes the sweep against a prepared Trainer. Throws
/// std::invalid_argument (listing the registered names) if a spec entry
/// names no registered solver.
ExperimentResult run_experiment(const Trainer& trainer,
                                const ExperimentSpec& spec);

/// Writes every trace point of the sweep as long-form CSV:
/// dataset,solver,threads,epoch,seconds,rmse,error_rate,objective,setup_s.
void write_traces_csv(const std::string& path, const ExperimentResult& result);

/// True if the registered solver `solver` ignores the thread count. Sugar
/// over SolverRegistry capabilities; throws for unknown names.
[[nodiscard]] bool is_serial(std::string_view solver);

}  // namespace isasgd::core
