#include "core/execution.hpp"

#include <algorithm>
#include <thread>

namespace isasgd::core {

ExecutionContext::ExecutionContext(std::size_t eval_threads,
                                   util::ThreadPool::Options pool_options)
    : pool_(0, pool_options),
      eval_threads_(eval_threads
                        ? eval_threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency() / 2)) {}

}  // namespace isasgd::core
