#include "core/execution.hpp"

#include <algorithm>
#include <thread>

#include "io/shardpack.hpp"

namespace isasgd::core {

ExecutionContext::ExecutionContext(std::size_t eval_threads,
                                   util::ThreadPool::Options pool_options,
                                   NumaOptions numa_options)
    : pool_(0, pool_options),
      eval_threads_(eval_threads
                        ? eval_threads
                        : std::max<std::size_t>(
                              1, std::thread::hardware_concurrency() / 2)),
      numa_policy_(numa_options, NumaTopology::detect()) {}

std::shared_ptr<data::StreamingSource> ExecutionContext::open_streaming(
    std::string path, data::StreamingOptions options) {
  // The deleter captures a self-reference (when one exists): the source's
  // prefetch lane points into this context's pool, so the source must be
  // able to keep the context alive rather than trust the caller's scoping.
  std::shared_ptr<ExecutionContext> self = weak_from_this().lock();
  auto* source =
      new data::StreamingSource(std::move(path), options, &pool_);
  return std::shared_ptr<data::StreamingSource>(
      source, [self](data::StreamingSource* p) { delete p; });
}

std::shared_ptr<data::PackedSource> ExecutionContext::open_packed(
    std::string path, data::PackedOptions options) {
  std::shared_ptr<ExecutionContext> self = weak_from_this().lock();
  auto* source = new data::PackedSource(std::move(path), options, &pool_);
  return std::shared_ptr<data::PackedSource>(
      source, [self](data::PackedSource* p) { delete p; });
}

std::shared_ptr<data::DataSource> ExecutionContext::open_source(
    std::string path, data::StreamingOptions options) {
  if (io::is_shardpack_file(path)) {
    data::PackedOptions packed;
    packed.memory_budget_bytes = options.memory_budget_bytes;
    packed.prefetch = options.prefetch;
    return open_packed(std::move(path), packed);
  }
  return open_streaming(std::move(path), options);
}

}  // namespace isasgd::core
