#include "core/numa.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace isasgd::core {

namespace {

std::size_t online_cpu_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

#if defined(__linux__)
/// Best-effort pin of the calling thread to one CPU; failure (cgroup mask,
/// offlined CPU) leaves the thread where it is — placement degrades to
/// whatever the scheduler does, never to an error.
void pin_self_to(int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}
#endif

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    // Trim whitespace (the sysfs file ends in '\n').
    const auto first = chunk.find_first_not_of(" \t\n\r");
    if (first == std::string::npos) continue;
    const auto last = chunk.find_last_not_of(" \t\n\r");
    chunk = chunk.substr(first, last - first + 1);
    try {
      const auto dash = chunk.find('-');
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed chunk (tests feed garbage): skip it, keep the rest.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology NumaTopology::single_node(std::size_t cpu_count) {
  NumaTopology topo;
  NumaNode node;
  node.id = 0;
  node.cpus.resize(std::max<std::size_t>(1, cpu_count));
  std::iota(node.cpus.begin(), node.cpus.end(), 0);
  topo.nodes.push_back(std::move(node));
  return topo;
}

NumaTopology NumaTopology::detect() {
#if defined(__linux__)
  namespace fs = std::filesystem;
  NumaTopology topo;
  std::error_code ec;
  const fs::path root("/sys/devices/system/node");
  if (fs::is_directory(root, ec) && !ec) {
    for (const auto& entry : fs::directory_iterator(root, ec)) {
      if (ec) break;
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0) continue;
      int id = -1;
      try {
        id = std::stoi(name.substr(4));
      } catch (...) {
        continue;
      }
      std::ifstream in(entry.path() / "cpulist");
      if (!in) continue;
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      std::vector<int> cpus = parse_cpulist(text);
      if (cpus.empty()) continue;  // memory-only node: nothing to pin there
      topo.nodes.push_back(NumaNode{id, std::move(cpus)});
    }
  }
  if (!topo.nodes.empty()) {
    std::sort(topo.nodes.begin(), topo.nodes.end(),
              [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
    return topo;
  }
#endif
  return single_node(online_cpu_count());
}

std::size_t NumaTopology::total_cpus() const noexcept {
  std::size_t n = 0;
  for (const NumaNode& node : nodes) n += node.cpus.size();
  return n;
}

std::string NumaPolicy::describe() const {
  std::string out = "numa: ";
  switch (options_.mode) {
    case NumaOptions::Mode::kAuto: out += "auto"; break;
    case NumaOptions::Mode::kOn: out += "on"; break;
    case NumaOptions::Mode::kOff: out += "off"; break;
  }
  out += active() ? " (active, " : " (inactive, ";
  out += std::to_string(topology_.node_count()) + " node" +
         (topology_.node_count() == 1 ? "" : "s") + ", " +
         std::to_string(topology_.total_cpus()) + " cpus)";
  return out;
}

StripeMap StripeMap::build(std::size_t dim, std::size_t node_count) {
  node_count = std::max<std::size_t>(1, node_count);
  StripeMap map;
  map.dim = dim;
  // Even split rounded UP to the page quantum: earlier nodes absorb the
  // remainder, trailing nodes may own empty stripes on tiny models.
  const std::size_t pages = (dim + kStripeAlign - 1) / kStripeAlign;
  const std::size_t pages_per_node = (pages + node_count - 1) / node_count;
  std::size_t begin = 0;
  for (std::size_t n = 0; n < node_count; ++n) {
    const std::size_t end =
        std::min(dim, begin + pages_per_node * kStripeAlign);
    map.stripes.push_back(Stripe{begin, end, static_cast<int>(n)});
    begin = end;
  }
  return map;
}

int StripeMap::node_of(std::size_t j) const noexcept {
  for (const Stripe& s : stripes) {
    if (j >= s.begin && j < s.end) return s.node;
  }
  return stripes.empty() ? 0 : stripes.back().node;
}

std::vector<int> assign_shards_to_nodes(std::span<const double> phis,
                                        std::size_t node_count) {
  node_count = std::max<std::size_t>(1, node_count);
  std::vector<int> assignment(phis.size(), 0);
  if (phis.empty() || node_count == 1) return assignment;
  // LPT: heaviest shard first onto the lightest node — the classic 4/3
  // makespan bound, plenty for balancing update traffic across sockets.
  std::vector<std::size_t> order(phis.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return phis[a] > phis[b];
  });
  std::vector<double> load(node_count, 0.0);
  for (const std::size_t shard : order) {
    const std::size_t lightest = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[shard] = static_cast<int>(lightest);
    // Guard against all-zero Φ (e.g. empty shards): a tiny epsilon keeps
    // LPT rotating instead of dumping every shard on node 0.
    load[lightest] += phis[shard] > 0 ? phis[shard] : 1e-12;
  }
  return assignment;
}

std::string NumaPlacement::describe() const {
  if (!active) return "placement: inactive";
  std::string out = "placement: " + std::to_string(topology.node_count()) +
                    "-node stripes [";
  for (std::size_t i = 0; i < stripes.stripes.size(); ++i) {
    const Stripe& s = stripes.stripes[i];
    if (i) out += " ";
    out += std::to_string(s.begin) + ":" + std::to_string(s.end) + "@n" +
           std::to_string(s.node);
  }
  out += "] shards[";
  for (std::size_t i = 0; i < shard_nodes.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(i) + "@n" + std::to_string(shard_nodes[i]);
  }
  out += "]";
  return out;
}

NumaPlacement plan_placement(const NumaPolicy* policy,
                             std::span<const double> phis, std::size_t dim) {
  NumaPlacement plan;
  if (!policy || !policy->active()) return plan;
  plan.active = true;
  plan.topology = policy->topology();
  plan.stripes = StripeMap::build(dim, plan.topology.node_count());
  plan.shard_nodes = assign_shards_to_nodes(phis, plan.topology.node_count());
  return plan;
}

std::vector<int> worker_cpu_plan(const NumaPlacement& plan, std::size_t team) {
  if (!plan.active || plan.shard_nodes.empty() || team == 0) return {};
  std::vector<int> cpus(team, -1);
  // Round-robin cursor per node so co-located workers spread over the
  // node's CPUs instead of stacking on the first one.
  std::vector<std::size_t> cursor(plan.topology.node_count(), 0);
  for (std::size_t t = 0; t < team; ++t) {
    const std::size_t node_idx = static_cast<std::size_t>(
        plan.shard_nodes[t % plan.shard_nodes.size()]);
    if (node_idx >= plan.topology.nodes.size()) continue;
    const NumaNode& node = plan.topology.nodes[node_idx];
    if (node.cpus.empty()) continue;
    cpus[t] = node.cpus[cursor[node_idx]++ % node.cpus.size()];
  }
  return cpus;
}

void first_touch_zero(double* data, const StripeMap& map,
                      const NumaTopology& topology) {
  if (map.dim == 0) return;
  const bool threaded = map.stripes.size() > 1 && topology.multi_node();
  if (!threaded) {
    std::memset(data, 0, map.dim * sizeof(double));
    return;
  }
  // One short-lived thread per stripe, pinned to the owning node before it
  // touches a byte: the kernel's first-touch policy then backs each page
  // with node-local memory. Setup cost is one-time per SharedModel and
  // irrelevant next to an epoch.
  std::vector<std::thread> threads;
  threads.reserve(map.stripes.size());
  for (const Stripe& s : map.stripes) {
    if (s.begin >= s.end) continue;
    threads.emplace_back([data, s, &topology] {
#if defined(__linux__)
      const std::size_t node_idx = static_cast<std::size_t>(s.node);
      if (node_idx < topology.nodes.size() &&
          !topology.nodes[node_idx].cpus.empty()) {
        pin_self_to(topology.nodes[node_idx].cpus.front());
      }
#else
      (void)topology;
#endif
      std::memset(data + s.begin, 0, (s.end - s.begin) * sizeof(double));
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace isasgd::core
