#include "core/experiment.hpp"

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace isasgd::core {

bool is_serial(solvers::Algorithm algorithm) {
  return algorithm == solvers::Algorithm::kSgd ||
         algorithm == solvers::Algorithm::kIsSgd ||
         algorithm == solvers::Algorithm::kSvrgSgd ||
         algorithm == solvers::Algorithm::kSaga;
}

const ExperimentRun* ExperimentResult::find(solvers::Algorithm algorithm,
                                            std::size_t threads) const {
  for (const ExperimentRun& run : runs) {
    if (run.algorithm != algorithm) continue;
    if (is_serial(algorithm) || run.threads == threads) return &run;
  }
  return nullptr;
}

ExperimentResult run_experiment(const Trainer& trainer,
                                const ExperimentSpec& spec) {
  ExperimentResult result;
  result.dataset_name = spec.dataset_name;
  for (solvers::Algorithm algorithm : spec.algorithms) {
    const bool serial = is_serial(algorithm);
    std::vector<std::size_t> counts =
        serial ? std::vector<std::size_t>{1} : spec.thread_counts;
    for (std::size_t threads : counts) {
      solvers::SolverOptions options = spec.base_options;
      options.threads = threads;
      if (spec.verbose) {
        util::log_info() << spec.dataset_name << ": running "
                         << solvers::algorithm_name(algorithm) << " threads="
                         << threads << " epochs=" << options.epochs;
      }
      ExperimentRun run;
      run.algorithm = algorithm;
      run.threads = threads;
      run.trace = trainer.train(algorithm, options);
      if (spec.verbose) {
        util::log_info() << "  done in " << run.trace.train_seconds
                         << "s train (+" << run.trace.setup_seconds
                         << "s setup), best rmse=" << run.trace.best_rmse()
                         << " best err=" << run.trace.best_error_rate();
      }
      result.runs.push_back(std::move(run));
    }
  }
  return result;
}

void write_traces_csv(const std::string& path,
                      const ExperimentResult& result) {
  util::CsvWriter csv(path);
  csv.header({"dataset", "algorithm", "threads", "epoch", "seconds", "rmse",
              "error_rate", "objective", "setup_seconds"});
  for (const ExperimentRun& run : result.runs) {
    for (const solvers::TracePoint& p : run.trace.points) {
      csv.row_values(result.dataset_name,
                     solvers::algorithm_name(run.algorithm), run.threads,
                     p.epoch, p.seconds, p.rmse, p.error_rate, p.objective,
                     run.trace.setup_seconds);
    }
  }
}

}  // namespace isasgd::core
