#include "core/experiment.hpp"

#include "solvers/solver.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"

namespace isasgd::core {

bool is_serial(std::string_view solver) {
  return solvers::SolverRegistry::instance().get(solver).capabilities().serial();
}

const ExperimentRun* ExperimentResult::find(std::string_view solver,
                                            std::size_t threads) const {
  const std::string key = solvers::SolverRegistry::normalize(solver);
  for (const ExperimentRun& run : runs) {
    if (solvers::SolverRegistry::normalize(run.solver) != key) continue;
    if (is_serial(run.solver) || run.threads == threads) return &run;
  }
  return nullptr;
}

ExperimentResult run_experiment(const Trainer& trainer,
                                const ExperimentSpec& spec) {
  ExperimentResult result;
  result.dataset_name = spec.dataset_name;
  for (const std::string& name : spec.solvers) {
    const solvers::Solver& solver =
        solvers::SolverRegistry::instance().get(name);
    const bool serial = solver.capabilities().serial();
    std::vector<std::size_t> counts =
        serial ? std::vector<std::size_t>{1} : spec.thread_counts;
    for (std::size_t threads : counts) {
      solvers::SolverOptions options = spec.base_options;
      options.threads = threads;
      if (spec.verbose) {
        util::log_info() << spec.dataset_name << ": running " << solver.name()
                         << " threads=" << threads
                         << " epochs=" << options.epochs;
      }
      ExperimentRun run;
      run.solver = std::string(solver.name());
      run.threads = threads;
      run.trace = trainer.train(solver.name(), options);
      if (spec.verbose) {
        util::log_info() << "  done in " << run.trace.train_seconds
                         << "s train (+" << run.trace.setup_seconds
                         << "s setup), best rmse=" << run.trace.best_rmse()
                         << " best err=" << run.trace.best_error_rate();
      }
      result.runs.push_back(std::move(run));
    }
  }
  return result;
}

void write_traces_csv(const std::string& path,
                      const ExperimentResult& result) {
  util::CsvWriter csv(path);
  csv.header({"dataset", "solver", "threads", "epoch", "seconds", "rmse",
              "error_rate", "objective", "setup_seconds"});
  for (const ExperimentRun& run : result.runs) {
    for (const solvers::TracePoint& p : run.trace.points) {
      csv.row_values(result.dataset_name, run.solver, run.threads, p.epoch,
                     p.seconds, p.rmse, p.error_rate, p.objective,
                     run.trace.setup_seconds);
    }
  }
}

}  // namespace isasgd::core
