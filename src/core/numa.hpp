// NUMA-aware model placement: topology detection, model striping, and
// shard→node worker assignment.
//
// On a multi-socket box the shared model is the hottest data structure in
// the library — every Hogwild worker reads it for the margin dot and writes
// it for the fused update, every epoch. A model allocated by one thread is
// first-touch-placed entirely on that thread's node, so remote workers pay
// cross-socket latency for every coordinate. This layer:
//
//   1. detects the node topology from /sys/devices/system/node (no libnuma
//      dependency — the sysfs files are plain text; a machine without the
//      directory is treated as one node and everything degrades to no-ops),
//   2. stripes the model across the nodes in contiguous page-aligned runs,
//      first-touch-initialised from a thread pinned to the owning node, so
//      the model's memory bandwidth is served by every socket instead of
//      one, and
//   3. assigns data shards to nodes by LPT over the partition Φ totals (the
//      per-shard update-cost mass IS-ASGD already computes), then pins each
//      pool worker to a CPU of the node owning its shard — the workers with
//      the heaviest update traffic sit next to a proportional slice of the
//      model.
//
// Activation: NumaOptions::Mode::kAuto (the default) enables placement only
// when the host really has multiple populated nodes, so laptops, CI
// runners, and this container see bit-for-bit the pre-NUMA behaviour. kOn
// forces the striping/pinning paths even on one node (test coverage); kOff
// disables them everywhere.
//
// Placement never changes results: stripes only decide which socket backs
// which pages, workers still address the model through the same flat span,
// and tests/numa_test.cpp pins striped-vs-flat bit identity.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace isasgd::core {

/// One populated NUMA node: its sysfs id and the CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;
};

/// The host's node layout. Detected once per process (ExecutionContext
/// construction); tests build fake topologies directly.
struct NumaTopology {
  std::vector<NumaNode> nodes;

  /// Parses /sys/devices/system/node/node*/cpulist. Nodes without CPUs
  /// (CXL/ HBM memory-only nodes) are dropped — a worker cannot be pinned
  /// there. Any failure (non-Linux, masked sysfs) yields a single node
  /// owning every online CPU.
  [[nodiscard]] static NumaTopology detect();

  /// Single-node fallback: node 0 owning CPUs [0, cpu_count).
  [[nodiscard]] static NumaTopology single_node(std::size_t cpu_count);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes.size();
  }
  [[nodiscard]] bool multi_node() const noexcept { return nodes.size() > 1; }
  [[nodiscard]] std::size_t total_cpus() const noexcept;
};

/// Parses a sysfs cpulist string ("0-3,8,10-11") into sorted CPU ids.
/// Malformed chunks are skipped (sysfs is trusted but tests feed garbage).
[[nodiscard]] std::vector<int> parse_cpulist(const std::string& text);

/// User-facing placement knobs (TrainerBuilder::numa / ExecutionContext).
struct NumaOptions {
  enum class Mode {
    kAuto,  ///< stripe+pin only when the host has >1 populated node
    kOn,    ///< force the placement paths even on one node
    kOff,   ///< never stripe or pin
  };
  Mode mode = Mode::kAuto;
};

/// Options + detected topology: what an ExecutionContext owns and hands to
/// solvers through SolverContext::numa.
class NumaPolicy {
 public:
  NumaPolicy() : NumaPolicy(NumaOptions{}, NumaTopology::detect()) {}
  NumaPolicy(NumaOptions options, NumaTopology topology)
      : options_(options), topology_(std::move(topology)) {}

  [[nodiscard]] const NumaOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const NumaTopology& topology() const noexcept {
    return topology_;
  }

  /// True when placement should run: kOn, or kAuto on a multi-node host.
  [[nodiscard]] bool active() const noexcept {
    switch (options_.mode) {
      case NumaOptions::Mode::kOn: return true;
      case NumaOptions::Mode::kOff: return false;
      case NumaOptions::Mode::kAuto: return topology_.multi_node();
    }
    return false;
  }

  [[nodiscard]] std::string describe() const;

 private:
  NumaOptions options_;
  NumaTopology topology_;
};

/// A contiguous run of model coordinates owned by one node.
struct Stripe {
  std::size_t begin = 0;  ///< first coordinate
  std::size_t end = 0;    ///< one past last
  int node = 0;           ///< index into NumaTopology::nodes
};

/// Model dimension → per-node stripes. Stripe boundaries are aligned to
/// kStripeAlign coordinates (512 doubles = 4096 bytes = one page) so a
/// first-touch page can never straddle two owners.
struct StripeMap {
  std::size_t dim = 0;
  std::vector<Stripe> stripes;

  /// One page-aligned stripe per node, sizes within one alignment quantum
  /// of each other; trailing nodes get empty stripes when dim is small.
  /// node_count is clamped up to 1.
  [[nodiscard]] static StripeMap build(std::size_t dim,
                                       std::size_t node_count);

  /// Owning node index of coordinate j (dim must be > 0, j < dim).
  [[nodiscard]] int node_of(std::size_t j) const noexcept;
};

/// 512 doubles = 4096 bytes: the x86/ARM base page, the first-touch
/// placement granularity.
inline constexpr std::size_t kStripeAlign = 512;

/// LPT (longest-processing-time) assignment of shards to nodes: shards
/// sorted by descending Φ, each placed on the currently lightest node.
/// Returns shard → node index; empty input yields empty output.
[[nodiscard]] std::vector<int> assign_shards_to_nodes(
    std::span<const double> phis, std::size_t node_count);

/// A fully materialised placement plan for one training run.
struct NumaPlacement {
  bool active = false;        ///< false ⇒ every other field is unused
  NumaTopology topology;      ///< copied: independent of policy lifetime
  StripeMap stripes;          ///< model coordinate → node
  std::vector<int> shard_nodes;  ///< shard → node (LPT over Φ)

  [[nodiscard]] std::string describe() const;
};

/// Builds the plan for a run: inactive (all defaults) when `policy` is null
/// or !policy->active(), otherwise stripes `dim` over the topology and
/// LPT-assigns `phis` (per-shard Φ totals; uniform weights when empty).
[[nodiscard]] NumaPlacement plan_placement(const NumaPolicy* policy,
                                           std::span<const double> phis,
                                           std::size_t dim);

/// Per-worker CPU pin list for ThreadPool::set_worker_cpus: worker t works
/// shard t (the solvers' tid ↔ shard convention), so it is pinned to a CPU
/// of shard t's node, round-robin within the node. Empty when the plan is
/// inactive or has no shard assignment.
[[nodiscard]] std::vector<int> worker_cpu_plan(const NumaPlacement& plan,
                                               std::size_t team);

/// First-touch initialisation: zeroes data[0, map.dim) stripe by stripe,
/// each stripe from a thread pinned to its owning node, so the kernel
/// places each page on the node that will serve it. Inactive plans (or
/// single-stripe maps) zero inline on the calling thread.
void first_touch_zero(double* data, const StripeMap& map,
                      const NumaTopology& topology);

}  // namespace isasgd::core
