// The library's primary public API: isasgd::Trainer.
//
//   using namespace isasgd;
//   auto data = data::generate_paper_dataset(data::PaperDataset::kNews20);
//   objectives::LogisticLoss loss;
//   core::Trainer trainer(data, loss,
//                         objectives::Regularization::l1(1e-5));
//   solvers::SolverOptions opt;
//   opt.threads = 8;
//   solvers::Trace trace = trainer.train(solvers::Algorithm::kIsAsgd, opt);
//
// The Trainer wires a dataset + objective + regularizer to the solver suite
// and the standard evaluator; it owns nothing heavier than references, so it
// is cheap to construct per experiment.
#pragma once

#include "metrics/evaluator.hpp"
#include "objectives/objective.hpp"
#include "solvers/is_asgd.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::core {

/// Facade binding a dataset and objective to the registered solvers.
class Trainer {
 public:
  /// `data` and `objective` must outlive the Trainer. `eval_threads`
  /// parallelises snapshot scoring (outside the timed training windows).
  Trainer(const sparse::CsrMatrix& data,
          const objectives::Objective& objective,
          objectives::Regularization reg, std::size_t eval_threads = 0);

  /// Runs `algorithm` under `options` (the options' reg field is overridden
  /// by the Trainer's regularizer so all runs score consistently).
  [[nodiscard]] solvers::Trace train(solvers::Algorithm algorithm,
                                     solvers::SolverOptions options) const;

  /// IS-ASGD with partition diagnostics (for the balancing ablation).
  [[nodiscard]] solvers::Trace train_is_asgd(
      solvers::SolverOptions options, solvers::IsAsgdReport* report) const;

  /// Scores an arbitrary model snapshot.
  [[nodiscard]] solvers::EvalResult evaluate(std::span<const double> w) const {
    return evaluator_.evaluate(w);
  }

  [[nodiscard]] const sparse::CsrMatrix& data() const noexcept { return data_; }
  [[nodiscard]] const objectives::Objective& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] const objectives::Regularization& regularization()
      const noexcept {
    return reg_;
  }

 private:
  const sparse::CsrMatrix& data_;
  const objectives::Objective& objective_;
  objectives::Regularization reg_;
  metrics::Evaluator evaluator_;
};

}  // namespace isasgd::core
