// The library's primary public API: TrainerBuilder → Trainer → SolverRegistry.
//
//   using namespace isasgd;
//   auto data = data::generate_paper_dataset(data::PaperDataset::kNews20);
//   objectives::LogisticLoss loss;
//
//   core::Trainer trainer = core::TrainerBuilder()
//                               .data(data)
//                               .objective(loss)
//                               .l1(1e-5)
//                               .eval_threads(8)
//                               .build();
//
//   solvers::SolverOptions opt;
//   opt.threads = 8;
//   solvers::Trace trace = trainer.train("is_asgd", opt);
//
// Solvers are addressed by registry name — any solver registered in
// solvers::SolverRegistry (the 9 paper algorithms, the prox family, and
// anything an application registers itself) is reachable without touching
// this class. An unknown name throws std::invalid_argument listing every
// registered solver.
//
// Progress, early stopping, and per-solver diagnostics flow through the
// observer pipeline (solvers/observer.hpp):
//
//   struct StopAtTarget : solvers::TrainingObserver {
//     bool on_epoch(const solvers::TracePoint& p) override {
//       return p.error_rate > 0.05;  // false ⇒ stop after this epoch
//     }
//     void on_diagnostics(const std::any& d) override {
//       if (auto* r = std::any_cast<solvers::IsAsgdReport>(&d)) { ... }
//     }
//   };
//   StopAtTarget obs;
//   auto trace = trainer.train("is_asgd", opt, &obs);
//
// The Trainer wires a dataset + objective + regularizer to the registered
// solvers and the standard evaluator; it owns nothing heavier than
// references, so it is cheap to construct per experiment. (The deprecated
// enum-based train(Algorithm, ...) / train_is_asgd(..., IsAsgdReport*)
// shims were removed after their one release of grace; diagnostics arrive
// through TrainingObserver::on_diagnostics.) The simulated distributed
// solvers (dist.ps.is_asgd, dist.ps.asgd, dist.allreduce.sgd,
// sim.delayed_sgd, ...) train through the same facade: configure the
// cluster cost model once on the builder and every dist.* run prices
// against it —
//
//   auto trainer = core::TrainerBuilder().data(X).objective(loss)
//                      .cluster({.nodes = 8}).build();
//   auto trace = trainer.train("dist.ps.is_asgd", opt);   // simulated secs
//
// See docs/API.md for the full walkthrough, including the "how to add a
// solver" recipe.
#pragma once

#include <memory>
#include <string_view>

#include "core/execution.hpp"
#include "data/data_source.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/objective.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/solver.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::core {

/// Facade binding a dataset and objective to the registered solvers.
/// Construct directly or — preferably — through TrainerBuilder.
class Trainer {
 public:
  /// `data` and `objective` must outlive the Trainer. `eval_threads`
  /// parallelises snapshot scoring (outside the timed training windows;
  /// 0 defers to the execution context's default). `execution` is the
  /// persistent worker-pool context every train call and evaluation runs
  /// on; when null the Trainer creates its own. Pass one shared context to
  /// several Trainers to share a single pool across datasets. `cluster`
  /// (optional) is this Trainer's simulated-cluster cost model for the
  /// dist.* solvers; it overrides any spec on the execution context and is
  /// private to this Trainer — building one Trainer never changes what
  /// another prices against.
  Trainer(const sparse::CsrMatrix& data,
          const objectives::Objective& objective,
          objectives::Regularization reg, std::size_t eval_threads = 0,
          ExecutionContextPtr execution = nullptr,
          std::optional<distributed::ClusterSpec> cluster = std::nullopt,
          std::optional<NumaOptions> numa = std::nullopt);

  /// Source form: trains (and evaluates) against a data::DataSource —
  /// the out-of-core entry point. Streaming-capable solvers iterate the
  /// source shard-by-shard; the rest fall back to source.materialize()
  /// (with a one-time warning from the streaming backend). `source` must
  /// outlive the Trainer.
  Trainer(const data::DataSource& source,
          const objectives::Objective& objective,
          objectives::Regularization reg, std::size_t eval_threads = 0,
          ExecutionContextPtr execution = nullptr,
          std::optional<distributed::ClusterSpec> cluster = std::nullopt,
          std::optional<NumaOptions> numa = std::nullopt);

  /// Resolves `solver` through SolverRegistry (case/punctuation-insensitive:
  /// "IS-ASGD" == "is_asgd") and runs it under `options` (the options' reg
  /// field is overridden by the Trainer's regularizer so all runs score
  /// consistently). `observer` (optional) receives per-epoch trace points,
  /// may request early stop, and collects per-solver diagnostics. Throws
  /// std::invalid_argument listing the registered names when `solver` is
  /// unknown.
  [[nodiscard]] solvers::Trace train(
      std::string_view solver, solvers::SolverOptions options,
      solvers::TrainingObserver* observer = nullptr) const;

  /// Checkpoint-aware form: `snapshot` carries an optional resume state
  /// and/or a fence-time capture sink (solvers/snapshot.hpp). Only solvers
  /// declaring capabilities().checkpointable accept non-empty hooks —
  /// Solver::train rejects the rest with std::invalid_argument. The service
  /// layer (src/service/) drives all its jobs through this overload.
  [[nodiscard]] solvers::Trace train(
      std::string_view solver, solvers::SolverOptions options,
      solvers::TrainingObserver* observer,
      const solvers::SnapshotHooks& snapshot) const;

  /// Scores an arbitrary model snapshot.
  [[nodiscard]] solvers::EvalResult evaluate(std::span<const double> w) const {
    return evaluator_.evaluate(w);
  }

  /// The dataset as a full matrix. On a streaming source this materialises
  /// the whole file — prefer source() for shape queries.
  [[nodiscard]] const sparse::CsrMatrix& data() const {
    return source_->materialize();
  }

  /// The dataset abstraction this Trainer trains from.
  [[nodiscard]] const data::DataSource& source() const noexcept {
    return *source_;
  }

  [[nodiscard]] const objectives::Objective& objective() const noexcept {
    return objective_;
  }
  [[nodiscard]] const objectives::Regularization& regularization()
      const noexcept {
    return reg_;
  }

  /// The execution context (pool + eval threads) this Trainer runs on.
  [[nodiscard]] const ExecutionContextPtr& execution() const noexcept {
    return execution_;
  }

 private:
  /// Backs the CsrMatrix constructor: the matrix wrapped as a single-shard
  /// source so both constructors converge on one representation.
  std::shared_ptr<const data::InMemorySource> owned_source_;
  const data::DataSource* source_;  // never null after construction
  const objectives::Objective& objective_;
  objectives::Regularization reg_;
  ExecutionContextPtr execution_;  // never null after construction
  /// This Trainer's cluster cost model; falls back to the execution
  /// context's spec, then to the default ClusterSpec, when unset.
  std::optional<distributed::ClusterSpec> cluster_;
  /// This Trainer's NUMA placement policy (the builder's numa(...) options
  /// bound to the execution context's detected topology); falls back to the
  /// execution context's policy when unset.
  std::optional<NumaPolicy> numa_;
  metrics::Evaluator evaluator_;
};

/// Fluent construction of a Trainer:
///
///   auto trainer = TrainerBuilder().data(X).objective(loss).l1(1e-5).build();
///
/// data() and objective() are mandatory; build() throws std::logic_error
/// when either is missing. The regularizer defaults to none; the last of
/// l1()/l2()/regularization() wins.
class TrainerBuilder {
 public:
  /// Simulated-cluster cost model for the dist.* solvers, private to the
  /// built Trainer (a shared ExecutionContext is never mutated — sibling
  /// Trainers keep pricing against their own specs). Validated here, once,
  /// through ClusterSpec::validate — std::invalid_argument naming the
  /// offending field on a nonsensical spec. Without this call the dist.*
  /// solvers fall back to the execution context's spec
  /// (ExecutionContext::set_cluster), then to the default ClusterSpec.
  TrainerBuilder& cluster(distributed::ClusterSpec spec) {
    spec.validate();
    cluster_ = std::move(spec);
    return *this;
  }

  /// The training matrix (not owned; must outlive the built Trainer).
  /// Mutually exclusive with source().
  TrainerBuilder& data(const sparse::CsrMatrix& data) {
    data_ = &data;
    return *this;
  }

  /// A data::DataSource to train from (not owned; must outlive the built
  /// Trainer) — the out-of-core path: pass a StreamingSource to train on a
  /// dataset larger than memory, or a chunked InMemorySource to exercise
  /// the shard-major path on resident data. Mutually exclusive with data().
  TrainerBuilder& source(const data::DataSource& source) {
    source_ = &source;
    return *this;
  }

  /// The loss (not owned; must outlive the built Trainer).
  TrainerBuilder& objective(const objectives::Objective& objective) {
    objective_ = &objective;
    return *this;
  }

  /// Any Regularization value (kind + strength).
  TrainerBuilder& regularization(objectives::Regularization reg) {
    reg_ = reg;
    return *this;
  }

  /// Shorthand for regularization(Regularization::l1(eta)).
  TrainerBuilder& l1(double eta) {
    reg_ = objectives::Regularization::l1(eta);
    return *this;
  }

  /// Shorthand for regularization(Regularization::l2(eta)).
  TrainerBuilder& l2(double eta) {
    reg_ = objectives::Regularization::l2(eta);
    return *this;
  }

  /// Threads for snapshot scoring (0 = half the hardware threads).
  TrainerBuilder& eval_threads(std::size_t threads) {
    eval_threads_ = threads;
    return *this;
  }

  /// Shares an existing execution context (worker pool) with the built
  /// Trainer instead of creating a fresh one — the way to run many
  /// Trainers/sweeps on one set of worker threads.
  TrainerBuilder& execution(ExecutionContextPtr execution) {
    execution_ = std::move(execution);
    return *this;
  }

  /// NUMA placement options for the built Trainer, private to it (a shared
  /// ExecutionContext is never mutated — same contract as cluster()). The
  /// default, on any Trainer built without this call, is the execution
  /// context's policy: Mode::kAuto, which stripes the model and pins
  /// workers only on hosts with more than one populated node. Use
  /// {.mode = NumaOptions::Mode::kOff} to opt a Trainer out on a NUMA box,
  /// or kOn to force the placement paths single-node (tests).
  TrainerBuilder& numa(NumaOptions options) {
    numa_ = options;
    return *this;
  }

  /// Builds the Trainer. Throws std::logic_error unless objective() and
  /// exactly one of data()/source() were provided.
  [[nodiscard]] Trainer build() const;

 private:
  const sparse::CsrMatrix* data_ = nullptr;
  const data::DataSource* source_ = nullptr;
  const objectives::Objective* objective_ = nullptr;
  objectives::Regularization reg_ = objectives::Regularization::none();
  std::size_t eval_threads_ = 0;
  ExecutionContextPtr execution_;
  std::optional<distributed::ClusterSpec> cluster_;
  std::optional<NumaOptions> numa_;
};

}  // namespace isasgd::core
