// The shared execution substrate a Trainer (and everything it drives) runs
// on: one persistent util::ThreadPool plus the evaluation thread count.
//
// Ownership model:
//   * core::TrainerBuilder creates an ExecutionContext at build() time (or
//     accepts one via execution(...)) and hands the Trainer a shared_ptr.
//   * Every Trainer::train call passes the context's pool into the solver's
//     SolverContext, and the Trainer's metrics::Evaluator scores snapshots
//     on the same pool — so across all train calls, all evaluations, and
//     every run of a core::ExperimentSpec grid, worker threads are spawned
//     exactly once.
//   * Several Trainers may share one context (pass the same shared_ptr to
//     several builders): useful for sweep drivers that touch many datasets.
//
// The context must outlive any Trainer holding it — shared_ptr makes that
// automatic.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "data/streaming_source.hpp"
#include "distributed/cluster.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::core {

class ExecutionContext
    : public std::enable_shared_from_this<ExecutionContext> {
 public:
  /// `eval_threads` parallelises snapshot scoring (0 = half the hardware
  /// threads, at least 1). `pool_options` tunes the worker pool (CPU
  /// pinning, oversubscription clamp).
  explicit ExecutionContext(
      std::size_t eval_threads = 0,
      util::ThreadPool::Options pool_options = util::ThreadPool::Options());

  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] std::size_t eval_threads() const noexcept {
    return eval_threads_;
  }

  /// Opens a dataset file as a StreamingSource whose background prefetch
  /// rides this context's pool — the one-liner for out-of-core training:
  ///
  ///   auto ctx = std::make_shared<core::ExecutionContext>();
  ///   auto source = ctx->open_streaming("kdd.libsvm", {.shard_rows = 8192});
  ///   auto trainer = core::TrainerBuilder().source(*source)
  ///                      .objective(loss).execution(ctx).build();
  ///
  /// When the context is itself shared_ptr-owned (as above), the returned
  /// source keeps it alive, so the prefetch pool can never dangle even if
  /// the caller drops `ctx` first. A stack-allocated context cannot be
  /// retained that way and must simply outlive the source.
  [[nodiscard]] std::shared_ptr<data::StreamingSource> open_streaming(
      std::string path, data::StreamingOptions options = {});

  /// Configures the simulated-cluster cost model shared by every Trainer
  /// on this context — the way to price a whole sweep's dist.* runs under
  /// one cluster. Validates through ClusterSpec::validate
  /// (std::invalid_argument naming the bad field). A Trainer built with
  /// its own TrainerBuilder::cluster(...) spec overrides this one; Trainers
  /// built without it fall back here, then to the default ClusterSpec.
  void set_cluster(distributed::ClusterSpec spec) {
    spec.validate();
    cluster_ = std::move(spec);
  }

  /// The configured cluster spec, or null when none was set (the dist.*
  /// solvers then fall back to the default ClusterSpec).
  [[nodiscard]] const distributed::ClusterSpec* cluster() const noexcept {
    return cluster_ ? &*cluster_ : nullptr;
  }

 private:
  util::ThreadPool pool_;
  std::size_t eval_threads_;
  std::optional<distributed::ClusterSpec> cluster_;
};

using ExecutionContextPtr = std::shared_ptr<ExecutionContext>;

}  // namespace isasgd::core
