// The shared execution substrate a Trainer (and everything it drives) runs
// on: one persistent util::ThreadPool plus the evaluation thread count.
//
// Ownership model:
//   * core::TrainerBuilder creates an ExecutionContext at build() time (or
//     accepts one via execution(...)) and hands the Trainer a shared_ptr.
//   * Every Trainer::train call passes the context's pool into the solver's
//     SolverContext, and the Trainer's metrics::Evaluator scores snapshots
//     on the same pool — so across all train calls, all evaluations, and
//     every run of a core::ExperimentSpec grid, worker threads are spawned
//     exactly once.
//   * Several Trainers may share one context (pass the same shared_ptr to
//     several builders): useful for sweep drivers that touch many datasets.
//
// The context must outlive any Trainer holding it — shared_ptr makes that
// automatic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/numa.hpp"
#include "data/packed_source.hpp"
#include "data/streaming_source.hpp"
#include "distributed/cluster.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::core {

class ExecutionContext
    : public std::enable_shared_from_this<ExecutionContext> {
 public:
  /// `eval_threads` parallelises snapshot scoring (0 = half the hardware
  /// threads, at least 1). `pool_options` tunes the worker pool (CPU
  /// pinning, oversubscription clamp). `numa_options` governs NUMA model
  /// placement (default kAuto: active only on multi-node hosts); the node
  /// topology is detected once here and cached for every run on this
  /// context.
  explicit ExecutionContext(
      std::size_t eval_threads = 0,
      util::ThreadPool::Options pool_options = util::ThreadPool::Options(),
      NumaOptions numa_options = NumaOptions());

  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] std::size_t eval_threads() const noexcept {
    return eval_threads_;
  }

  /// Opens a dataset file as a StreamingSource whose background prefetch
  /// rides this context's pool — the one-liner for out-of-core training:
  ///
  ///   auto ctx = std::make_shared<core::ExecutionContext>();
  ///   auto source = ctx->open_streaming("kdd.libsvm", {.shard_rows = 8192});
  ///   auto trainer = core::TrainerBuilder().source(*source)
  ///                      .objective(loss).execution(ctx).build();
  ///
  /// When the context is itself shared_ptr-owned (as above), the returned
  /// source keeps it alive, so the prefetch pool can never dangle even if
  /// the caller drops `ctx` first. A stack-allocated context cannot be
  /// retained that way and must simply outlive the source.
  [[nodiscard]] std::shared_ptr<data::StreamingSource> open_streaming(
      std::string path, data::StreamingOptions options = {});

  /// Opens a compiled shardpack (io::shardpack) as a PackedSource riding
  /// this context's pool, with the same lifetime guarantee as
  /// open_streaming.
  [[nodiscard]] std::shared_ptr<data::PackedSource> open_packed(
      std::string path, data::PackedOptions options = {});

  /// Format-dispatching open: an ISSP shardpack becomes a PackedSource
  /// (budget/prefetch carried over from `options`; autotuner on), anything
  /// else a StreamingSource — so callers (service jobs, benches, examples)
  /// accept either file kind through one entry point.
  [[nodiscard]] std::shared_ptr<data::DataSource> open_source(
      std::string path, data::StreamingOptions options = {});

  /// Configures the simulated-cluster cost model shared by every Trainer
  /// on this context — the way to price a whole sweep's dist.* runs under
  /// one cluster. Validates through ClusterSpec::validate
  /// (std::invalid_argument naming the bad field). A Trainer built with
  /// its own TrainerBuilder::cluster(...) spec overrides this one; Trainers
  /// built without it fall back here, then to the default ClusterSpec.
  void set_cluster(distributed::ClusterSpec spec) {
    spec.validate();
    cluster_ = std::move(spec);
  }

  /// The configured cluster spec, or null when none was set (the dist.*
  /// solvers then fall back to the default ClusterSpec).
  [[nodiscard]] const distributed::ClusterSpec* cluster() const noexcept {
    return cluster_ ? &*cluster_ : nullptr;
  }

  /// Reconfigures NUMA placement for subsequent runs (the topology stays
  /// the one detected at construction). Mirrors set_cluster's "shared
  /// context, per-context policy" pattern.
  void set_numa(NumaOptions options) {
    numa_policy_ = NumaPolicy(options, numa_policy_.topology());
  }

  /// NUMA options + detected topology; solvers receive it through
  /// SolverContext::numa and build a per-run NumaPlacement from it.
  [[nodiscard]] const NumaPolicy& numa_policy() const noexcept {
    return numa_policy_;
  }

  /// RAII job ticket from begin_job(): the context counts it as active
  /// while alive. Movable, not copyable.
  class JobToken {
   public:
    JobToken() = default;
    explicit JobToken(ExecutionContext* ctx) : ctx_(ctx) {}
    JobToken(JobToken&& other) noexcept : ctx_(other.ctx_) {
      other.ctx_ = nullptr;
    }
    JobToken& operator=(JobToken&& other) noexcept {
      if (this != &other) {
        release();
        ctx_ = other.ctx_;
        other.ctx_ = nullptr;
      }
      return *this;
    }
    JobToken(const JobToken&) = delete;
    JobToken& operator=(const JobToken&) = delete;
    ~JobToken() { release(); }

    void release() noexcept {
      if (ctx_) {
        ctx_->active_jobs_.fetch_sub(1, std::memory_order_relaxed);
        ctx_ = nullptr;
      }
    }

   private:
    ExecutionContext* ctx_ = nullptr;
  };

  /// Registers a unit of work (one training run, one service job) against
  /// this context. The counters are bookkeeping for multi-tenant owners —
  /// the service layer reports them over its protocol — and impose no
  /// limits themselves; admission control lives with the owner
  /// (service::MemoryGovernor).
  [[nodiscard]] JobToken begin_job() {
    active_jobs_.fetch_add(1, std::memory_order_relaxed);
    total_jobs_.fetch_add(1, std::memory_order_relaxed);
    return JobToken(this);
  }

  /// Jobs currently holding a live JobToken.
  [[nodiscard]] std::size_t active_jobs() const noexcept {
    return active_jobs_.load(std::memory_order_relaxed);
  }
  /// Jobs ever begun on this context (monotonic).
  [[nodiscard]] std::uint64_t total_jobs() const noexcept {
    return total_jobs_.load(std::memory_order_relaxed);
  }

 private:
  util::ThreadPool pool_;
  std::size_t eval_threads_;
  NumaPolicy numa_policy_;
  std::optional<distributed::ClusterSpec> cluster_;
  std::atomic<std::size_t> active_jobs_{0};
  std::atomic<std::uint64_t> total_jobs_{0};
};

using ExecutionContextPtr = std::shared_ptr<ExecutionContext>;

}  // namespace isasgd::core
