#include "core/trainer.hpp"

#include <any>
#include <stdexcept>
#include <utility>

namespace isasgd::core {

Trainer::Trainer(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 objectives::Regularization reg, std::size_t eval_threads,
                 ExecutionContextPtr execution)
    : owned_source_(std::make_shared<const data::InMemorySource>(data)),
      source_(owned_source_.get()),
      objective_(objective),
      reg_(reg),
      execution_(execution ? std::move(execution)
                           : std::make_shared<ExecutionContext>(eval_threads)),
      evaluator_(*source_, objective, reg,
                 eval_threads ? eval_threads : execution_->eval_threads(),
                 &execution_->pool()) {}

Trainer::Trainer(const data::DataSource& source,
                 const objectives::Objective& objective,
                 objectives::Regularization reg, std::size_t eval_threads,
                 ExecutionContextPtr execution)
    : source_(&source),
      objective_(objective),
      reg_(reg),
      execution_(execution ? std::move(execution)
                           : std::make_shared<ExecutionContext>(eval_threads)),
      evaluator_(source, objective, reg,
                 eval_threads ? eval_threads : execution_->eval_threads(),
                 &execution_->pool()) {}

solvers::Trace Trainer::train(std::string_view solver,
                              solvers::SolverOptions options,
                              solvers::TrainingObserver* observer) const {
  const solvers::Solver& s = solvers::SolverRegistry::instance().get(solver);
  options.reg = reg_;
  return s.train(solvers::SolverContext{
      .source = *source_,
      .objective = objective_,
      .options = std::move(options),
      .eval = evaluator_.as_fn(),
      .observer = observer,
      .pool = &execution_->pool(),
  });
}

solvers::Trace Trainer::train(solvers::Algorithm algorithm,
                              solvers::SolverOptions options) const {
  return train(solvers::algorithm_name(algorithm), std::move(options));
}

namespace {

/// Adapts the legacy IsAsgdReport* out-param onto the observer pipeline.
class ReportCapture final : public solvers::TrainingObserver {
 public:
  explicit ReportCapture(solvers::IsAsgdReport* out) : out_(out) {}

  void on_diagnostics(const std::any& diagnostics) override {
    if (!out_) return;
    if (const auto* r = std::any_cast<solvers::IsAsgdReport>(&diagnostics)) {
      *out_ = *r;
    }
  }

 private:
  solvers::IsAsgdReport* out_;
};

}  // namespace

solvers::Trace Trainer::train_is_asgd(solvers::SolverOptions options,
                                      solvers::IsAsgdReport* report) const {
  ReportCapture capture(report);
  return train("IS-ASGD", std::move(options), &capture);
}

Trainer TrainerBuilder::build() const {
  if (!data_ && !source_) {
    throw std::logic_error(
        "TrainerBuilder::build: neither data(...) nor source(...) was set");
  }
  if (data_ && source_) {
    throw std::logic_error(
        "TrainerBuilder::build: data(...) and source(...) are mutually "
        "exclusive");
  }
  if (!objective_) {
    throw std::logic_error(
        "TrainerBuilder::build: objective(...) was not set");
  }
  if (source_) {
    return Trainer(*source_, *objective_, reg_, eval_threads_, execution_);
  }
  return Trainer(*data_, *objective_, reg_, eval_threads_, execution_);
}

}  // namespace isasgd::core
