#include "core/trainer.hpp"

#include <stdexcept>
#include <utility>

namespace isasgd::core {

Trainer::Trainer(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 objectives::Regularization reg, std::size_t eval_threads,
                 ExecutionContextPtr execution,
                 std::optional<distributed::ClusterSpec> cluster,
                 std::optional<NumaOptions> numa)
    : owned_source_(std::make_shared<const data::InMemorySource>(data)),
      source_(owned_source_.get()),
      objective_(objective),
      reg_(reg),
      execution_(execution ? std::move(execution)
                           : std::make_shared<ExecutionContext>(eval_threads)),
      cluster_(std::move(cluster)),
      evaluator_(*source_, objective, reg,
                 eval_threads ? eval_threads : execution_->eval_threads(),
                 &execution_->pool()) {
  if (cluster_) cluster_->validate();
  if (numa) {
    // Rebind the options to the context's already-detected topology: a
    // per-Trainer policy must not re-walk sysfs.
    numa_.emplace(*numa, execution_->numa_policy().topology());
  }
}

Trainer::Trainer(const data::DataSource& source,
                 const objectives::Objective& objective,
                 objectives::Regularization reg, std::size_t eval_threads,
                 ExecutionContextPtr execution,
                 std::optional<distributed::ClusterSpec> cluster,
                 std::optional<NumaOptions> numa)
    : source_(&source),
      objective_(objective),
      reg_(reg),
      execution_(execution ? std::move(execution)
                           : std::make_shared<ExecutionContext>(eval_threads)),
      cluster_(std::move(cluster)),
      evaluator_(source, objective, reg,
                 eval_threads ? eval_threads : execution_->eval_threads(),
                 &execution_->pool()) {
  if (cluster_) cluster_->validate();
  if (numa) {
    numa_.emplace(*numa, execution_->numa_policy().topology());
  }
}

solvers::Trace Trainer::train(std::string_view solver,
                              solvers::SolverOptions options,
                              solvers::TrainingObserver* observer) const {
  return train(solver, std::move(options), observer, {});
}

solvers::Trace Trainer::train(std::string_view solver,
                              solvers::SolverOptions options,
                              solvers::TrainingObserver* observer,
                              const solvers::SnapshotHooks& snapshot) const {
  const solvers::Solver& s = solvers::SolverRegistry::instance().get(solver);
  options.reg = reg_;
  return s.train(solvers::SolverContext{
      .source = *source_,
      .objective = objective_,
      .options = std::move(options),
      .eval = evaluator_.as_fn(),
      .observer = observer,
      .pool = &execution_->pool(),
      .cluster = cluster_ ? &*cluster_ : execution_->cluster(),
      .numa = numa_ ? &*numa_ : &execution_->numa_policy(),
      .snapshot = snapshot,
  });
}

Trainer TrainerBuilder::build() const {
  if (!data_ && !source_) {
    throw std::logic_error(
        "TrainerBuilder::build: neither data(...) nor source(...) was set");
  }
  if (data_ && source_) {
    throw std::logic_error(
        "TrainerBuilder::build: data(...) and source(...) are mutually "
        "exclusive");
  }
  if (!objective_) {
    throw std::logic_error(
        "TrainerBuilder::build: objective(...) was not set");
  }
  if (source_) {
    return Trainer(*source_, *objective_, reg_, eval_threads_, execution_,
                   cluster_, numa_);
  }
  return Trainer(*data_, *objective_, reg_, eval_threads_, execution_,
                 cluster_, numa_);
}

}  // namespace isasgd::core
