#include "core/trainer.hpp"

#include <stdexcept>
#include <thread>

#include "solvers/asgd.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sag.hpp"
#include "solvers/saga.hpp"
#include "solvers/sgd.hpp"
#include "solvers/svrg_asgd.hpp"
#include "solvers/svrg_lazy.hpp"
#include "solvers/svrg_sgd.hpp"

namespace isasgd::core {

Trainer::Trainer(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 objectives::Regularization reg, std::size_t eval_threads)
    : data_(data),
      objective_(objective),
      reg_(reg),
      evaluator_(data, objective, reg,
                 eval_threads ? eval_threads
                              : std::max(1u, std::thread::hardware_concurrency() / 2)) {}

solvers::Trace Trainer::train(solvers::Algorithm algorithm,
                              solvers::SolverOptions options) const {
  options.reg = reg_;
  const solvers::EvalFn eval = evaluator_.as_fn();
  switch (algorithm) {
    case solvers::Algorithm::kSgd:
      return solvers::run_sgd(data_, objective_, options, eval);
    case solvers::Algorithm::kIsSgd:
      return solvers::run_is_sgd(data_, objective_, options, eval);
    case solvers::Algorithm::kAsgd:
      return solvers::run_asgd(data_, objective_, options, eval);
    case solvers::Algorithm::kIsAsgd:
      return solvers::run_is_asgd(data_, objective_, options, eval);
    case solvers::Algorithm::kSvrgSgd:
      return solvers::run_svrg_sgd(data_, objective_, options, eval);
    case solvers::Algorithm::kSvrgAsgd:
      return solvers::run_svrg_asgd(data_, objective_, options, eval);
    case solvers::Algorithm::kSaga:
      return solvers::run_saga(data_, objective_, options, eval);
    case solvers::Algorithm::kSvrgLazy:
      return solvers::run_svrg_sgd_lazy(data_, objective_, options, eval);
    case solvers::Algorithm::kSag:
      return solvers::run_sag(data_, objective_, options, eval);
  }
  throw std::invalid_argument("Trainer::train: unknown algorithm");
}

solvers::Trace Trainer::train_is_asgd(solvers::SolverOptions options,
                                      solvers::IsAsgdReport* report) const {
  options.reg = reg_;
  return solvers::run_is_asgd(data_, objective_, options, evaluator_.as_fn(),
                              report);
}

}  // namespace isasgd::core
