// Registry wrappers folding the delay-injection simulator into the unified
// solver architecture:
//
//   sim.delayed_sgd     uniform sampling — ASGD's perturbed-iterate
//                       serialisation with τ as a controlled input
//   sim.delayed_is_sgd  Eq. 12 importance sampling — IS-ASGD's
//                       serialisation at the same injected τ
//
// The delay law comes from SolverOptions::delay_law / delay_tau (the
// registry-friendly mirror of simulate::DelayModel); the default kNone
// reproduces serial SGD bit-for-bit, so the conformance suite exercises the
// wrapper end to end while ablation_delay_injection sweeps τ through and
// beyond the Eq. 27 bound. The DelayReport lands on
// TrainingObserver::on_diagnostics.
#include <stdexcept>

#include "simulate/delay_model.hpp"
#include "simulate/delayed_sgd.hpp"
#include "solvers/solver.hpp"

namespace isasgd::simulate {

namespace {

/// SolverOptions::DelayLaw → simulate::DelayModel.
DelayModel delay_from_options(const solvers::SolverOptions& options) {
  using Law = solvers::SolverOptions::DelayLaw;
  switch (options.delay_law) {
    case Law::kNone:
      return DelayModel::none();
    case Law::kFixed:
      return DelayModel::fixed(options.delay_tau);
    case Law::kUniform:
      return DelayModel::uniform(options.delay_tau);
    case Law::kGeometric:
      return DelayModel::geometric(options.delay_tau);
  }
  throw std::invalid_argument("delay_from_options: unknown DelayLaw");
}

class DelayedSgdSolver : public solvers::Solver {
 public:
  explicit DelayedSgdSolver(bool use_importance)
      : use_importance_(use_importance) {}

  solvers::SolverCapabilities capabilities() const noexcept override {
    return {.importance_sampling = use_importance_, .simulated_time = true};
  }

 protected:
  solvers::Trace run_impl(const solvers::SolverContext& ctx) const override {
    return run_delayed_sgd(ctx.data(), ctx.objective, ctx.options,
                           delay_from_options(ctx.options), use_importance_,
                           ctx.eval, /*report=*/nullptr, ctx.observer);
  }

 private:
  bool use_importance_;
};

class SimDelayedSgdSolver final : public DelayedSgdSolver {
 public:
  SimDelayedSgdSolver() : DelayedSgdSolver(/*use_importance=*/false) {}
  std::string_view name() const noexcept override { return "sim.delayed_sgd"; }
};

class SimDelayedIsSgdSolver final : public DelayedSgdSolver {
 public:
  SimDelayedIsSgdSolver() : DelayedSgdSolver(/*use_importance=*/true) {}
  std::string_view name() const noexcept override {
    return "sim.delayed_is_sgd";
  }
};

ISASGD_REGISTER_SOLVER(SimDelayedSgdSolver);
ISASGD_REGISTER_SOLVER(SimDelayedIsSgdSolver);

}  // namespace

}  // namespace isasgd::simulate
