#include "simulate/delay_model.hpp"

namespace isasgd::simulate {

std::string delay_kind_name(DelayKind k) {
  switch (k) {
    case DelayKind::kNone: return "none";
    case DelayKind::kFixed: return "fixed";
    case DelayKind::kUniform: return "uniform";
    case DelayKind::kGeometric: return "geometric";
  }
  return "?";
}

double DelayModel::mean() const {
  switch (kind) {
    case DelayKind::kNone:
      return 0.0;
    case DelayKind::kFixed:
      return static_cast<double>(tau);
    case DelayKind::kUniform:
      return static_cast<double>(tau) / 2.0;
    case DelayKind::kGeometric:
      return static_cast<double>(tau);
  }
  return 0.0;
}

std::string DelayModel::name() const {
  return delay_kind_name(kind) + "(" + std::to_string(tau) + ")";
}

}  // namespace isasgd::simulate
