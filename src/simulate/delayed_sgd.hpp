// Delay-injection SGD: the perturbed-iterate model (§3.1) made executable.
//
// Hogwild's asynchrony error is the lag between when a gradient is computed
// and when its update lands in the shared model (the paper's delay parameter
// τ). A real lock-free run only produces whatever τ the hardware happens to
// generate — this repo's 24-thread container stays far inside the Eq. 27
// bound, so the paper's Fig-3c ASGD degradation never shows (EXPERIMENTS.md,
// Fig. 3 notes). This simulator runs the *serialised* equivalent: a single
// thread computes each stochastic gradient against the current model, then
// holds it in a pending queue for DelayModel::draw() steps before applying —
// exactly w_{t+1} = w_t − λ∇f_{i_s}(w_s) with t − s = the injected delay
// (Eq. 21's ŵ). τ becomes a controlled experimental axis that can be swept
// through and beyond the Eq. 27 bound on any machine, independent of core
// count, and with IS weighting on or off (IS-ASGD vs ASGD at equal τ).
#pragma once

#include <cstddef>

#include "objectives/objective.hpp"
#include "simulate/delay_model.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::simulate {

/// Diagnostics of one delayed run.
struct DelayReport {
  /// Mean staleness (steps between compute and apply) over applied updates.
  double mean_applied_delay = 0;
  /// Largest pending-queue depth observed (≈ updates in flight).
  std::size_t max_in_flight = 0;
  /// Updates still pending at each epoch fence are flushed (the fenced
  /// evaluation semantics of the real async solvers); this counts them.
  std::size_t flushed_at_fences = 0;
};

/// Runs `epochs × n` delayed-SGD steps. The Trace's time axis is the
/// simulated step clock (seconds = global steps), so traces are
/// bit-reproducible for a fixed seed like the cluster engines'. With `use_importance` false this is
/// ASGD's perturbed-iterate serialisation (uniform sampling, unit weights);
/// with it true, IS-ASGD's (Eq. 12 distribution + 1/(n·p_i) reweighting,
/// sequences pre-generated per Algorithm 2). DelayModel::none() reproduces
/// `run_sgd` / IS-SGD semantics exactly (bitwise for the uniform path at
/// batch_size 1, which the tests pin). `observer` (optional) receives
/// per-epoch points, may stop the run at an epoch fence, and gets the
/// DelayReport via on_diagnostics. Registered in the SolverRegistry as
/// "sim.delayed_sgd" (uniform) and "sim.delayed_is_sgd" (importance), with
/// the delay law taken from SolverOptions::delay_law / delay_tau.
[[nodiscard]] solvers::Trace run_delayed_sgd(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const DelayModel& delay,
    bool use_importance, const solvers::EvalFn& eval,
    DelayReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

}  // namespace isasgd::simulate
