#include "simulate/delayed_sgd.hpp"

#include <memory>
#include <numeric>
#include <vector>

#include "sampling/sequence.hpp"
#include "sim/event_loop.hpp"
#include "solvers/schedule.hpp"
#include "solvers/importance_weights.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::simulate {

namespace {

/// A computed-but-not-yet-applied stochastic gradient. The sparse vector
/// itself is not copied — (row, gradient scale, step) reconstructs the
/// index-compressed update exactly, mirroring how the real solvers keep
/// gradients implicit. Queued in a sim::EventQueue keyed by the global step
/// at which the update lands (FIFO among equal due steps).
struct PendingUpdate {
  std::uint32_t row = 0;
  double gradient_scale = 0;
  double scaled_step = 0;       // λ·(IS weight), frozen at compute time
  std::size_t computed_at = 0;
};

}  // namespace

solvers::Trace run_delayed_sgd(const sparse::CsrMatrix& data,
                               const objectives::Objective& objective,
                               const solvers::SolverOptions& options,
                               const DelayModel& delay, bool use_importance,
                               const solvers::EvalFn& eval,
                               DelayReport* report,
                               solvers::TrainingObserver* observer) {
  const std::size_t n = data.rows();
  std::vector<double> w(data.dim(), 0.0);
  solvers::TraceRecorder recorder(use_importance ? "sim_is_asgd" : "sim_asgd",
                                  1, options.step_size, eval, observer);
  recorder.mark_simulated_time();

  // ---- Offline phase (IS only): Eq. 12 distribution + block stream ----
  util::Stopwatch setup;
  std::vector<double> weight;       // 1/(n·p_i), unit for the uniform path
  std::unique_ptr<sampling::BlockSequence> sequence;
  if (use_importance) {
    const std::vector<double> importance =
        solvers::detail::importance_weights(data, objective, options);
    const double total =
        std::accumulate(importance.begin(), importance.end(), 0.0);
    weight.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = total > 0 ? importance[i] / total : 1.0 / double(n);
      weight[i] = p > 0 ? 1.0 / (static_cast<double>(n) * p) : 1.0;
    }
    // One persistent alias table; per-epoch draws stream from it with the
    // retired pre-materialized layout's epoch seeds.
    sequence = std::make_unique<sampling::BlockSequence>(
        sampling::BlockSequence::Mode::kIid, importance, n, options.seed);
  }
  recorder.add_setup_seconds(setup.seconds());

  util::Rng sample_rng(options.seed);
  util::Rng delay_rng(util::derive_seed(options.seed, 0xde1a));
  // Event time = the global step at which the update lands.
  sim::EventQueue<std::size_t, PendingUpdate> pending;
  std::size_t global_step = 0;
  double delay_sum = 0;
  std::size_t applied_count = 0, max_in_flight = 0, flushed = 0;

  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  auto apply = [&](const PendingUpdate& u) {
    sparse::sparse_dot_residual_axpy(w, data.row(u.row), u.scaled_step,
                                     u.gradient_scale, eta_l1, eta_l2);
    delay_sum += static_cast<double>(global_step - u.computed_at);
    ++applied_count;
  };

  // The time axis is the simulated *step* clock (one compute per step), so
  // traces — including their seconds — are bit-reproducible for a fixed
  // seed, exactly like the cluster engines'. The host cost of running the
  // simulation is deliberately not recorded: it says nothing about the
  // algorithm under study.
  recorder.record(0, 0.0, w);
  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    if (use_importance) {
      sequence->begin_epoch(epoch, util::derive_seed(options.seed, epoch - 1));
    }
    for (std::size_t t = 0; t < n; ++t, ++global_step) {
      // Compute against the *current* model (this is ŵ of Eq. 21 for
      // every update still in the queue), then hold for `draw()` steps.
      const std::size_t i =
          use_importance
              ? sequence->next()
              : static_cast<std::size_t>(util::uniform_index(sample_rng, n));
      const double margin = sparse::sparse_dot(w, data.row(i));
      pending.push(global_step + delay.draw(delay_rng),
                   PendingUpdate{
                       .row = static_cast<std::uint32_t>(i),
                       .gradient_scale =
                           objective.gradient_scale(margin, data.label(i)),
                       .scaled_step =
                           lambda * (use_importance ? weight[i] : 1.0),
                       .computed_at = global_step,
                   });
      max_in_flight = std::max(max_in_flight, pending.size());
      while (!pending.empty() && pending.top().time <= global_step) {
        apply(pending.pop().payload);
      }
    }
    // Epoch fence: the real async solvers quiesce all workers before the
    // model is scored, so every in-flight update has landed. Mirror that.
    while (!pending.empty()) {
      apply(pending.pop().payload);
      ++flushed;
    }
    recorder.record(epoch, static_cast<double>(global_step), w);
  }
  const double train_seconds = static_cast<double>(global_step);

  if (report || observer) {
    DelayReport local;
    local.mean_applied_delay =
        applied_count > 0 ? delay_sum / static_cast<double>(applied_count) : 0;
    local.max_in_flight = max_in_flight;
    local.flushed_at_fences = flushed;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

}  // namespace isasgd::simulate
