// Staleness distributions for the delay-injection simulator.
//
// The paper's theory (§3) treats ASGD as SGD with perturbed inputs: the
// gradient applied at step t was computed against a model τ_t steps old,
// with the delay parameter τ "assumed linearly related to the concurrency".
// On real hardware τ is whatever the machine produces — this repo's Hogwild
// runs on calibrated analogs never push τ·Δ̄/n high enough to reproduce the
// paper's Fig-3c ASGD degradation (see EXPERIMENTS.md). A DelayModel makes
// τ an *input*: the simulator applies each gradient exactly `draw()` steps
// after it was computed, so the Eq. 25/27 noise terms can be driven through
// and past the theory's bound on a laptop.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace isasgd::simulate {

/// How many steps a computed gradient waits before being applied.
enum class DelayKind {
  kNone,       ///< 0 — degenerates to serial SGD exactly
  kFixed,      ///< constant τ — the perturbed-iterate worst case
  kUniform,    ///< uniform on [0, τ] — spread-out staleness, mean τ/2
  kGeometric,  ///< geometric with mean τ — heavy-tailed (straggler) staleness
};

[[nodiscard]] std::string delay_kind_name(DelayKind k);

/// A staleness distribution with parameter τ.
struct DelayModel {
  DelayKind kind = DelayKind::kNone;
  std::size_t tau = 0;

  static DelayModel none() { return {DelayKind::kNone, 0}; }
  static DelayModel fixed(std::size_t tau) { return {DelayKind::kFixed, tau}; }
  static DelayModel uniform(std::size_t tau) {
    return {DelayKind::kUniform, tau};
  }
  static DelayModel geometric(std::size_t mean) {
    return {DelayKind::kGeometric, mean};
  }

  /// Expected delay in steps.
  [[nodiscard]] double mean() const;

  /// Draws one delay.
  template <class Gen>
  [[nodiscard]] std::size_t draw(Gen& gen) const {
    switch (kind) {
      case DelayKind::kNone:
        return 0;
      case DelayKind::kFixed:
        return tau;
      case DelayKind::kUniform:
        return static_cast<std::size_t>(util::uniform_index(gen, tau + 1));
      case DelayKind::kGeometric: {
        if (tau == 0) return 0;
        // Geometric on {0, 1, 2, …} with success probability 1/(1+τ) has
        // mean τ; inverse-CDF sampling keeps it one RNG call.
        const double u = util::uniform_double(gen);
        const double p = 1.0 / (1.0 + static_cast<double>(tau));
        const double k = std::log1p(-u) / std::log1p(-p);
        return static_cast<std::size_t>(k);
      }
    }
    return 0;
  }

  [[nodiscard]] std::string name() const;
};

}  // namespace isasgd::simulate
