#include "sparse/csr_matrix.hpp"

#include <sstream>
#include <stdexcept>

namespace isasgd::sparse {

CsrMatrix::CsrMatrix(std::size_t dim, std::vector<std::size_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<value_t> values,
                     std::vector<value_t> labels)
    : dim_(dim),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)),
      labels_(std::move(labels)) {
  if (row_ptr_.empty() || row_ptr_.front() != 0) {
    throw std::invalid_argument("CsrMatrix: row_ptr must start with 0");
  }
  if (row_ptr_.size() != labels_.size() + 1) {
    throw std::invalid_argument("CsrMatrix: row_ptr size != labels size + 1");
  }
  if (row_ptr_.back() != col_idx_.size()) {
    throw std::invalid_argument("CsrMatrix: row_ptr back != nnz");
  }
  if (col_idx_.size() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: col/value size mismatch");
  }
  for (std::size_t i = 0; i + 1 < row_ptr_.size(); ++i) {
    if (row_ptr_[i + 1] < row_ptr_[i]) {
      throw std::invalid_argument("CsrMatrix: row_ptr must be non-decreasing");
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[k] >= dim_) {
        throw std::invalid_argument("CsrMatrix: column index out of range");
      }
      if (k > row_ptr_[i] && col_idx_[k] <= col_idx_[k - 1]) {
        throw std::invalid_argument(
            "CsrMatrix: column indices must be strictly increasing per row");
      }
    }
  }
}

CsrMatrix CsrMatrix::from_trusted_parts(std::size_t dim,
                                        std::vector<std::size_t> row_ptr,
                                        std::vector<index_t> col_idx,
                                        std::vector<value_t> values,
                                        std::vector<value_t> labels) {
  if (row_ptr.empty() || row_ptr.front() != 0 ||
      row_ptr.size() != labels.size() + 1 ||
      row_ptr.back() != col_idx.size() || col_idx.size() != values.size()) {
    throw std::invalid_argument(
        "CsrMatrix::from_trusted_parts: inconsistent array sizes");
  }
  CsrMatrix m;
  m.dim_ = dim;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  m.labels_ = std::move(labels);
  return m;
}

void CsrMatrix::release(std::vector<std::size_t>& row_ptr,
                        std::vector<index_t>& col_idx,
                        std::vector<value_t>& values,
                        std::vector<value_t>& labels) {
  row_ptr = std::move(row_ptr_);
  col_idx = std::move(col_idx_);
  values = std::move(values_);
  labels = std::move(labels_);
  dim_ = 0;
  row_ptr_ = {0};
  col_idx_.clear();
  values_.clear();
  labels_.clear();
}

double CsrMatrix::density() const noexcept {
  const double cells = static_cast<double>(rows()) * static_cast<double>(dim_);
  return cells > 0 ? static_cast<double>(nnz()) / cells : 0.0;
}

double CsrMatrix::mean_row_nnz() const noexcept {
  return rows() ? static_cast<double>(nnz()) / static_cast<double>(rows()) : 0.0;
}

CsrMatrix CsrMatrix::select_rows(const std::vector<std::size_t>& order) const {
  std::vector<std::size_t> new_ptr;
  new_ptr.reserve(order.size() + 1);
  new_ptr.push_back(0);
  std::vector<index_t> new_col;
  std::vector<value_t> new_val;
  std::vector<value_t> new_lab;
  new_lab.reserve(order.size());
  for (std::size_t i : order) {
    if (i >= rows()) {
      throw std::out_of_range("select_rows: row index out of range");
    }
    const std::size_t begin = row_ptr_[i], end = row_ptr_[i + 1];
    new_col.insert(new_col.end(), col_idx_.begin() + static_cast<std::ptrdiff_t>(begin),
                   col_idx_.begin() + static_cast<std::ptrdiff_t>(end));
    new_val.insert(new_val.end(), values_.begin() + static_cast<std::ptrdiff_t>(begin),
                   values_.begin() + static_cast<std::ptrdiff_t>(end));
    new_ptr.push_back(new_col.size());
    new_lab.push_back(labels_[i]);
  }
  return CsrMatrix(dim_, std::move(new_ptr), std::move(new_col),
                   std::move(new_val), std::move(new_lab));
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << "n=" << rows() << " d=" << dim_ << " nnz=" << nnz()
     << " density=" << density();
  return os.str();
}

}  // namespace isasgd::sparse
