// Immutable CSR (compressed sparse row) dataset container.
//
// A training dataset is a CSR matrix of n rows (samples) over d columns
// (features) plus a label vector. Rows are handed to the solvers as
// SparseVectorView, so the inner loops never materialise dense vectors.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sparse/sparse_vector.hpp"

namespace isasgd::sparse {

/// Immutable CSR matrix with per-row labels. Build with CsrBuilder or the
/// explicit-array constructor (which validates all invariants).
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes the classic CSR triplet plus labels.
  ///   row_ptr: size n+1, non-decreasing, row_ptr[0]==0, row_ptr[n]==nnz
  ///   col_idx: strictly increasing within each row, all < dim
  ///   labels : size n (±1 for classification, arbitrary for regression)
  /// Throws std::invalid_argument on any violation.
  CsrMatrix(std::size_t dim, std::vector<std::size_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values,
            std::vector<value_t> labels);

  /// Adopts the arrays without the O(nnz) invariant walk of the validating
  /// constructor. Only for producers whose output is an invariant by
  /// construction AND integrity-checked another way — io::ShardPackReader
  /// decodes behind a per-shard CRC and a delta encoding that cannot
  /// express a non-increasing row. Size consistency (the O(1) checks) is
  /// still enforced.
  [[nodiscard]] static CsrMatrix from_trusted_parts(
      std::size_t dim, std::vector<std::size_t> row_ptr,
      std::vector<index_t> col_idx, std::vector<value_t> values,
      std::vector<value_t> labels);

  /// Moves the four arrays out, leaving the matrix empty. The recycling
  /// half of buffer pooling: a cache evicting a decoded shard reclaims its
  /// allocations for the next decode instead of freeing them.
  void release(std::vector<std::size_t>& row_ptr, std::vector<index_t>& col_idx,
               std::vector<value_t>& values, std::vector<value_t>& labels);

  [[nodiscard]] std::size_t rows() const noexcept {
    return labels_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return col_idx_.size(); }

  /// View of row i's features.
  [[nodiscard]] SparseVectorView row(std::size_t i) const noexcept {
    const std::size_t begin = row_ptr_[i], end = row_ptr_[i + 1];
    return {{col_idx_.data() + begin, end - begin},
            {values_.data() + begin, end - begin}};
  }

  /// Label of row i.
  [[nodiscard]] value_t label(std::size_t i) const noexcept {
    return labels_[i];
  }

  [[nodiscard]] const std::vector<value_t>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] const std::vector<std::size_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<index_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<value_t>& values() const noexcept {
    return values_;
  }

  /// Fraction of nonzero entries: nnz / (rows · dim). This is the "∇fi
  /// sparsity" column of the paper's Table 1 (gradient sparsity equals data
  /// sparsity for linear models).
  [[nodiscard]] double density() const noexcept;

  /// Average nnz per row.
  [[nodiscard]] double mean_row_nnz() const noexcept;

  /// Returns a new matrix containing the given rows (in the given order).
  /// Used by the partitioners to materialise per-thread shards in tests.
  [[nodiscard]] CsrMatrix select_rows(const std::vector<std::size_t>& order) const;

  /// Returns a human-readable one-line summary, e.g.
  /// "n=19996 d=1355191 nnz=9.1e6 density=3.4e-4".
  [[nodiscard]] std::string summary() const;

 private:
  std::size_t dim_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
  std::vector<value_t> labels_;
};

}  // namespace isasgd::sparse
