// Incremental CSR construction: append rows, then freeze into an immutable
// CsrMatrix. The synthetic generators and the LibSVM parser both build
// datasets through this interface.
#pragma once

#include <vector>

#include "sparse/csr_matrix.hpp"
#include "sparse/sparse_vector.hpp"

namespace isasgd::sparse {

/// Append-only builder for CsrMatrix.
class CsrBuilder {
 public:
  /// `dim_hint` pre-sets the dimensionality; the final dim is
  /// max(dim_hint, 1 + max column index seen).
  explicit CsrBuilder(std::size_t dim_hint = 0) : dim_(dim_hint) {}

  /// Reserves space for `rows` rows of ~`nnz_per_row` entries each.
  void reserve(std::size_t rows, std::size_t nnz_per_row);

  /// Appends a row given strictly-increasing indices. Throws on violation.
  void add_row(std::span<const index_t> indices, std::span<const value_t> values,
               value_t label);

  /// Appends a row from a SparseVector (indices already validated).
  void add_row(const SparseVector& row, value_t label) {
    add_row(row.indices(), row.values(), label);
  }

  /// Appends a row from unsorted pairs (sorted + deduplicated internally).
  void add_row_unsorted(std::vector<index_t> indices,
                        std::vector<value_t> values, value_t label);

  [[nodiscard]] std::size_t rows() const noexcept { return labels_.size(); }
  [[nodiscard]] std::size_t nnz() const noexcept { return col_idx_.size(); }

  /// Freezes into an immutable matrix. The builder is left empty and can be
  /// reused.
  [[nodiscard]] CsrMatrix build();

 private:
  std::size_t dim_;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
  std::vector<value_t> labels_;
};

}  // namespace isasgd::sparse
