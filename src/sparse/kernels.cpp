#include "sparse/kernels.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace isasgd::sparse {

namespace {

// Regularizer-subgradient functors, one per Regularization kind. The fused
// kernels dispatch ONCE per call to a loop specialised on the kind, so the
// none/L2 hot paths stay branch-free and vectorizable while each expression
// reproduces Regularization::subgradient bit for bit (including kNone's
// literal `+ 0.0`, which is part of the reference arithmetic — x + 0.0
// flips -0.0 to +0.0 and must not be folded away).
struct SubNone {
  value_t operator()(value_t) const noexcept { return 0.0; }
};
struct SubL2 {
  value_t eta;
  value_t operator()(value_t v) const noexcept { return eta * v; }
};
struct SubL1 {
  value_t eta;
  value_t operator()(value_t v) const noexcept {
    return v > 0 ? eta : (v < 0 ? -eta : 0.0);
  }
};

template <class SubFn>
inline void residual_axpy_impl(value_t* ISASGD_RESTRICT pw,
                               const index_t* ISASGD_RESTRICT idx,
                               const value_t* ISASGD_RESTRICT val,
                               std::size_t nnz, value_t step, value_t g,
                               SubFn sub) noexcept {
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::size_t c = idx[k];
    const value_t wc = pw[c];
    pw[c] = wc - step * (g * val[k] + sub(wc));
  }
}

template <class SubFn>
inline void fused_vr_step_impl(value_t* ISASGD_RESTRICT pw,
                               const value_t* ISASGD_RESTRICT pmu,
                               std::size_t d,
                               const index_t* ISASGD_RESTRICT idx,
                               const value_t* ISASGD_RESTRICT val,
                               std::size_t nnz, value_t step,
                               value_t corr_step, SubFn sub) noexcept {
  // Segment the dense pass by the (strictly increasing) support: the runs
  // between support coordinates are branch-free and vectorize; only the nnz
  // support coordinates take the combined sparse+dense update.
  auto dense_run = [&](std::size_t begin, std::size_t end) {
    for (std::size_t j = begin; j < end; ++j) {
      const value_t wj = pw[j];
      pw[j] = wj - step * (pmu[j] + sub(wj));
    }
  };
  std::size_t prev = 0;
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::size_t j = idx[k];
    dense_run(prev, j);
    value_t wj = pw[j] - corr_step * val[k];
    pw[j] = wj - step * (pmu[j] + sub(wj));
    prev = j + 1;
  }
  dense_run(prev, d);
}

}  // namespace

value_t sparse_dot(std::span<const value_t> w, SparseVectorView x) noexcept {
  const index_t* ISASGD_RESTRICT idx = x.indices().data();
  const value_t* ISASGD_RESTRICT val = x.values().data();
  const std::size_t nnz = x.nnz();
  value_t acc = 0;
  for (std::size_t k = 0; k < nnz; ++k) {
    acc += w[idx[k]] * val[k];
  }
  return acc;
}

void sparse_dot_pair(std::span<const value_t> w, std::span<const value_t> s,
                     SparseVectorView x, value_t& dot_w,
                     value_t& dot_s) noexcept {
  const index_t* ISASGD_RESTRICT idx = x.indices().data();
  const value_t* ISASGD_RESTRICT val = x.values().data();
  const std::size_t nnz = x.nnz();
  value_t acc_w = 0, acc_s = 0;
  for (std::size_t k = 0; k < nnz; ++k) {
    const std::size_t j = idx[k];
    const value_t v = val[k];
    acc_w += w[j] * v;
    acc_s += s[j] * v;
  }
  dot_w = acc_w;
  dot_s = acc_s;
}

void sparse_axpy(std::span<value_t> w, value_t alpha,
                 SparseVectorView x) noexcept {
  const index_t* ISASGD_RESTRICT idx = x.indices().data();
  const value_t* ISASGD_RESTRICT val = x.values().data();
  const std::size_t nnz = x.nnz();
  for (std::size_t k = 0; k < nnz; ++k) {
    w[idx[k]] += alpha * val[k];
  }
}

void sparse_dot_residual_axpy(std::span<value_t> w, SparseVectorView x,
                              value_t step, value_t g, value_t eta_l1,
                              value_t eta_l2) noexcept {
  value_t* pw = w.data();
  const index_t* idx = x.indices().data();
  const value_t* val = x.values().data();
  const std::size_t nnz = x.nnz();
  if (eta_l1 != 0.0) {
    residual_axpy_impl(pw, idx, val, nnz, step, g, SubL1{eta_l1});
  } else if (eta_l2 != 0.0) {
    residual_axpy_impl(pw, idx, val, nnz, step, g, SubL2{eta_l2});
  } else {
    residual_axpy_impl(pw, idx, val, nnz, step, g, SubNone{});
  }
}

void scale_then_sparse_axpy(std::span<value_t> w, std::span<const value_t> mu,
                            value_t step, value_t eta_l1, value_t eta_l2,
                            value_t corr_step, SparseVectorView x) noexcept {
  assert(w.size() == mu.size());
  value_t* pw = w.data();
  const value_t* pmu = mu.data();
  const index_t* idx = x.indices().data();
  const value_t* val = x.values().data();
  const std::size_t d = w.size();
  const std::size_t nnz = x.nnz();
  if (eta_l1 != 0.0) {
    fused_vr_step_impl(pw, pmu, d, idx, val, nnz, step, corr_step,
                       SubL1{eta_l1});
  } else if (eta_l2 != 0.0) {
    fused_vr_step_impl(pw, pmu, d, idx, val, nnz, step, corr_step,
                       SubL2{eta_l2});
  } else {
    fused_vr_step_impl(pw, pmu, d, idx, val, nnz, step, corr_step,
                       SubNone{});
  }
}

value_t dense_dot(std::span<const value_t> a,
                  std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  // Four independent accumulators break the loop-carried FP add dependence
  // (the scalar chain is latency-bound, not bandwidth-bound) and give the
  // vectorizer clean 4-lane reductions without -ffast-math.
  const value_t* pa = a.data();
  const value_t* pb = b.data();
  const std::size_t n = a.size();
  value_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    acc0 += pa[j] * pb[j];
    acc1 += pa[j + 1] * pb[j + 1];
    acc2 += pa[j + 2] * pb[j + 2];
    acc3 += pa[j + 3] * pb[j + 3];
  }
  for (; j < n; ++j) acc0 += pa[j] * pb[j];
  return (acc0 + acc1) + (acc2 + acc3);
}

void dense_axpy(std::span<value_t> a, value_t alpha,
                std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  value_t* ISASGD_RESTRICT pa = a.data();
  const value_t* ISASGD_RESTRICT pb = b.data();
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) pa[j] += alpha * pb[j];
}

void dense_scale(std::span<value_t> a, value_t alpha) noexcept {
  value_t* ISASGD_RESTRICT pa = a.data();
  const std::size_t n = a.size();
  for (std::size_t j = 0; j < n; ++j) pa[j] *= alpha;
}

value_t dense_norm(std::span<const value_t> a) noexcept {
  return std::sqrt(dense_dot(a, a));
}

value_t dense_squared_distance(std::span<const value_t> a,
                               std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  const value_t* pa = a.data();
  const value_t* pb = b.data();
  const std::size_t n = a.size();
  value_t acc0 = 0, acc1 = 0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const value_t d0 = pa[j] - pb[j];
    const value_t d1 = pa[j + 1] - pb[j + 1];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
  }
  if (j < n) {
    const value_t d0 = pa[j] - pb[j];
    acc0 += d0 * d0;
  }
  return acc0 + acc1;
}

value_t dense_l1_norm(std::span<const value_t> a) noexcept {
  const value_t* pa = a.data();
  const std::size_t n = a.size();
  value_t acc0 = 0, acc1 = 0;
  std::size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    acc0 += std::abs(pa[j]);
    acc1 += std::abs(pa[j + 1]);
  }
  if (j < n) acc0 += std::abs(pa[j]);
  return acc0 + acc1;
}

}  // namespace isasgd::sparse
