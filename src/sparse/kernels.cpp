// Public kernel entry points: thin forwarders through the runtime-dispatched
// backend table. The implementations live in kernels_body.inc, compiled once
// per ISA backend (see dispatch.hpp); kernels::active() resolves the widest
// available backend on first use. Hot loops that issue many kernel calls in
// a row (solvers, benches) should hoist `const auto& k = kernels::active()`
// and call through the table directly to skip the per-call atomic load.
#include "sparse/kernels.hpp"

#include "sparse/dispatch.hpp"

namespace isasgd::sparse {

value_t sparse_dot(std::span<const value_t> w, SparseVectorView x) noexcept {
  return kernels::active().sparse_dot(w, x);
}

void sparse_dot_pair(std::span<const value_t> w, std::span<const value_t> s,
                     SparseVectorView x, value_t& dot_w,
                     value_t& dot_s) noexcept {
  kernels::active().sparse_dot_pair(w, s, x, dot_w, dot_s);
}

void sparse_axpy(std::span<value_t> w, value_t alpha,
                 SparseVectorView x) noexcept {
  kernels::active().sparse_axpy(w, alpha, x);
}

void sparse_dot_residual_axpy(std::span<value_t> w, SparseVectorView x,
                              value_t step, value_t g, value_t eta_l1,
                              value_t eta_l2) noexcept {
  kernels::active().sparse_dot_residual_axpy(w, x, step, g, eta_l1, eta_l2);
}

void scale_then_sparse_axpy(std::span<value_t> w, std::span<const value_t> mu,
                            value_t step, value_t eta_l1, value_t eta_l2,
                            value_t corr_step, SparseVectorView x) noexcept {
  kernels::active().scale_then_sparse_axpy(w, mu, step, eta_l1, eta_l2,
                                           corr_step, x);
}

value_t dense_dot(std::span<const value_t> a,
                  std::span<const value_t> b) noexcept {
  return kernels::active().dense_dot(a, b);
}

void dense_axpy(std::span<value_t> a, value_t alpha,
                std::span<const value_t> b) noexcept {
  kernels::active().dense_axpy(a, alpha, b);
}

void dense_scale(std::span<value_t> a, value_t alpha) noexcept {
  kernels::active().dense_scale(a, alpha);
}

value_t dense_norm(std::span<const value_t> a) noexcept {
  return kernels::active().dense_norm(a);
}

value_t dense_squared_distance(std::span<const value_t> a,
                               std::span<const value_t> b) noexcept {
  return kernels::active().dense_squared_distance(a, b);
}

value_t dense_l1_norm(std::span<const value_t> a) noexcept {
  return kernels::active().dense_l1_norm(a);
}

}  // namespace isasgd::sparse
