#include "sparse/kernels.hpp"

#include <cassert>
#include <cmath>

namespace isasgd::sparse {

value_t sparse_dot(std::span<const value_t> w, SparseVectorView x) noexcept {
  value_t acc = 0;
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    acc += w[idx[k]] * val[k];
  }
  return acc;
}

void sparse_axpy(std::span<value_t> w, value_t alpha,
                 SparseVectorView x) noexcept {
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    w[idx[k]] += alpha * val[k];
  }
}

value_t dense_dot(std::span<const value_t> a,
                  std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  value_t acc = 0;
  for (std::size_t j = 0; j < a.size(); ++j) acc += a[j] * b[j];
  return acc;
}

void dense_axpy(std::span<value_t> a, value_t alpha,
                std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  for (std::size_t j = 0; j < a.size(); ++j) a[j] += alpha * b[j];
}

void dense_scale(std::span<value_t> a, value_t alpha) noexcept {
  for (auto& v : a) v *= alpha;
}

value_t dense_norm(std::span<const value_t> a) noexcept {
  return std::sqrt(dense_dot(a, a));
}

value_t dense_squared_distance(std::span<const value_t> a,
                               std::span<const value_t> b) noexcept {
  assert(a.size() == b.size());
  value_t acc = 0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const value_t diff = a[j] - b[j];
    acc += diff * diff;
  }
  return acc;
}

value_t dense_l1_norm(std::span<const value_t> a) noexcept {
  value_t acc = 0;
  for (value_t v : a) acc += std::abs(v);
  return acc;
}

}  // namespace isasgd::sparse
