// AVX-512 kernel backend: the same kernel bodies as the scalar TU, compiled
// with -mavx512f -mavx512dq -mavx512vl -mavx512bw (and -ffp-contract=off,
// so no FMA contraction may change the rounding) — 512-bit registers,
// bit-identical arithmetic. CMake defines ISASGD_TU_AVX512 for this file
// only when the target is x86-64 and the compiler accepts the flags;
// otherwise the backend reports "not compiled" and dispatch never offers
// it.
#include "sparse/dispatch.hpp"

#if defined(ISASGD_TU_AVX512)

#include <cassert>
#include <cmath>
#include <cstddef>

#include "sparse/kernels.hpp"

namespace isasgd::sparse {
namespace backend_avx512 {
#include "sparse/kernels_body.inc"
}  // namespace backend_avx512
}  // namespace isasgd::sparse

namespace isasgd::sparse::kernels {

const KernelTable* avx512_table() noexcept {
  static const KernelTable table = {
      Backend::kAvx512,
      &backend_avx512::sparse_dot,
      &backend_avx512::sparse_dot_pair,
      &backend_avx512::sparse_axpy,
      &backend_avx512::sparse_dot_residual_axpy,
      &backend_avx512::scale_then_sparse_axpy,
      &backend_avx512::dense_dot,
      &backend_avx512::dense_axpy,
      &backend_avx512::dense_scale,
      &backend_avx512::dense_norm,
      &backend_avx512::dense_squared_distance,
      &backend_avx512::dense_l1_norm,
  };
  return &table;
}

}  // namespace isasgd::sparse::kernels

#else  // !ISASGD_TU_AVX512

namespace isasgd::sparse::kernels {
const KernelTable* avx512_table() noexcept { return nullptr; }
}  // namespace isasgd::sparse::kernels

#endif
