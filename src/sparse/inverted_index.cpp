#include "sparse/inverted_index.hpp"

#include <algorithm>

namespace isasgd::sparse {

InvertedIndex::InvertedIndex(const CsrMatrix& data) {
  const std::size_t d = data.dim();
  feat_ptr_.assign(d + 1, 0);
  // Counting pass.
  for (index_t j : data.col_idx()) {
    ++feat_ptr_[j + 1];
  }
  for (std::size_t j = 0; j < d; ++j) {
    feat_ptr_[j + 1] += feat_ptr_[j];
  }
  // Fill pass; rows are visited in ascending order so each feature's row
  // list comes out sorted without an extra sort.
  rows_.resize(data.nnz());
  std::vector<std::size_t> cursor(feat_ptr_.begin(), feat_ptr_.end() - 1);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (index_t j : data.row(i).indices()) {
      rows_[cursor[j]++] = static_cast<std::uint32_t>(i);
    }
  }
}

std::size_t InvertedIndex::max_feature_frequency() const noexcept {
  std::size_t best = 0;
  for (std::size_t j = 0; j + 1 < feat_ptr_.size(); ++j) {
    best = std::max(best, feat_ptr_[j + 1] - feat_ptr_[j]);
  }
  return best;
}

}  // namespace isasgd::sparse
