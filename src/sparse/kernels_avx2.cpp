// AVX2 kernel backend: the same kernel bodies as the scalar TU, compiled
// with -mavx2 (and -ffp-contract=off, so no FMA contraction may change the
// rounding) — the compiler is free to use 256-bit registers, the arithmetic
// stays bit-identical to scalar. CMake defines ISASGD_TU_AVX2 for this file
// only when the target is x86-64 and the compiler accepts -mavx2; otherwise
// the backend reports "not compiled" and dispatch never offers it.
#include "sparse/dispatch.hpp"

#if defined(ISASGD_TU_AVX2)

#include <cassert>
#include <cmath>
#include <cstddef>

#include "sparse/kernels.hpp"

namespace isasgd::sparse {
namespace backend_avx2 {
#include "sparse/kernels_body.inc"
}  // namespace backend_avx2
}  // namespace isasgd::sparse

namespace isasgd::sparse::kernels {

const KernelTable* avx2_table() noexcept {
  static const KernelTable table = {
      Backend::kAvx2,
      &backend_avx2::sparse_dot,
      &backend_avx2::sparse_dot_pair,
      &backend_avx2::sparse_axpy,
      &backend_avx2::sparse_dot_residual_axpy,
      &backend_avx2::scale_then_sparse_axpy,
      &backend_avx2::dense_dot,
      &backend_avx2::dense_axpy,
      &backend_avx2::dense_scale,
      &backend_avx2::dense_norm,
      &backend_avx2::dense_squared_distance,
      &backend_avx2::dense_l1_norm,
  };
  return &table;
}

}  // namespace isasgd::sparse::kernels

#else  // !ISASGD_TU_AVX2

namespace isasgd::sparse::kernels {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace isasgd::sparse::kernels

#endif
