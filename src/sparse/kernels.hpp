// Dense/sparse BLAS-1 kernels used by the solver inner loops.
//
// Two families:
//   * sparse_* : touch only the nnz coordinates of a row — the
//     index-compressed updates ASGD and IS-ASGD live on.
//   * dense_*  : full-length-d passes — what SVRG's μ term forces and what
//     the paper identifies as the absolute-convergence bottleneck. The
//     micro bench (bench/micro_kernels) measures the gap directly.
#pragma once

#include <span>

#include "sparse/sparse_vector.hpp"

namespace isasgd::sparse {

/// Sparse dot: Σ_k w[idx_k] · val_k. O(nnz).
value_t sparse_dot(std::span<const value_t> w, SparseVectorView x) noexcept;

/// Sparse axpy: w[idx_k] += alpha · val_k for each stored entry. O(nnz).
void sparse_axpy(std::span<value_t> w, value_t alpha, SparseVectorView x) noexcept;

/// Dense dot product. O(d).
value_t dense_dot(std::span<const value_t> a, std::span<const value_t> b) noexcept;

/// Dense axpy: a += alpha · b. O(d).
void dense_axpy(std::span<value_t> a, value_t alpha,
                std::span<const value_t> b) noexcept;

/// Dense scale: a *= alpha. O(d).
void dense_scale(std::span<value_t> a, value_t alpha) noexcept;

/// Euclidean norm of a dense vector.
value_t dense_norm(std::span<const value_t> a) noexcept;

/// Squared Euclidean distance ‖a − b‖².
value_t dense_squared_distance(std::span<const value_t> a,
                               std::span<const value_t> b) noexcept;

/// L1 norm of a dense vector.
value_t dense_l1_norm(std::span<const value_t> a) noexcept;

}  // namespace isasgd::sparse
