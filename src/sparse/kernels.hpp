// Dense/sparse BLAS-1 kernels used by the solver inner loops.
//
// Three families:
//   * sparse_* : touch only the nnz coordinates of a row — the
//     index-compressed updates ASGD and IS-ASGD live on.
//   * dense_*  : full-length-d passes — what SVRG's μ term forces and what
//     the paper identifies as the absolute-convergence bottleneck.
//   * fused    : the composite steps the solvers actually execute, collapsed
//     into a single memory pass (sparse_dot_pair, sparse_dot_residual_axpy,
//     scale_then_sparse_axpy). The micro bench (bench/micro_kernels, see
//     docs/PERF.md) measures scalar vs fused/unrolled directly and emits
//     BENCH_kernels.json.
//
// Vectorization contract: the dense kernels use ISASGD_RESTRICT-qualified
// pointers internally and multi-accumulator unrolling, so inputs of a
// two-operand dense kernel MUST NOT alias unless a kernel's contract says
// otherwise. The fused kernels preserve the *per-coordinate* arithmetic
// order of the scalar loops they replace: a solver that swaps its unfused
// two-pass update for the fused kernel reproduces its pre-fusion traces bit
// for bit (each coordinate sees the identical operation sequence; only the
// traversal interleaving changes). See docs/PERF.md for the full contracts.
#pragma once

#include <span>

#include "sparse/sparse_vector.hpp"

/// Tells the optimiser two pointers cannot alias, unlocking vectorization of
/// load-modify-store loops. GCC/Clang spelling; expands to nothing elsewhere.
#if defined(__GNUC__) || defined(__clang__)
#define ISASGD_RESTRICT __restrict__
#else
#define ISASGD_RESTRICT
#endif

namespace isasgd::sparse {

/// Sparse dot: Σ_k w[idx_k] · val_k. O(nnz).
value_t sparse_dot(std::span<const value_t> w, SparseVectorView x) noexcept;

/// Fused dual margin: dot_w = w·x and dot_s = s·x in ONE pass over the
/// indices of x — the SVRG inner loop reads the live model and the snapshot
/// per iteration, and this halves its index/value traffic. Each accumulator
/// sums in the same order as two separate sparse_dot calls (bit-identical).
void sparse_dot_pair(std::span<const value_t> w, std::span<const value_t> s,
                     SparseVectorView x, value_t& dot_w,
                     value_t& dot_s) noexcept;

/// Sparse axpy: w[idx_k] += alpha · val_k for each stored entry. O(nnz).
void sparse_axpy(std::span<value_t> w, value_t alpha, SparseVectorView x) noexcept;

/// Fused SGD/IS-SGD/ASGD update step — the axpy half of the
/// dot → residual → axpy stochastic step (the margin comes from sparse_dot /
/// sparse_dot_pair; the objective's φ′ sits between the two, outside this
/// layer). For every support coordinate c, with one load and one store:
///
///   w[c] −= step · (g·x_c + eta_l1·sign(w[c]) + eta_l2·w[c])
///
/// (eta_l1, eta_l2) encode the regularizer subgradient: (η, 0) for L1,
/// (0, η) for L2, (0, 0) for none; at most one may be nonzero (L1 wins if
/// both are). The call dispatches once to a loop specialised on the kind,
/// each of whose expressions reproduces the unfused
/// `g·x_c + reg.subgradient(w[c])` loop bit for bit.
void sparse_dot_residual_axpy(std::span<value_t> w, SparseVectorView x,
                              value_t step, value_t g, value_t eta_l1,
                              value_t eta_l2) noexcept;

/// Fused SVRG variance-corrected step: the classic decomposition is a
/// sparse correction axpy followed by a dense scale/axpy pass over the full
/// model — two traversals of w per iteration. This kernel performs both in
/// ONE pass (the name keeps the textbook decomposition order):
///
///   w[c] −= corr_step · x_c                                  (c ∈ supp x)
///   w[j] −= step · (mu[j] + eta_l1·sign(w[j]) + eta_l2·w[j]) (all j)
///
/// with the sparse part applied before the dense term at each support
/// coordinate — exactly the per-coordinate order of the unfused
/// correction-then-dense sequence, so results are bit-identical. The dense
/// pass is segmented around the support so the between-support runs stay
/// branch-free and vectorizable. (eta_l1, eta_l2) as in
/// sparse_dot_residual_axpy. Indices of x must be strictly increasing
/// (every producer in this library guarantees it). w and mu must not
/// alias. An empty x degrades to the pure dense variance-reduction step
/// (SAG/SAGA's aggregate pass).
void scale_then_sparse_axpy(std::span<value_t> w, std::span<const value_t> mu,
                            value_t step, value_t eta_l1, value_t eta_l2,
                            value_t corr_step, SparseVectorView x) noexcept;

/// Dense dot product. O(d). Multi-accumulator unrolled; a == b is allowed
/// (read-only operands).
value_t dense_dot(std::span<const value_t> a, std::span<const value_t> b) noexcept;

/// Dense axpy: a += alpha · b. O(d). a and b must not alias.
void dense_axpy(std::span<value_t> a, value_t alpha,
                std::span<const value_t> b) noexcept;

/// Dense scale: a *= alpha. O(d).
void dense_scale(std::span<value_t> a, value_t alpha) noexcept;

/// Euclidean norm of a dense vector.
value_t dense_norm(std::span<const value_t> a) noexcept;

/// Squared Euclidean distance ‖a − b‖². a == b is allowed (read-only
/// operands).
value_t dense_squared_distance(std::span<const value_t> a,
                               std::span<const value_t> b) noexcept;

/// L1 norm of a dense vector.
value_t dense_l1_norm(std::span<const value_t> a) noexcept;

}  // namespace isasgd::sparse
