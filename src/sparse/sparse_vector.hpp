// Index-compressed sparse vectors.
//
// The paper's central performance argument (Fig. 1) is that stochastic
// gradients of sparse data are index-compressed — only nnz (index, value)
// pairs are touched per update — while SVRG's true-gradient μ is dense. This
// module provides both the owning container (SparseVector) and the
// non-owning view (SparseVectorView) that CSR rows hand to the solvers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace isasgd::sparse {

/// Feature index type. 32-bit indices keep a CSR row at 8 bytes/nnz; the
/// paper's largest dataset (KDD-Bridge, d≈3·10^7) fits comfortably.
using index_t = std::uint32_t;

/// Value type for features and model parameters.
using value_t = double;

/// Non-owning view of an index-compressed sparse vector. Indices are
/// guaranteed strictly increasing by every producer in this library.
class SparseVectorView {
 public:
  SparseVectorView() = default;
  SparseVectorView(std::span<const index_t> indices,
                   std::span<const value_t> values) noexcept
      : indices_(indices), values_(values) {}

  [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
  [[nodiscard]] std::span<const index_t> indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] std::span<const value_t> values() const noexcept {
    return values_;
  }
  [[nodiscard]] index_t index(std::size_t k) const noexcept {
    return indices_[k];
  }
  [[nodiscard]] value_t value(std::size_t k) const noexcept {
    return values_[k];
  }

  /// Squared Euclidean norm of the vector.
  [[nodiscard]] value_t squared_norm() const noexcept;

  /// Euclidean norm.
  [[nodiscard]] value_t norm() const noexcept;

 private:
  std::span<const index_t> indices_;
  std::span<const value_t> values_;
};

/// Owning index-compressed sparse vector. Construction enforces the
/// strictly-increasing index invariant (checked in debug, sorted on demand
/// via from_unsorted()).
class SparseVector {
 public:
  SparseVector() = default;

  /// Takes ownership; `indices` must be strictly increasing and the sizes
  /// must match. Throws std::invalid_argument otherwise.
  SparseVector(std::vector<index_t> indices, std::vector<value_t> values);

  /// Builds from possibly-unsorted (index, value) pairs; duplicate indices
  /// are summed (standard COO→compressed semantics).
  static SparseVector from_unsorted(std::vector<index_t> indices,
                                    std::vector<value_t> values);

  /// Builds a dense → sparse compression keeping entries with |v| > `tol`.
  static SparseVector from_dense(std::span<const value_t> dense,
                                 value_t tol = 0.0);

  [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }
  [[nodiscard]] bool empty() const noexcept { return indices_.empty(); }
  [[nodiscard]] SparseVectorView view() const noexcept {
    return {indices_, values_};
  }
  [[nodiscard]] const std::vector<index_t>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] const std::vector<value_t>& values() const noexcept {
    return values_;
  }

  /// Expands into a dense vector of length `dim` (zero-filled elsewhere).
  [[nodiscard]] std::vector<value_t> to_dense(std::size_t dim) const;

  [[nodiscard]] value_t squared_norm() const noexcept {
    return view().squared_norm();
  }
  [[nodiscard]] value_t norm() const noexcept { return view().norm(); }

 private:
  std::vector<index_t> indices_;
  std::vector<value_t> values_;
};

/// Sparse–sparse dot product between two strictly-increasing-index views.
/// O(nnz_a + nnz_b) two-pointer merge.
value_t dot(SparseVectorView a, SparseVectorView b) noexcept;

}  // namespace isasgd::sparse
