#include "sparse/csr_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace isasgd::sparse {

void CsrBuilder::reserve(std::size_t rows, std::size_t nnz_per_row) {
  row_ptr_.reserve(rows + 1);
  labels_.reserve(rows);
  col_idx_.reserve(rows * nnz_per_row);
  values_.reserve(rows * nnz_per_row);
}

void CsrBuilder::add_row(std::span<const index_t> indices,
                         std::span<const value_t> values, value_t label) {
  if (indices.size() != values.size()) {
    throw std::invalid_argument("CsrBuilder::add_row: size mismatch");
  }
  for (std::size_t k = 0; k < indices.size(); ++k) {
    if (k > 0 && indices[k] <= indices[k - 1]) {
      throw std::invalid_argument(
          "CsrBuilder::add_row: indices must be strictly increasing");
    }
  }
  col_idx_.insert(col_idx_.end(), indices.begin(), indices.end());
  values_.insert(values_.end(), values.begin(), values.end());
  row_ptr_.push_back(col_idx_.size());
  labels_.push_back(label);
  if (!indices.empty()) {
    dim_ = std::max(dim_, static_cast<std::size_t>(indices.back()) + 1);
  }
}

void CsrBuilder::add_row_unsorted(std::vector<index_t> indices,
                                  std::vector<value_t> values, value_t label) {
  SparseVector sv = SparseVector::from_unsorted(std::move(indices), std::move(values));
  add_row(sv, label);
}

CsrMatrix CsrBuilder::build() {
  CsrMatrix out(dim_, std::move(row_ptr_), std::move(col_idx_),
                std::move(values_), std::move(labels_));
  row_ptr_ = {0};
  col_idx_.clear();
  values_.clear();
  labels_.clear();
  dim_ = 0;
  return out;
}

}  // namespace isasgd::sparse
