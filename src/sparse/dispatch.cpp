#include "sparse/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "util/logging.hpp"

namespace isasgd::sparse::kernels {

namespace {

// The resolved selection. g_table doubles as the "resolved yet?" flag:
// null until the first active() call (or an explicit set_backend), then
// always a valid table. Relaxed loads suffice on the hot path — the table
// contents are immutable statics, and resolution is release-published.
std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};
std::mutex g_resolve_mu;

bool publish(Backend b) noexcept {
  const KernelTable* t = table_for(b);
  if (!t) return false;
  g_backend.store(b, std::memory_order_relaxed);
  g_table.store(t, std::memory_order_release);
  return true;
}

}  // namespace

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

Backend backend_from_name(const std::string& name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  throw std::invalid_argument("backend_from_name: unknown backend '" + name +
                              "' (expected scalar|avx2|avx512)");
}

bool compiled(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar: return scalar_table() != nullptr;
    case Backend::kAvx2: return avx2_table() != nullptr;
    case Backend::kAvx512: return avx512_table() != nullptr;
  }
  return false;
}

bool cpu_supports(Backend b) noexcept {
  if (b == Backend::kScalar) return true;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // GCC/Clang resolve the CPUID probes once at startup; each call here is a
  // flag test, not a cpuid instruction.
  switch (b) {
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
    default:
      return false;
  }
#else
  return false;
#endif
}

bool available(Backend b) noexcept { return compiled(b) && cpu_supports(b); }

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    if (available(b)) out.push_back(b);
  }
  return out;
}

const KernelTable* table_for(Backend b) noexcept {
  if (!available(b)) return nullptr;
  switch (b) {
    case Backend::kScalar: return scalar_table();
    case Backend::kAvx2: return avx2_table();
    case Backend::kAvx512: return avx512_table();
  }
  return nullptr;
}

Backend resolve(const char* env_value) noexcept {
  if (env_value && *env_value) {
    try {
      const Backend requested = backend_from_name(env_value);
      if (available(requested)) return requested;
      util::log_warn() << "ISASGD_KERNEL_BACKEND=" << env_value
                       << " requests a backend that is "
                       << (compiled(requested) ? "not supported by this CPU"
                                               : "not compiled into this binary")
                       << "; falling back to automatic selection";
    } catch (const std::invalid_argument&) {
      util::log_warn() << "ISASGD_KERNEL_BACKEND='" << env_value
                       << "' is not a known backend "
                       << "(scalar|avx2|avx512); falling back to automatic "
                       << "selection";
    }
  }
#if defined(ISASGD_DISPATCH_NATIVE_PIN)
  // -DISASGD_NATIVE=ON: the scalar TU carries the -march=native tune; pin
  // to it (pre-dispatch behaviour) unless the env var chose otherwise.
  return Backend::kScalar;
#else
  // Widest available wins.
  if (available(Backend::kAvx512)) return Backend::kAvx512;
  if (available(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
#endif
}

const KernelTable& active() noexcept {
  const KernelTable* t = g_table.load(std::memory_order_acquire);
  if (t) return *t;
  const std::lock_guard<std::mutex> lock(g_resolve_mu);
  t = g_table.load(std::memory_order_relaxed);
  if (!t) {
    publish(resolve(std::getenv("ISASGD_KERNEL_BACKEND")));
    t = g_table.load(std::memory_order_relaxed);
  }
  return *t;
}

Backend active_backend() noexcept {
  (void)active();  // force resolution
  return g_backend.load(std::memory_order_relaxed);
}

bool set_backend(Backend b) noexcept {
  const std::lock_guard<std::mutex> lock(g_resolve_mu);
  return publish(b);
}

std::string describe() {
  std::string out = "kernel backend: " + backend_name(active_backend());
  out += " (";
  bool first = true;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    if (!first) out += ", ";
    first = false;
    out += backend_name(b);
    out += compiled(b) ? (cpu_supports(b) ? ": available"
                                          : ": compiled, cpu unsupported")
                       : ": not compiled";
  }
  out += ")";
  return out;
}

}  // namespace isasgd::sparse::kernels
