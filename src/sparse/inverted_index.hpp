// Feature → rows inverted index.
//
// The conflict-graph analysis (paper §3.1: two samples conflict iff they
// share a feature) needs "which rows touch feature j" queries; building them
// on the fly would be O(n·d). The inverted index is built once in O(nnz).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr_matrix.hpp"

namespace isasgd::sparse {

/// CSC-like structure mapping each feature to the (sorted) list of row ids
/// containing it.
class InvertedIndex {
 public:
  /// Builds from a dataset in O(nnz).
  explicit InvertedIndex(const CsrMatrix& data);

  /// Rows that contain feature j (ascending row ids).
  [[nodiscard]] std::span<const std::uint32_t> rows_with_feature(
      std::size_t j) const noexcept {
    return {rows_.data() + feat_ptr_[j], feat_ptr_[j + 1] - feat_ptr_[j]};
  }

  /// Number of rows containing feature j, i.e. the feature's frequency.
  [[nodiscard]] std::size_t feature_frequency(std::size_t j) const noexcept {
    return feat_ptr_[j + 1] - feat_ptr_[j];
  }

  [[nodiscard]] std::size_t dim() const noexcept {
    return feat_ptr_.size() - 1;
  }

  /// The highest feature frequency; features this popular are the conflict
  /// hot spots of Hogwild updates.
  [[nodiscard]] std::size_t max_feature_frequency() const noexcept;

 private:
  std::vector<std::size_t> feat_ptr_;
  std::vector<std::uint32_t> rows_;
};

}  // namespace isasgd::sparse
