// Runtime kernel-backend dispatch: one binary, the widest vectors the host
// actually has.
//
// The kernel bodies in kernels_body.inc are compiled three times into
// per-ISA translation units — scalar (the portable baseline tune),
// AVX2 (kernels_avx2.cpp, -mavx2) and AVX-512 (kernels_avx512.cpp,
// -mavx512{f,dq,vl,bw}) — and gathered into per-backend KernelTables. At
// first use the dispatcher picks the widest backend that is (a) compiled
// into this binary and (b) supported by the running CPU, so a fleet binary
// built WITHOUT -march=native still runs vector code on vector hardware.
//
// Selection order (first match wins):
//   1. ISASGD_KERNEL_BACKEND=scalar|avx2|avx512 environment variable — the
//      operator override. An unavailable or unknown value logs a warning
//      and falls through (it never crashes a fleet binary).
//   2. The ISASGD_NATIVE build pin: a library configured with
//      -DISASGD_NATIVE=ON compiles the *scalar* TU with -march=native and
//      pins dispatch to it — the pre-dispatch behaviour, kept as a
//      dedicated-box convenience. The env var still overrides.
//   3. The widest available backend (avx512 ≻ avx2 ≻ scalar).
//
// set_backend() re-pins at runtime (the benches' --backend flag).
//
// Bit-identity contract: every backend TU is compiled with
// -ffp-contract=off and the bodies contain no ISA-specific code, so all
// backends execute the same double arithmetic in the same per-coordinate
// order — only the registers are wider. Switching backends NEVER changes a
// result, it only changes how fast the result arrives. micro_kernels
// --check and tests/dispatch_test.cpp verify bit-identical outputs across
// every compiled-in backend, so a miscompiled ISA TU fails loudly in CI.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sparse/sparse_vector.hpp"

namespace isasgd::sparse::kernels {

/// The compiled-in kernel backends, narrowest to widest.
enum class Backend { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr std::size_t kBackendCount = 3;

[[nodiscard]] std::string backend_name(Backend b);
/// Throws std::invalid_argument naming the valid spellings.
[[nodiscard]] Backend backend_from_name(const std::string& name);

/// One backend's kernel entry points. Function-pointer signatures mirror
/// the public API of sparse/kernels.hpp exactly; see that header for the
/// per-kernel contracts (aliasing, index ordering, arithmetic order).
struct KernelTable {
  Backend backend = Backend::kScalar;

  value_t (*sparse_dot)(std::span<const value_t>, SparseVectorView) noexcept =
      nullptr;
  void (*sparse_dot_pair)(std::span<const value_t>, std::span<const value_t>,
                          SparseVectorView, value_t&, value_t&) noexcept =
      nullptr;
  void (*sparse_axpy)(std::span<value_t>, value_t, SparseVectorView) noexcept =
      nullptr;
  void (*sparse_dot_residual_axpy)(std::span<value_t>, SparseVectorView,
                                   value_t, value_t, value_t,
                                   value_t) noexcept = nullptr;
  void (*scale_then_sparse_axpy)(std::span<value_t>, std::span<const value_t>,
                                 value_t, value_t, value_t, value_t,
                                 SparseVectorView) noexcept = nullptr;
  value_t (*dense_dot)(std::span<const value_t>,
                       std::span<const value_t>) noexcept = nullptr;
  void (*dense_axpy)(std::span<value_t>, value_t,
                     std::span<const value_t>) noexcept = nullptr;
  void (*dense_scale)(std::span<value_t>, value_t) noexcept = nullptr;
  value_t (*dense_norm)(std::span<const value_t>) noexcept = nullptr;
  value_t (*dense_squared_distance)(std::span<const value_t>,
                                    std::span<const value_t>) noexcept =
      nullptr;
  value_t (*dense_l1_norm)(std::span<const value_t>) noexcept = nullptr;
};

/// True when the backend's TU was compiled with its ISA enabled (CMake
/// skips the AVX TUs on non-x86 targets and compilers without the flags).
[[nodiscard]] bool compiled(Backend b) noexcept;

/// True when the running CPU can execute the backend (CPUID probe; scalar
/// is always true).
[[nodiscard]] bool cpu_supports(Backend b) noexcept;

/// compiled(b) && cpu_supports(b) — selectable on this host.
[[nodiscard]] bool available(Backend b) noexcept;

/// Every selectable backend, narrowest first (always contains kScalar).
[[nodiscard]] std::vector<Backend> available_backends();

/// The backend's kernel table, or nullptr unless available(b). The pointer
/// is valid for the process lifetime — benches and the parity tests call
/// specific backends directly through it, bypassing the active selection.
[[nodiscard]] const KernelTable* table_for(Backend b) noexcept;

/// The active kernel table — what every public kernels.hpp entry point and
/// every solver hot loop routes through. Resolved once on first use (env
/// var → native pin → widest available) and stable until set_backend().
[[nodiscard]] const KernelTable& active() noexcept;

/// The backend active() currently resolves to.
[[nodiscard]] Backend active_backend() noexcept;

/// Re-pins dispatch to `b`. Returns false (and changes nothing) unless
/// available(b). Not intended to be raced against in-flight training —
/// callers (benches, tests, startup code) switch between runs.
bool set_backend(Backend b) noexcept;

/// Pure resolution rule: the backend a fresh process would pick given this
/// ISASGD_KERNEL_BACKEND value (null/empty ⇒ no override). Exposed so the
/// env-override logic is unit-testable without mutating the environment.
[[nodiscard]] Backend resolve(const char* env_value) noexcept;

/// Human-readable one-liner for logs and kernel_info: active backend plus
/// the compiled/supported matrix.
[[nodiscard]] std::string describe();

// Per-TU table factories (internal wiring; nullptr when the TU was
// compiled without its ISA). Use table_for() instead.
[[nodiscard]] const KernelTable* scalar_table() noexcept;
[[nodiscard]] const KernelTable* avx2_table() noexcept;
[[nodiscard]] const KernelTable* avx512_table() noexcept;

}  // namespace isasgd::sparse::kernels
