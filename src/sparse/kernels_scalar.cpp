// Scalar kernel backend: the portable baseline tune every binary carries.
//
// Compiled with the project's default architecture flags — plus
// -march=native when the library is configured with -DISASGD_NATIVE=ON,
// which turns this TU into the "native" tune the dispatcher pins to (see
// dispatch.hpp). Always compiled with -ffp-contract=off: the scalar table
// is the bit-identity reference every other backend is checked against.
#include <cassert>
#include <cmath>
#include <cstddef>

#include "sparse/dispatch.hpp"
#include "sparse/kernels.hpp"

namespace isasgd::sparse {
namespace backend_scalar {
#include "sparse/kernels_body.inc"
}  // namespace backend_scalar
}  // namespace isasgd::sparse

namespace isasgd::sparse::kernels {

const KernelTable* scalar_table() noexcept {
  static const KernelTable table = {
      Backend::kScalar,
      &backend_scalar::sparse_dot,
      &backend_scalar::sparse_dot_pair,
      &backend_scalar::sparse_axpy,
      &backend_scalar::sparse_dot_residual_axpy,
      &backend_scalar::scale_then_sparse_axpy,
      &backend_scalar::dense_dot,
      &backend_scalar::dense_axpy,
      &backend_scalar::dense_scale,
      &backend_scalar::dense_norm,
      &backend_scalar::dense_squared_distance,
      &backend_scalar::dense_l1_norm,
  };
  return &table;
}

}  // namespace isasgd::sparse::kernels
