#include "sparse/sparse_vector.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace isasgd::sparse {

value_t SparseVectorView::squared_norm() const noexcept {
  value_t acc = 0;
  for (value_t v : values_) acc += v * v;
  return acc;
}

value_t SparseVectorView::norm() const noexcept {
  return std::sqrt(squared_norm());
}

SparseVector::SparseVector(std::vector<index_t> indices,
                           std::vector<value_t> values)
    : indices_(std::move(indices)), values_(std::move(values)) {
  if (indices_.size() != values_.size()) {
    throw std::invalid_argument("SparseVector: index/value size mismatch");
  }
  for (std::size_t k = 1; k < indices_.size(); ++k) {
    if (indices_[k] <= indices_[k - 1]) {
      throw std::invalid_argument(
          "SparseVector: indices must be strictly increasing");
    }
  }
}

SparseVector SparseVector::from_unsorted(std::vector<index_t> indices,
                                         std::vector<value_t> values) {
  if (indices.size() != values.size()) {
    throw std::invalid_argument("from_unsorted: size mismatch");
  }
  std::vector<std::size_t> order(indices.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return indices[a] < indices[b];
  });
  std::vector<index_t> out_idx;
  std::vector<value_t> out_val;
  out_idx.reserve(indices.size());
  out_val.reserve(values.size());
  for (std::size_t k : order) {
    if (!out_idx.empty() && out_idx.back() == indices[k]) {
      out_val.back() += values[k];  // merge duplicates
    } else {
      out_idx.push_back(indices[k]);
      out_val.push_back(values[k]);
    }
  }
  return SparseVector(std::move(out_idx), std::move(out_val));
}

SparseVector SparseVector::from_dense(std::span<const value_t> dense,
                                      value_t tol) {
  std::vector<index_t> idx;
  std::vector<value_t> val;
  for (std::size_t j = 0; j < dense.size(); ++j) {
    if (std::abs(dense[j]) > tol) {
      idx.push_back(static_cast<index_t>(j));
      val.push_back(dense[j]);
    }
  }
  return SparseVector(std::move(idx), std::move(val));
}

std::vector<value_t> SparseVector::to_dense(std::size_t dim) const {
  if (!indices_.empty() && indices_.back() >= dim) {
    throw std::out_of_range("to_dense: dim too small for stored indices");
  }
  std::vector<value_t> dense(dim, 0.0);
  for (std::size_t k = 0; k < indices_.size(); ++k) {
    dense[indices_[k]] = values_[k];
  }
  return dense;
}

value_t dot(SparseVectorView a, SparseVectorView b) noexcept {
  value_t acc = 0;
  std::size_t i = 0, j = 0;
  while (i < a.nnz() && j < b.nnz()) {
    const index_t ia = a.index(i), ib = b.index(j);
    if (ia == ib) {
      acc += a.value(i) * b.value(j);
      ++i;
      ++j;
    } else if (ia < ib) {
      ++i;
    } else {
      ++j;
    }
  }
  return acc;
}

}  // namespace isasgd::sparse
