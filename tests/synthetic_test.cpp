#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "analysis/bounds.hpp"
#include "objectives/logistic.hpp"
#include "objectives/objective.hpp"
#include "partition/importance.hpp"

namespace isasgd::data {
namespace {

std::vector<double> lipschitz_of(const sparse::CsrMatrix& m) {
  objectives::LogisticLoss loss;
  return objectives::per_sample_lipschitz(m, loss,
                                          objectives::Regularization::none());
}

TEST(Synthetic, ProducesRequestedShape) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.dim = 200;
  spec.mean_row_nnz = 8;
  const auto m = generate(spec);
  EXPECT_EQ(m.rows(), 500u);
  EXPECT_EQ(m.dim(), 200u);
  EXPECT_NEAR(m.mean_row_nnz(), 8.0, 1.0);
}

TEST(Synthetic, IsDeterministicPerSeed) {
  SyntheticSpec spec;
  spec.rows = 100;
  const auto a = generate(spec);
  const auto b = generate(spec);
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.rows = 100;
  const auto a = generate(spec);
  spec.seed += 1;
  const auto b = generate(spec);
  EXPECT_NE(a.values(), b.values());
}

TEST(Synthetic, LabelsArePlusMinusOne) {
  SyntheticSpec spec;
  spec.rows = 300;
  const auto m = generate(spec);
  std::size_t pos = 0, neg = 0;
  for (double y : m.labels()) {
    ASSERT_TRUE(y == 1.0 || y == -1.0);
    (y > 0 ? pos : neg)++;
  }
  // The planted teacher is symmetric; both classes must be present.
  EXPECT_GT(pos, 30u);
  EXPECT_GT(neg, 30u);
}

TEST(Synthetic, FixedNnzWhenDispersionZero) {
  SyntheticSpec spec;
  spec.rows = 50;
  spec.dim = 1000;
  spec.mean_row_nnz = 7;
  spec.nnz_dispersion = 0;
  const auto m = generate(spec);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(m.row(i).nnz(), 7u);
  }
}

TEST(Synthetic, HitsTargetPsi) {
  SyntheticSpec spec;
  spec.rows = 20000;
  spec.dim = 5000;
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.9;
  const auto m = generate(spec);
  const double psi = analysis::psi(lipschitz_of(m));
  EXPECT_NEAR(psi, 0.9, 0.02);
}

TEST(Synthetic, HitsTargetRho) {
  SyntheticSpec spec;
  spec.rows = 20000;
  spec.dim = 5000;
  spec.target_psi = 0.95;
  spec.mean_lipschitz = mean_lipschitz_for_rho(3e-4, 0.95);
  const auto m = generate(spec);
  const double rho = partition::importance_variance(lipschitz_of(m));
  EXPECT_NEAR(rho, 3e-4, 1e-4);
}

TEST(Synthetic, PsiOneMeansEqualNorms) {
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.target_psi = 1.0;
  const auto m = generate(spec);
  EXPECT_NEAR(analysis::psi(lipschitz_of(m)), 1.0, 1e-9);
}

TEST(Synthetic, MeanLipschitzIsCalibrated) {
  SyntheticSpec spec;
  spec.rows = 20000;
  spec.mean_lipschitz = 0.125;
  const auto m = generate(spec);
  const auto lip = lipschitz_of(m);
  double mean = 0;
  for (double l : lip) mean += l;
  mean /= static_cast<double>(lip.size());
  EXPECT_NEAR(mean, 0.125, 0.01);
}

TEST(Synthetic, FeatureSkewConcentratesPopularFeatures) {
  SyntheticSpec spec;
  spec.rows = 3000;
  spec.dim = 1000;
  spec.mean_row_nnz = 5;
  spec.feature_skew = 3.0;
  const auto skewed = generate(spec);
  spec.feature_skew = 1.0;
  const auto uniform = generate(spec);
  // Count hits to the lowest 10% of feature ids.
  auto low_mass = [](const sparse::CsrMatrix& m) {
    std::size_t low = 0;
    for (auto j : m.col_idx()) {
      if (j < m.dim() / 10) ++low;
    }
    return static_cast<double>(low) / static_cast<double>(m.nnz());
  };
  EXPECT_GT(low_mass(skewed), 2.0 * low_mass(uniform));
}

TEST(Synthetic, LabelsCorrelateWithTeacher) {
  // With no label noise the labels should be predictable from the planted
  // teacher far better than chance.
  SyntheticSpec spec;
  spec.rows = 2000;
  spec.dim = 500;
  spec.mean_row_nnz = 20;
  spec.label_noise = 0.0;
  spec.margin_noise = 0.0;
  const auto m = generate(spec);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double margin = 0;
    const auto row = m.row(i);
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      margin += teacher_weight(spec.seed, row.index(k)) * row.value(k);
    }
    if ((margin >= 0 ? 1.0 : -1.0) == m.label(i)) ++agree;
  }
  EXPECT_EQ(agree, m.rows());
}

TEST(SyntheticValidation, RejectsBadSpecs) {
  SyntheticSpec spec;
  spec.rows = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.dim = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.mean_row_nnz = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.mean_row_nnz = 1e9;  // > dim
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.feature_skew = 0.5;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.target_psi = 0.0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.target_psi = 1.5;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.label_noise = 0.7;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec = {};
  spec.mean_lipschitz = -1;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(SyntheticCalibration, SigmaForPsiInvertsCorrectly) {
  for (double psi : {0.877, 0.9, 0.95, 0.972, 0.999}) {
    const double sigma = sigma_for_psi(psi);
    EXPECT_NEAR(std::exp(-4.0 * sigma * sigma), psi, 1e-12);
  }
  EXPECT_DOUBLE_EQ(sigma_for_psi(1.0), 0.0);
  EXPECT_THROW(sigma_for_psi(0.0), std::invalid_argument);
  EXPECT_THROW(sigma_for_psi(1.2), std::invalid_argument);
}

TEST(SyntheticCalibration, RhoRoundTrips) {
  const double psi = 0.92;
  const double mean = mean_lipschitz_for_rho(2e-4, psi);
  SyntheticSpec spec;
  spec.target_psi = psi;
  spec.mean_lipschitz = mean;
  EXPECT_NEAR(rho_for(spec), 2e-4, 1e-12);
  EXPECT_THROW(mean_lipschitz_for_rho(1e-4, 1.0), std::invalid_argument);
}

TEST(SyntheticDuplicates, DuplicateRowsShareFeaturesExactly) {
  SyntheticSpec spec;
  spec.rows = 4000;
  spec.dim = 500;
  spec.mean_row_nnz = 6;
  spec.duplicate_fraction = 0.3;
  const auto m = generate(spec);
  // Count rows whose (indices, values) coincide with an earlier row.
  std::size_t duplicates = 0;
  std::map<std::pair<std::vector<sparse::index_t>, std::vector<sparse::value_t>>,
           int>
      seen;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    std::pair<std::vector<sparse::index_t>, std::vector<sparse::value_t>> key{
        {row.indices().begin(), row.indices().end()},
        {row.values().begin(), row.values().end()}};
    if (seen.count(key)) ++duplicates;
    ++seen[key];
  }
  // ~30% of rows should be copies (binomial, loose bounds).
  EXPECT_GT(duplicates, m.rows() / 5);
  EXPECT_LT(duplicates, m.rows() / 2);
}

TEST(SyntheticDuplicates, ConflictingLabelsCreateErrorFloor) {
  SyntheticSpec spec;
  spec.rows = 4000;
  spec.dim = 500;
  spec.mean_row_nnz = 6;
  spec.duplicate_fraction = 0.4;
  spec.label_noise = 0.1;
  const auto m = generate(spec);
  // Group identical rows; the Bayes-optimal error is the minority count
  // over each group. It must be strictly positive here.
  std::map<std::vector<sparse::index_t>, std::pair<int, int>> votes;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    auto& [pos, neg] = votes[{row.indices().begin(), row.indices().end()}];
    (m.label(i) > 0 ? pos : neg)++;
  }
  std::size_t floor = 0;
  for (const auto& [key, counts] : votes) {
    floor += static_cast<std::size_t>(std::min(counts.first, counts.second));
  }
  EXPECT_GT(floor, m.rows() / 100);
}

TEST(SyntheticDuplicates, ZeroFractionProducesNoExactCopies) {
  SyntheticSpec spec;
  spec.rows = 500;
  spec.dim = 5000;
  spec.mean_row_nnz = 8;
  spec.duplicate_fraction = 0.0;
  const auto m = generate(spec);
  std::set<std::vector<sparse::index_t>> seen;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto row = m.row(i);
    seen.insert({row.indices().begin(), row.indices().end()});
  }
  // Random 8-of-5000 supports collide with negligible probability.
  EXPECT_EQ(seen.size(), m.rows());
}

TEST(SyntheticDuplicates, InvalidFractionThrows) {
  SyntheticSpec spec;
  spec.duplicate_fraction = 1.0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
  spec.duplicate_fraction = -0.1;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(TeacherWeight, IsDeterministicAndSeedDependent) {
  EXPECT_DOUBLE_EQ(teacher_weight(1, 5), teacher_weight(1, 5));
  EXPECT_NE(teacher_weight(1, 5), teacher_weight(2, 5));
  EXPECT_NE(teacher_weight(1, 5), teacher_weight(1, 6));
}

TEST(TeacherWeight, HasRoughlyStandardNormalMoments) {
  double sum = 0, sum_sq = 0;
  constexpr int kSamples = 50000;
  for (int j = 0; j < kSamples; ++j) {
    const double w = teacher_weight(99, static_cast<std::uint64_t>(j));
    sum += w;
    sum_sq += w * w;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

}  // namespace
}  // namespace isasgd::data
