// Parameterised property sweeps: invariants that must hold across the whole
// configuration grid, not just hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analysis/bounds.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/objective.hpp"
#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sgd.hpp"
#include "solvers/solver.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

// ---------- Alias table correctness across weight shapes ----------

struct WeightShape {
  const char* name;
  std::vector<double> (*make)(std::size_t, util::Rng&);
};

std::vector<double> uniform_weights(std::size_t n, util::Rng&) {
  return std::vector<double>(n, 1.0);
}
std::vector<double> linear_weights(std::size_t n, util::Rng&) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = static_cast<double>(i + 1);
  return w;
}
std::vector<double> random_weights(std::size_t n, util::Rng& rng) {
  std::vector<double> w(n);
  for (auto& v : w) v = util::uniform_double(rng) + 1e-6;
  return w;
}
std::vector<double> pareto_weights(std::size_t n, util::Rng& rng) {
  std::vector<double> w(n);
  for (auto& v : w) v = std::pow(util::uniform_double(rng) + 1e-9, -0.7);
  return w;
}
std::vector<double> sparse_weights(std::size_t n, util::Rng& rng) {
  std::vector<double> w(n, 0.0);
  for (std::size_t i = 0; i < n; i += 3) w[i] = util::uniform_double(rng) + 0.1;
  return w;
}

class AliasDistribution
    : public ::testing::TestWithParam<std::tuple<WeightShape, std::size_t>> {};

TEST_P(AliasDistribution, ProbabilitiesMatchNormalizedWeights) {
  const auto& [shape, n] = GetParam();
  util::Rng rng(n * 7 + 1);
  const auto weights = shape.make(n, rng);
  sampling::AliasTable table(weights);
  double total = 0;
  for (double w : weights) total += w;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(table.probability(i), weights[i] / total, 1e-9);
  }
}

TEST_P(AliasDistribution, EmpiricalFrequenciesWithinTolerance) {
  const auto& [shape, n] = GetParam();
  util::Rng rng(n * 13 + 5);
  const auto weights = shape.make(n, rng);
  sampling::AliasTable table(weights);
  double total = 0;
  for (double w : weights) total += w;
  util::Rng sample_rng(99);
  const int kSamples = 200000;
  std::vector<int> counts(n, 0);
  for (int s = 0; s < kSamples; ++s) ++counts[table.sample(sample_rng)];
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = weights[i] / total;
    const double tolerance =
        5.0 * std::sqrt(std::max(expected, 1e-12) / kSamples) + 1e-4;
    EXPECT_NEAR(counts[i] / double(kSamples), expected, tolerance)
        << shape.name << " n=" << n << " outcome " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AliasDistribution,
    ::testing::Combine(
        ::testing::Values(WeightShape{"uniform", uniform_weights},
                          WeightShape{"linear", linear_weights},
                          WeightShape{"random", random_weights},
                          WeightShape{"pareto", pareto_weights},
                          WeightShape{"sparse", sparse_weights}),
        ::testing::Values<std::size_t>(2, 7, 64, 501)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- Partition balancing across strategies and widths ----------

class BalancingSweep
    : public ::testing::TestWithParam<std::tuple<partition::Strategy, std::size_t>> {};

TEST_P(BalancingSweep, PlanInvariantsHold) {
  const auto& [strategy, parts] = GetParam();
  util::Rng rng(31);
  std::vector<double> lip(997);
  for (auto& l : lip) l = std::pow(util::uniform_double(rng) + 1e-9, -0.5);
  partition::PartitionOptions opt;
  opt.strategy = strategy;
  partition::PartitionPlan plan(lip, parts, opt);
  // 1. Shards tile the row set.
  std::size_t total = 0;
  double phi_total = 0;
  for (std::size_t tid = 0; tid < parts; ++tid) {
    const auto shard = plan.shard(tid);
    total += shard.rows.size();
    phi_total += shard.phi;
    double psum = 0;
    for (double p : shard.probabilities) {
      EXPECT_GE(p, 0.0);
      psum += p;
    }
    EXPECT_NEAR(psum, 1.0, 1e-9);
  }
  EXPECT_EQ(total, lip.size());
  // 2. Φ mass is conserved.
  double lip_total = 0;
  for (double l : lip) lip_total += l;
  EXPECT_NEAR(phi_total, lip_total, 1e-6 * lip_total);
}

TEST_P(BalancingSweep, BalancersNeverWorseThanIdentityOnSortedData) {
  const auto& [strategy, parts] = GetParam();
  if (strategy == partition::Strategy::kNone) GTEST_SKIP();
  // Ascending L is adversarial for contiguous splits.
  std::vector<double> lip(600);
  for (std::size_t i = 0; i < lip.size(); ++i) {
    lip[i] = 1e-3 * static_cast<double>(i * i + 1);
  }
  partition::PartitionOptions ident;
  ident.strategy = partition::Strategy::kNone;
  partition::PartitionOptions opt;
  opt.strategy = strategy;
  partition::PartitionPlan base(lip, parts, ident);
  partition::PartitionPlan plan(lip, parts, opt);
  EXPECT_LE(plan.imbalance(), base.imbalance() + 1e-9)
      << partition::strategy_name(strategy) << " parts=" << parts;
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesWidths, BalancingSweep,
    ::testing::Combine(::testing::Values(partition::Strategy::kNone,
                                         partition::Strategy::kShuffle,
                                         partition::Strategy::kHeadTail,
                                         partition::Strategy::kGreedyLpt),
                       ::testing::Values<std::size_t>(2, 4, 8, 16)),
    [](const auto& info) {
      return partition::strategy_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- Solver convergence across the configuration grid ----------

struct SolverCase {
  const char* name;  // registry name
};

class SolverGrid
    : public ::testing::TestWithParam<
          std::tuple<SolverCase, const char*, std::size_t>> {};

TEST_P(SolverGrid, ObjectiveDecreasesAcrossGrid) {
  const auto& [solver, objective_name, threads] = GetParam();
  data::SyntheticSpec spec;
  spec.rows = 1200;
  spec.dim = 250;
  spec.mean_row_nnz = 8;
  spec.target_psi = 0.9;
  spec.smoothness_beta =
      objectives::make_objective(objective_name)->smoothness();
  spec.mean_lipschitz = 0.3;
  spec.seed = threads * 17 + 3;
  const auto data = data::generate(spec);
  const auto objective = objectives::make_objective(objective_name);
  metrics::Evaluator ev(data, *objective, objectives::Regularization::none(),
                        2);
  solvers::SolverOptions opt;
  opt.epochs = 5;
  opt.step_size = objective->name() == "logistic" ? 0.5 : 0.1;
  opt.threads = threads;
  opt.seed = 5;
  const data::InMemorySource source(data);
  const auto trace = solvers::SolverRegistry::instance().get(solver.name).train(
      solvers::SolverContext{.source = source,
                             .objective = *objective,
                             .options = opt,
                             .eval = ev.as_fn(),
                             .observer = nullptr});
  EXPECT_LT(trace.points.back().objective, trace.points.front().objective)
      << solver.name << "/" << objective_name << "/t" << threads;
  EXPECT_TRUE(std::isfinite(trace.points.back().objective));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverGrid,
    ::testing::Combine(
        ::testing::Values(SolverCase{"sgd"}, SolverCase{"is_sgd"},
                          SolverCase{"asgd"}, SolverCase{"is_asgd"}),
        ::testing::Values("logistic", "squared_hinge"),
        ::testing::Values<std::size_t>(1, 2, 8)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             std::get<1>(info.param) + "_t" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- IS weight unbiasedness ----------

class IsWeighting : public ::testing::TestWithParam<double> {};

TEST_P(IsWeighting, WeightedSamplingIsUnbiasedInExpectation) {
  // E[(n·p_i)^{-1}·g_i] under P must equal (1/n)·Σ g_i for any per-sample
  // quantity g. Check with g = L (importance itself) across ψ targets.
  const double psi_target = GetParam();
  data::SyntheticSpec spec;
  spec.rows = 4000;
  spec.dim = 200;
  spec.target_psi = psi_target;
  const auto data = data::generate(spec);
  const auto objective = objectives::make_objective("logistic");
  const auto lip = objectives::per_sample_lipschitz(
      data, *objective, objectives::Regularization::none());
  double total = 0;
  for (double l : lip) total += l;
  const double true_mean = total / static_cast<double>(lip.size());

  sampling::AliasTable table(lip);
  util::Rng rng(11);
  double acc = 0;
  constexpr int kSamples = 300000;
  for (int s = 0; s < kSamples; ++s) {
    const std::size_t i = table.sample(rng);
    const double p = lip[i] / total;
    acc += lip[i] / (static_cast<double>(lip.size()) * p);
  }
  EXPECT_NEAR(acc / kSamples, true_mean, 0.02 * true_mean);
}

INSTANTIATE_TEST_SUITE_P(PsiSweep, IsWeighting,
                         ::testing::Values(0.999, 0.95, 0.9, 0.85),
                         [](const auto& info) {
                           return "psi" + std::to_string(static_cast<int>(
                                              info.param * 1000));
                         });

// ---------- ψ calibration property across the generator grid ----------

class PsiCalibration : public ::testing::TestWithParam<double> {};

TEST_P(PsiCalibration, GeneratedPsiTracksTarget) {
  const double target = GetParam();
  data::SyntheticSpec spec;
  spec.rows = 30000;
  spec.dim = 2000;
  spec.mean_row_nnz = 6;
  spec.target_psi = target;
  spec.seed = static_cast<std::uint64_t>(target * 1e6);
  const auto data = data::generate(spec);
  const auto objective = objectives::make_objective("logistic");
  const auto lip = objectives::per_sample_lipschitz(
      data, *objective, objectives::Regularization::none());
  EXPECT_NEAR(analysis::psi(lip), target, 0.025);
}

INSTANTIATE_TEST_SUITE_P(Targets, PsiCalibration,
                         ::testing::Values(0.877, 0.892, 0.93, 0.964, 0.972),
                         [](const auto& info) {
                           return "target" + std::to_string(static_cast<int>(
                                                 info.param * 1000));
                         });

}  // namespace
}  // namespace isasgd
