// TrainingObserver pipeline: per-epoch callbacks, early stopping that
// terminates serial and async runs mid-sweep, typed diagnostics, and the
// begin/end bracketing every registry-dispatched run receives.
#include <gtest/gtest.h>

#include <any>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/is_asgd.hpp"

namespace isasgd::core {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Trainer trainer;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 500;
          spec.dim = 100;
          spec.mean_row_nnz = 8;
          return data::generate(spec);
        }()),
        trainer(data, loss, objectives::Regularization::l2(1e-5), 2) {}
};

/// Counts callbacks and requests a stop after `stop_after` epochs (0-based
/// initial point excluded from the stop budget).
class CountingObserver : public solvers::TrainingObserver {
 public:
  explicit CountingObserver(std::size_t stop_after = SIZE_MAX)
      : stop_after_(stop_after) {}

  void on_train_begin(const std::string& solver_name,
                      const solvers::SolverOptions&) override {
    ++begins;
    solver = solver_name;
  }

  bool on_epoch(const solvers::TracePoint& p) override {
    ++epochs_seen;
    last_epoch = p.epoch;
    return p.epoch < stop_after_;
  }

  void on_diagnostics(const std::any& d) override {
    if (std::any_cast<solvers::IsAsgdReport>(&d)) ++reports;
  }

  void on_train_end(const solvers::Trace& t) override {
    ++ends;
    final_points = t.points.size();
  }

  std::string solver;
  std::size_t begins = 0, ends = 0, epochs_seen = 0, reports = 0;
  std::size_t last_epoch = 0, final_points = 0;

 private:
  std::size_t stop_after_;
};

TEST(Observer, SeesEveryEpochAndBeginEndBracketing) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 4;
  opt.step_size = 0.2;
  CountingObserver obs;
  const auto trace = f.trainer.train("SGD", opt, &obs);
  EXPECT_EQ(obs.begins, 1u);
  EXPECT_EQ(obs.ends, 1u);
  EXPECT_EQ(obs.solver, "SGD");
  EXPECT_EQ(obs.epochs_seen, 5u);  // initial point + 4 epochs
  EXPECT_EQ(obs.final_points, trace.points.size());
}

TEST(Observer, EarlyStopTerminatesSerialSolverMidSweep) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 20;
  opt.step_size = 0.2;
  CountingObserver obs(/*stop_after=*/2);
  const auto trace = f.trainer.train("SGD", opt, &obs);
  // Points: epoch 0, 1, 2 — then the stop request lands.
  EXPECT_EQ(trace.points.size(), 3u);
  EXPECT_EQ(trace.points.back().epoch, 2u);
}

TEST(Observer, EarlyStopTerminatesAsyncSolverMidSweep) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 20;
  opt.threads = 4;
  opt.step_size = 0.2;
  for (const char* solver : {"ASGD", "IS-ASGD", "SVRG-ASGD"}) {
    CountingObserver obs(/*stop_after=*/2);
    const auto trace = f.trainer.train(solver, opt, &obs);
    EXPECT_EQ(trace.points.size(), 3u) << solver;
    EXPECT_EQ(trace.points.back().epoch, 2u) << solver;
  }
}

TEST(Observer, StopAtInitialPointRunsZeroEpochs) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 20;
  opt.threads = 2;
  opt.step_size = 0.2;
  for (const char* solver : {"SGD", "ASGD"}) {
    CountingObserver obs(/*stop_after=*/0);
    const auto trace = f.trainer.train(solver, opt, &obs);
    EXPECT_EQ(trace.points.size(), 1u) << solver;
    EXPECT_EQ(trace.points.back().epoch, 0u) << solver;
  }
}

TEST(Observer, IsAsgdPublishesTypedDiagnostics) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 1;
  opt.threads = 2;
  CountingObserver obs;
  (void)f.trainer.train("IS-ASGD", opt, &obs);
  EXPECT_EQ(obs.reports, 1u);
}

TEST(Observer, ChainFansOutAndCombinesStopRequests) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 10;
  opt.step_size = 0.2;
  CountingObserver watcher;             // never stops
  CountingObserver stopper(/*stop_after=*/1);  // stops after epoch 1
  solvers::ObserverChain chain;
  chain.add(watcher).add(stopper);
  const auto trace = f.trainer.train("SGD", opt, &chain);
  EXPECT_EQ(trace.points.size(), 2u);
  // Both observers saw every recorded point.
  EXPECT_EQ(watcher.epochs_seen, 2u);
  EXPECT_EQ(stopper.epochs_seen, 2u);
}

TEST(Observer, ValidationFailureFiresNoCallbacks) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.step_size = -1.0;  // rejected by Solver::validate
  CountingObserver obs;
  EXPECT_THROW((void)f.trainer.train("SGD", opt, &obs),
               std::invalid_argument);
  EXPECT_EQ(obs.begins, 0u);
  EXPECT_EQ(obs.ends, 0u);
}

}  // namespace
}  // namespace isasgd::core
