#include "io/binary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"

namespace isasgd::io {
namespace {

sparse::CsrMatrix sample_dataset() {
  data::SyntheticSpec spec;
  spec.rows = 300;
  spec.dim = 500;
  spec.mean_row_nnz = 7;
  spec.seed = 99;
  return data::generate(spec);
}

TEST(BinaryIo, DatasetRoundTripsExactly) {
  const auto original = sample_dataset();
  std::stringstream buf;
  write_dataset_binary(buf, original);
  const auto restored = read_dataset_binary(buf);
  EXPECT_EQ(restored.dim(), original.dim());
  EXPECT_EQ(restored.rows(), original.rows());
  EXPECT_EQ(restored.row_ptr(), original.row_ptr());
  EXPECT_EQ(restored.col_idx(), original.col_idx());
  EXPECT_EQ(restored.values(), original.values());
  EXPECT_EQ(restored.labels(), original.labels());
}

TEST(BinaryIo, EmptyDatasetRoundTrips) {
  sparse::CsrMatrix empty;
  std::stringstream buf;
  write_dataset_binary(buf, empty);
  const auto restored = read_dataset_binary(buf);
  EXPECT_EQ(restored.rows(), 0u);
  EXPECT_EQ(restored.nnz(), 0u);
}

TEST(BinaryIo, BadMagicIsRejected) {
  std::stringstream buf;
  buf << "NOTMAGIC-and-some-padding-bytes";
  EXPECT_THROW(read_dataset_binary(buf), std::runtime_error);
}

TEST(BinaryIo, TruncatedDatasetIsRejected) {
  const auto original = sample_dataset();
  std::stringstream buf;
  write_dataset_binary(buf, original);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream half(bytes);
  EXPECT_THROW(read_dataset_binary(half), std::runtime_error);
}

TEST(BinaryIo, CorruptedHeaderIsRejected) {
  const auto original = sample_dataset();
  std::stringstream buf;
  write_dataset_binary(buf, original);
  std::string bytes = buf.str();
  bytes[9] = '\xff';  // clobber the dim field
  bytes[10] = '\xff';
  bytes[15] = '\x7f';
  std::stringstream bad(bytes);
  EXPECT_THROW(read_dataset_binary(bad), std::runtime_error);
}

TEST(BinaryIo, ModelRoundTripsExactly) {
  std::vector<double> w = {0.0, -1.5, 3.25e-17, 1e300, -0.0};
  std::stringstream buf;
  write_model_binary(buf, w);
  EXPECT_EQ(read_model_binary(buf), w);
}

TEST(BinaryIo, ModelBadMagicIsRejected) {
  const auto original = sample_dataset();
  std::stringstream buf;
  write_dataset_binary(buf, original);  // dataset magic, not model magic
  EXPECT_THROW(read_model_binary(buf), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const auto original = sample_dataset();
  const std::string path = "/tmp/isasgd_binary_io_test.bin";
  write_dataset_binary_file(path, original);
  const auto restored = read_dataset_binary_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.values(), original.values());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_dataset_binary_file("/no/such/file.bin"),
               std::runtime_error);
  EXPECT_THROW(read_model_binary_file("/no/such/model.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace isasgd::io
