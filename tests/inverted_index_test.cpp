#include "sparse/inverted_index.hpp"

#include <gtest/gtest.h>

#include "sparse/csr_builder.hpp"

namespace isasgd::sparse {
namespace {

CsrMatrix sample_data() {
  // row0: features {0, 1}
  // row1: features {1, 2}
  // row2: features {3}
  // row3: features {0, 3}
  CsrBuilder b(4);
  b.add_row(std::vector<index_t>{0, 1}, std::vector<value_t>{1, 1}, 1.0);
  b.add_row(std::vector<index_t>{1, 2}, std::vector<value_t>{1, 1}, -1.0);
  b.add_row(std::vector<index_t>{3}, std::vector<value_t>{1}, 1.0);
  b.add_row(std::vector<index_t>{0, 3}, std::vector<value_t>{1, 1}, -1.0);
  return b.build();
}

TEST(InvertedIndex, MapsFeaturesToRows) {
  const CsrMatrix data = sample_data();
  const InvertedIndex index(data);
  EXPECT_EQ(index.dim(), 4u);
  const auto f0 = index.rows_with_feature(0);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0], 0u);
  EXPECT_EQ(f0[1], 3u);
  const auto f2 = index.rows_with_feature(2);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(f2[0], 1u);
}

TEST(InvertedIndex, RowListsAreSorted) {
  const CsrMatrix data = sample_data();
  const InvertedIndex index(data);
  for (std::size_t j = 0; j < index.dim(); ++j) {
    const auto rows = index.rows_with_feature(j);
    for (std::size_t k = 1; k < rows.size(); ++k) {
      EXPECT_LT(rows[k - 1], rows[k]);
    }
  }
}

TEST(InvertedIndex, FrequenciesSumToNnz) {
  const CsrMatrix data = sample_data();
  const InvertedIndex index(data);
  std::size_t total = 0;
  for (std::size_t j = 0; j < index.dim(); ++j) {
    total += index.feature_frequency(j);
  }
  EXPECT_EQ(total, data.nnz());
}

TEST(InvertedIndex, MaxFrequencyIsCorrect) {
  const CsrMatrix data = sample_data();
  const InvertedIndex index(data);
  EXPECT_EQ(index.max_feature_frequency(), 2u);
}

TEST(InvertedIndex, UnusedFeatureHasZeroFrequency) {
  CsrBuilder b(10);
  b.add_row(std::vector<index_t>{0}, std::vector<value_t>{1}, 1.0);
  const CsrMatrix data = b.build();
  const InvertedIndex index(data);
  EXPECT_EQ(index.feature_frequency(5), 0u);
  EXPECT_TRUE(index.rows_with_feature(5).empty());
}

TEST(InvertedIndex, RoundTripsAgainstRows) {
  const CsrMatrix data = sample_data();
  const InvertedIndex index(data);
  // Every (row, feature) pair in the CSR must appear in the index and vice
  // versa (counted both ways).
  std::size_t via_rows = data.nnz();
  std::size_t via_index = 0;
  for (std::size_t j = 0; j < index.dim(); ++j) {
    for (std::uint32_t r : index.rows_with_feature(j)) {
      bool found = false;
      for (index_t jj : data.row(r).indices()) {
        if (jj == j) found = true;
      }
      EXPECT_TRUE(found) << "row " << r << " feature " << j;
      ++via_index;
    }
  }
  EXPECT_EQ(via_rows, via_index);
}

}  // namespace
}  // namespace isasgd::sparse
