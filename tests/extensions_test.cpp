// Tests for the extension features beyond the paper's Algorithm 4:
// mini-batch updates and adaptive (Eq. 11) importance re-estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sgd.hpp"
#include "solvers/solver.hpp"

namespace isasgd::solvers {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 1500;
          spec.dim = 250;
          spec.mean_row_nnz = 10;
          spec.target_psi = 0.9;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}

  SolverOptions options(std::size_t batch) const {
    SolverOptions opt;
    opt.epochs = 6;
    opt.step_size = 0.5;
    opt.threads = 4;
    opt.seed = 13;
    opt.batch_size = batch;
    return opt;
  }
};

double final_rmse(const Trace& t) { return t.points.back().rmse; }
double initial_rmse(const Trace& t) { return t.points.front().rmse; }

/// Mini-batch semantics: the step λ applies to the *averaged* batch
/// gradient, so an epoch contains n/b updates — per-epoch progress shrinks
/// with b at fixed λ (the classic batch-size/step-size trade-off). The
/// convergence expectation therefore loosens as b grows.
double batch_threshold(std::size_t b) {
  if (b <= 1) return 0.75;
  if (b <= 4) return 0.88;
  if (b <= 16) return 0.95;
  return 0.99;
}

class BatchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchSweep, SgdConvergesAtEveryBatchSize) {
  Fixture f;
  const Trace t =
      run_sgd(f.data, f.loss, f.options(GetParam()), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), batch_threshold(GetParam()) * initial_rmse(t))
      << "b=" << GetParam();
}

TEST_P(BatchSweep, IsSgdConvergesAtEveryBatchSize) {
  Fixture f;
  const Trace t =
      run_is_sgd(f.data, f.loss, f.options(GetParam()), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), batch_threshold(GetParam()) * initial_rmse(t))
      << "b=" << GetParam();
}

TEST_P(BatchSweep, AsgdConvergesAtEveryBatchSize) {
  Fixture f;
  const Trace t =
      run_asgd(f.data, f.loss, f.options(GetParam()), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), batch_threshold(GetParam()) * initial_rmse(t))
      << "b=" << GetParam();
}

TEST_P(BatchSweep, IsAsgdConvergesAtEveryBatchSize) {
  Fixture f;
  const Trace t =
      run_is_asgd(f.data, f.loss, f.options(GetParam()), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), batch_threshold(GetParam()) * initial_rmse(t))
      << "b=" << GetParam();
}

TEST(MiniBatch, LinearStepScalingRecoversPerEpochProgress) {
  // The classic linear-scaling rule: multiplying λ by b compensates the
  // reduced update count, matching b = 1 progress closely at moderate b.
  Fixture f;
  const Trace base = run_sgd(f.data, f.loss, f.options(1), f.evaluator.as_fn());
  auto opt = f.options(8);
  opt.step_size *= 8;
  const Trace scaled = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NEAR(final_rmse(scaled), final_rmse(base),
              0.15 * final_rmse(base) + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values<std::size_t>(1, 4, 16, 64),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST(MiniBatch, BatchOfDatasetSizeStillMakesProgress) {
  // Degenerate full-batch case: one (averaged) update per epoch.
  Fixture f;
  auto opt = f.options(f.data.rows());
  opt.epochs = 12;
  const Trace t = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), initial_rmse(t));
}

TEST(MiniBatch, ZeroBatchIsTreatedAsOne) {
  Fixture f;
  const Trace t = run_sgd(f.data, f.loss, f.options(0), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.75 * initial_rmse(t));
}

TEST(SequenceModes, StratifiedConvergesForBothIsSolvers) {
  Fixture f;
  auto opt = f.options(1);
  opt.sequence_mode = SolverOptions::SequenceMode::kStratified;
  const Trace serial = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(serial), 0.75 * initial_rmse(serial));
  const Trace async = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(async), 0.75 * initial_rmse(async));
}

TEST(SequenceModes, LegacyReshuffleFlagFoldedByValidate) {
  // Solver::validate is the single resolution point for the deprecated
  // flag: it folds it into sequence_mode and clears it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const Solver& solver = SolverRegistry::instance().get("IS-SGD");
  SolverOptions opt;
  opt.sequence_mode = SolverOptions::SequenceMode::kStratified;
  opt.reshuffle_sequences = true;
  solver.validate(opt);
  EXPECT_EQ(opt.sequence_mode, SolverOptions::SequenceMode::kReshuffle);
  EXPECT_FALSE(opt.reshuffle_sequences);
#pragma GCC diagnostic pop

  SolverOptions untouched;
  untouched.sequence_mode = SolverOptions::SequenceMode::kStratified;
  solver.validate(untouched);
  EXPECT_EQ(untouched.sequence_mode,
            SolverOptions::SequenceMode::kStratified);
}

TEST(SequenceModes, StratifiedBeatsReshuffleOnCoverageBoundData) {
  // On a dataset whose error floor requires visiting every sample (exact
  // duplicates with conflicting labels + memorisable singletons), the
  // reshuffle mode's permanent ~1/e coverage hole must cost accuracy
  // relative to the stratified mode at equal epochs.
  data::SyntheticSpec spec;
  spec.rows = 4000;
  spec.dim = 20000;
  spec.mean_row_nnz = 8;
  spec.target_psi = 0.9;
  spec.duplicate_fraction = 0.2;
  spec.seed = 77;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
  SolverOptions opt;
  opt.epochs = 12;
  opt.threads = 4;
  opt.step_size = 0.5;
  opt.sequence_mode = SolverOptions::SequenceMode::kReshuffle;
  const Trace reshuffled = run_is_asgd(data, loss, opt, ev.as_fn());
  opt.sequence_mode = SolverOptions::SequenceMode::kStratified;
  const Trace stratified = run_is_asgd(data, loss, opt, ev.as_fn());
  EXPECT_LT(stratified.best_error_rate(), reshuffled.best_error_rate());
}

TEST(AdaptiveImportance, ConvergesAndCostsTrainingTime) {
  Fixture f;
  auto opt = f.options(1);
  opt.adaptive_importance = true;
  const Trace adaptive = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(adaptive), 0.75 * initial_rmse(adaptive));
  // The re-estimation runs inside the timed window; setup only pays the
  // one-off O(nnz) row-norm cache, the same order as the static variant's
  // importance pass (under streamed sequences NO mode pre-generates
  // per-epoch sequences offline, so the two setups are comparable — the
  // old "adaptive setup ≪ static setup" contract is gone by design).
  opt.adaptive_importance = false;
  const Trace fixed = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_GT(adaptive.train_seconds, 0.0);
  EXPECT_LT(adaptive.setup_seconds, 5.0 * fixed.setup_seconds + 1e-2);
}

TEST(AdaptiveImportance, TakesPrecedenceOverShuffledSequenceModes) {
  // adaptive_importance + kReshuffle/kStratified (reachable directly, or
  // via the deprecated reshuffle_sequences shim that validate folds into
  // kReshuffle) must run the adaptive i.i.d. stream, not throw because the
  // shuffled modes cannot rebuild() — a regression guard for the streamed
  // sequence layer.
  Fixture f;
  for (auto mode : {SolverOptions::SequenceMode::kReshuffle,
                    SolverOptions::SequenceMode::kStratified}) {
    auto opt = f.options(1);
    opt.adaptive_importance = true;
    opt.sequence_mode = mode;
    const Trace serial = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
    EXPECT_LT(final_rmse(serial), initial_rmse(serial));
    const Trace async =
        run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
    EXPECT_LT(final_rmse(async), initial_rmse(async));
  }
}

TEST(AdaptiveImportance, IntervalIsRespected) {
  Fixture f;
  auto opt = f.options(1);
  opt.adaptive_importance = true;
  opt.adaptive_interval = 3;
  const Trace t = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_TRUE(std::isfinite(final_rmse(t)));
  EXPECT_LT(final_rmse(t), initial_rmse(t));
}

TEST(AdaptiveImportance, QualityIsAtLeastComparableToStatic) {
  // Eq. 11 is the variance-optimal distribution; tracking it should not be
  // materially worse than the static Eq. 12 approximation at equal epochs.
  Fixture f;
  auto opt = f.options(1);
  opt.epochs = 8;
  const Trace fixed = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  opt.adaptive_importance = true;
  const Trace adaptive = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LE(final_rmse(adaptive), final_rmse(fixed) * 1.10 + 0.02);
}

}  // namespace
}  // namespace isasgd::solvers
