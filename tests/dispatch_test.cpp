// Runtime kernel-backend dispatch: detection sanity, the env-override
// resolution rule, and — the load-bearing contract — bit-identical results
// from every compiled-in backend on randomized sparse inputs, all the way
// up to registry-wide solver parity (same final model bytes under every
// backend).
//
// On a host where only the scalar backend is available the cross-backend
// loops degenerate to zero comparisons; CI's vector-capable runners give
// them teeth.
#include "sparse/dispatch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/rng.hpp"

namespace isasgd::sparse {
namespace {

namespace k = kernels;

/// Restores the ambient backend selection after a test that re-pins it.
struct BackendGuard {
  k::Backend previous = k::active_backend();
  ~BackendGuard() { k::set_backend(previous); }
};

std::vector<value_t> random_vector(std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<value_t> v(d);
  for (auto& x : v) x = util::normal_double(rng);
  return v;
}

SparseVector random_row(std::size_t d, std::size_t nnz, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> idx;
  while (idx.size() < nnz) {
    const auto j = static_cast<index_t>(util::uniform_index(rng, d));
    if (std::find(idx.begin(), idx.end(), j) == idx.end()) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end());
  std::vector<value_t> val(nnz);
  for (auto& v : val) v = util::normal_double(rng);
  return SparseVector(std::move(idx), std::move(val));
}

TEST(Dispatch, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(k::compiled(k::Backend::kScalar));
  EXPECT_TRUE(k::cpu_supports(k::Backend::kScalar));
  EXPECT_TRUE(k::available(k::Backend::kScalar));
  const auto menu = k::available_backends();
  ASSERT_FALSE(menu.empty());
  EXPECT_EQ(menu.front(), k::Backend::kScalar);
}

TEST(Dispatch, TablesAreSelfConsistent) {
  for (const k::Backend b : k::available_backends()) {
    const k::KernelTable* table = k::table_for(b);
    ASSERT_NE(table, nullptr) << k::backend_name(b);
    EXPECT_EQ(table->backend, b);
    // Every entry point must be populated — a null slot would be a
    // mis-assembled table that crashes mid-training.
    EXPECT_NE(table->sparse_dot, nullptr);
    EXPECT_NE(table->sparse_dot_pair, nullptr);
    EXPECT_NE(table->sparse_axpy, nullptr);
    EXPECT_NE(table->sparse_dot_residual_axpy, nullptr);
    EXPECT_NE(table->scale_then_sparse_axpy, nullptr);
    EXPECT_NE(table->dense_dot, nullptr);
    EXPECT_NE(table->dense_axpy, nullptr);
    EXPECT_NE(table->dense_scale, nullptr);
    EXPECT_NE(table->dense_norm, nullptr);
    EXPECT_NE(table->dense_squared_distance, nullptr);
    EXPECT_NE(table->dense_l1_norm, nullptr);
  }
  // A CPU-unsupported or uncompiled backend is never offered.
  for (const k::Backend b :
       {k::Backend::kScalar, k::Backend::kAvx2, k::Backend::kAvx512}) {
    if (!k::available(b)) {
      EXPECT_EQ(k::table_for(b), nullptr);
    }
  }
}

TEST(Dispatch, NamesRoundTrip) {
  for (const k::Backend b :
       {k::Backend::kScalar, k::Backend::kAvx2, k::Backend::kAvx512}) {
    EXPECT_EQ(k::backend_from_name(k::backend_name(b)), b);
  }
  EXPECT_THROW((void)k::backend_from_name("sse9"), std::invalid_argument);
  EXPECT_THROW((void)k::backend_from_name(""), std::invalid_argument);
}

TEST(Dispatch, ResolveHonoursEnvOverride) {
  // A valid, available name wins outright.
  for (const k::Backend b : k::available_backends()) {
    EXPECT_EQ(k::resolve(k::backend_name(b).c_str()), b);
  }
  // Garbage, empty, and null fall through to automatic selection, which
  // must itself land on an available backend.
  const k::Backend automatic = k::resolve(nullptr);
  EXPECT_TRUE(k::available(automatic));
  EXPECT_EQ(k::resolve(""), automatic);
  EXPECT_EQ(k::resolve("not-a-backend"), automatic);
  // A known but unavailable name also falls through.
  for (const k::Backend b : {k::Backend::kAvx2, k::Backend::kAvx512}) {
    if (!k::available(b)) {
      EXPECT_EQ(k::resolve(k::backend_name(b).c_str()), automatic);
    }
  }
}

TEST(Dispatch, SetBackendRePinsAndRejectsUnavailable) {
  const BackendGuard guard;
  for (const k::Backend b : k::available_backends()) {
    EXPECT_TRUE(k::set_backend(b));
    EXPECT_EQ(k::active_backend(), b);
    EXPECT_EQ(k::active().backend, b);
  }
  for (const k::Backend b : {k::Backend::kAvx2, k::Backend::kAvx512}) {
    if (k::available(b)) continue;
    const k::Backend before = k::active_backend();
    EXPECT_FALSE(k::set_backend(b));
    EXPECT_EQ(k::active_backend(), before);  // unchanged on refusal
  }
}

// ---- Bit-identity across backends ----------------------------------------
// The whole dispatch contract: every backend executes the same double
// arithmetic, so outputs are EXPECT_EQ-equal, not approximately equal.

TEST(DispatchParity, AllKernelsBitIdenticalToScalar) {
  const k::KernelTable& scalar = *k::table_for(k::Backend::kScalar);
  const std::size_t d = 1337;  // odd: exercises every unroll remainder
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const auto w0 = random_vector(d, 100 + trial);
    const auto s0 = random_vector(d, 200 + trial);
    const SparseVector x =
        random_row(d, 3 + static_cast<std::size_t>(trial) * 17, 300 + trial);
    for (const k::Backend b : k::available_backends()) {
      if (b == k::Backend::kScalar) continue;
      const k::KernelTable& t = *k::table_for(b);
      const std::string tag =
          k::backend_name(b) + " trial " + std::to_string(trial);

      EXPECT_EQ(t.sparse_dot(w0, x.view()), scalar.sparse_dot(w0, x.view()))
          << tag;
      value_t aw = 0, as = 0, bw = 0, bs = 0;
      scalar.sparse_dot_pair(w0, s0, x.view(), aw, as);
      t.sparse_dot_pair(w0, s0, x.view(), bw, bs);
      EXPECT_EQ(aw, bw) << tag;
      EXPECT_EQ(as, bs) << tag;
      EXPECT_EQ(t.dense_dot(w0, s0), scalar.dense_dot(w0, s0)) << tag;
      EXPECT_EQ(t.dense_norm(w0), scalar.dense_norm(w0)) << tag;
      EXPECT_EQ(t.dense_squared_distance(w0, s0),
                scalar.dense_squared_distance(w0, s0))
          << tag;
      EXPECT_EQ(t.dense_l1_norm(w0), scalar.dense_l1_norm(w0)) << tag;

      // Mutating kernels: run both backends from identical state, compare
      // every coordinate.
      auto a = w0, c = w0;
      scalar.sparse_axpy(a, 0.37, x.view());
      t.sparse_axpy(c, 0.37, x.view());
      EXPECT_EQ(a, c) << tag;

      a = w0, c = w0;
      scalar.dense_axpy(a, -1.25, s0);
      t.dense_axpy(c, -1.25, s0);
      EXPECT_EQ(a, c) << tag;

      a = w0, c = w0;
      scalar.dense_scale(a, 0.99);
      t.dense_scale(c, 0.99);
      EXPECT_EQ(a, c) << tag;

      // Fused SGD step, all three regularizer kinds (none / L2 / L1).
      for (const auto& [l1, l2] :
           {std::pair{0.0, 0.0}, {0.0, 1e-3}, {1e-4, 0.0}}) {
        a = w0, c = w0;
        scalar.sparse_dot_residual_axpy(a, x.view(), 0.05, 0.8, l1, l2);
        t.sparse_dot_residual_axpy(c, x.view(), 0.05, 0.8, l1, l2);
        EXPECT_EQ(a, c) << tag << " l1=" << l1 << " l2=" << l2;
      }
      // Fused SVRG step, same regularizer sweep.
      for (const auto& [l1, l2] :
           {std::pair{0.0, 0.0}, {0.0, 1e-3}, {1e-4, 0.0}}) {
        a = w0, c = w0;
        scalar.scale_then_sparse_axpy(a, s0, 0.05, l1, l2, 0.02, x.view());
        t.scale_then_sparse_axpy(c, s0, 0.05, l1, l2, 0.02, x.view());
        EXPECT_EQ(a, c) << tag << " l1=" << l1 << " l2=" << l2;
      }
    }
  }
}

// ---- Registry-wide solver parity ------------------------------------------
// Every registered solver, trained serially under each available backend,
// must produce byte-identical final models: the backends are
// interchangeable all the way up the stack, not just kernel by kernel.

TEST(DispatchParity, EverySolverProducesIdenticalModelsUnderEveryBackend) {
  const auto menu = k::available_backends();
  if (menu.size() < 2) GTEST_SKIP() << "only one backend available here";

  data::SyntheticSpec spec;
  spec.rows = 200;
  spec.dim = 80;
  spec.mean_row_nnz = 6;
  spec.seed = 11;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .l2(1e-3)
                                    .eval_threads(1)
                                    .build();
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.step_size = 0.2;
  opt.seed = 99;
  opt.threads = 1;  // serial: async solvers become deterministic
  opt.keep_final_model = true;

  const BackendGuard guard;
  const auto& registry = solvers::SolverRegistry::instance();
  for (const std::string& name : registry.list()) {
    ASSERT_TRUE(k::set_backend(k::Backend::kScalar));
    const auto reference = trainer.train(name, opt);
    for (const k::Backend b : menu) {
      if (b == k::Backend::kScalar) continue;
      ASSERT_TRUE(k::set_backend(b));
      const auto candidate = trainer.train(name, opt);
      ASSERT_EQ(reference.final_model.size(), candidate.final_model.size())
          << name << " under " << k::backend_name(b);
      for (std::size_t j = 0; j < reference.final_model.size(); ++j) {
        ASSERT_EQ(reference.final_model[j], candidate.final_model[j])
            << name << " under " << k::backend_name(b) << " coordinate " << j;
      }
    }
  }
}

}  // namespace
}  // namespace isasgd::sparse
