// Hosted parameter-server endpoint (service::PsHost + the ps_serve/ps_stop
// protocol verbs): a daemon-owned model that external workers train against
// over the distributed wire protocol, applying pushes with the same
// fenced::apply_push arithmetic as every other backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "distributed/fenced.hpp"
#include "distributed/ps_wire.hpp"
#include "net/transport.hpp"
#include "objectives/objective.hpp"
#include "service/protocol.hpp"
#include "service/ps_host.hpp"
#include "service/training_service.hpp"

namespace isasgd {
namespace {

namespace wire = distributed::wire;

std::vector<double> step_values(net::Endpoint& ep,
                                const std::vector<std::uint32_t>& idx) {
  wire::Packer req;
  req.u64(idx.size());
  for (const std::uint32_t c : idx) req.u32(c);
  net::write_frame(ep, wire::kStep, std::move(req).take());
  const net::Frame reply = net::expect_frame(ep, wire::kStepReply, "step");
  wire::Unpacker in(reply.payload);
  std::vector<double> values(idx.size());
  for (double& v : values) v = in.f64();
  return values;
}

void push(net::Endpoint& ep, double gradient_scale, double scaled_step,
          const std::vector<std::uint32_t>& idx,
          const std::vector<double>& val) {
  wire::Packer req;
  req.f64(gradient_scale).f64(scaled_step).u64(idx.size());
  for (std::size_t j = 0; j < idx.size(); ++j) {
    req.u32(idx[j]);
    req.f64(val[j]);
  }
  net::write_frame(ep, wire::kPush, std::move(req).take());
  (void)net::expect_frame(ep, wire::kPushAck, "push");
}

TEST(PsHost, ServesGetsAndAppliesPushesWithSharedApplyArithmetic) {
  service::PsHost host(/*dim=*/16, "tcp://127.0.0.1:0");
  auto ep = net::connect(host.address());
  ep->set_io_timeout(5000);

  // Fresh model is all zeros.
  const std::vector<std::uint32_t> idx{1, 4, 9};
  EXPECT_EQ(step_values(*ep, idx), (std::vector<double>{0.0, 0.0, 0.0}));

  // One push must land exactly as fenced::apply_push lands it locally.
  const std::vector<double> val{0.5, -1.25, 2.0};
  const double gscale = 0.375, sstep = 0.0625;
  std::vector<double> expected(16, 0.0);
  distributed::fenced::apply_push(idx, val, gscale, sstep,
                                  objectives::Regularization::none(),
                                  expected);
  push(*ep, gscale, sstep, idx, val);
  const std::vector<double> got = step_values(*ep, idx);
  for (std::size_t j = 0; j < idx.size(); ++j) {
    EXPECT_EQ(got[j], expected[idx[j]]) << "coordinate " << idx[j];
  }
  EXPECT_EQ(host.pushes(), 1u);
  EXPECT_EQ(host.model(), expected);
}

TEST(PsHost, ModelOutlivesWorkerConnections) {
  service::PsHost host(/*dim=*/4, "tcp://127.0.0.1:0");
  {
    auto first = net::connect(host.address());
    first->set_io_timeout(5000);
    push(*first, 1.0, 0.5, {2}, {1.0});  // w[2] -= 0.5
    first->close();
  }
  auto second = net::connect(host.address());
  second->set_io_timeout(5000);
  EXPECT_EQ(step_values(*second, {2}), (std::vector<double>{-0.5}));
  EXPECT_EQ(host.pushes(), 1u);
}

TEST(PsHost, OutOfRangePushCoordinateCostsOnlyThatConnection) {
  service::PsHost host(/*dim=*/4, "tcp://127.0.0.1:0");
  {
    auto bad = net::connect(host.address());
    bad->set_io_timeout(5000);
    wire::Packer req;
    req.f64(1.0).f64(1.0).u64(1).u32(99).f64(1.0);
    net::write_frame(*bad, wire::kPush, std::move(req).take());
    // The host drops the connection without acking.
    EXPECT_THROW((void)net::read_frame(*bad), net::TransportError);
  }
  auto good = net::connect(host.address());
  good->set_io_timeout(5000);
  EXPECT_EQ(step_values(*good, {0}), (std::vector<double>{0.0}));
  EXPECT_EQ(host.pushes(), 0u);
}

TEST(PsHost, MidPushConnectionDropLeavesNoHalfAppliedUpdate) {
  service::PsHost host(/*dim=*/4, "tcp://127.0.0.1:0");
  {
    // A worker dies mid-push: hand-build the full kPush wire bytes, deliver
    // the header plus half the payload, and vanish. The host parses a push
    // only from a complete frame, so the torn one must cost nothing — not
    // one coordinate of it may land.
    auto torn = net::connect(host.address());
    torn->set_io_timeout(5000);
    wire::Packer req;
    req.f64(1.0).f64(0.5).u64(2).u32(0).f64(1.0).u32(1).f64(1.0);
    const std::string payload = std::move(req).take();
    std::string bytes(16 + payload.size(), '\0');
    const std::uint32_t magic = net::kFrameMagic;
    const std::uint32_t type = wire::kPush;
    const std::uint64_t length = payload.size();
    std::memcpy(bytes.data(), &magic, 4);
    std::memcpy(bytes.data() + 4, &type, 4);
    std::memcpy(bytes.data() + 8, &length, 8);
    std::memcpy(bytes.data() + 16, payload.data(), payload.size());
    torn->send_bytes(bytes.data(), 16 + payload.size() / 2);
    torn->close();
  }
  // The host stays serviceable: the next worker's push is the FIRST applied
  // update, and the model is exactly that one push — nothing half-applied.
  auto good = net::connect(host.address());
  good->set_io_timeout(5000);
  const std::vector<std::uint32_t> idx{2};
  const std::vector<double> val{1.0};
  push(*good, 1.0, 0.5, idx, val);
  std::vector<double> expected(4, 0.0);
  distributed::fenced::apply_push(idx, val, 1.0, 0.5,
                                  objectives::Regularization::none(),
                                  expected);
  EXPECT_EQ(host.pushes(), 1u);
  EXPECT_EQ(host.model(), expected);
  EXPECT_EQ(step_values(*good, {0, 1}), (std::vector<double>{0.0, 0.0}));
}

TEST(PsHostProtocol, ServeStopRoundTripThroughTheVerbs) {
  service::TrainingService svc{service::TrainingService::Options{}};
  service::ProtocolHandler handler(svc);

  EXPECT_EQ(handler.handle_line("ps_stop"), "err no hosted ps");

  const std::string reply = handler.handle_line("ps_serve dim=8");
  ASSERT_EQ(reply.rfind("ok addr=", 0), 0u) << reply;
  ASSERT_NE(reply.find(" dim=8"), std::string::npos) << reply;
  const std::string addr =
      reply.substr(8, reply.find(' ', 8) - 8);  // between addr= and " dim"

  // Second serve is refused while one is running.
  EXPECT_EQ(handler.handle_line("ps_serve dim=8").rfind("err ", 0), 0u);

  // A worker can train against the daemon-hosted model.
  {
    auto ep = net::connect(addr);
    ep->set_io_timeout(5000);
    push(*ep, 2.0, 0.25, {3}, {1.0});
    push(*ep, 2.0, 0.25, {3}, {1.0});
    EXPECT_EQ(step_values(*ep, {3}), (std::vector<double>{-1.0}));
  }
  EXPECT_EQ(handler.handle_line("ps_stop"), "ok pushes=2");
  EXPECT_EQ(handler.handle_line("ps_stop"), "err no hosted ps");

  // Bad arguments are typed errors, not crashes.
  EXPECT_EQ(handler.handle_line("ps_serve dim=0"),
            "err ps_serve requires dim > 0");
  EXPECT_EQ(handler.handle_line("ps_serve").rfind("err ", 0), 0u);
  EXPECT_EQ(handler.handle_line("ps_serve dim=-1").rfind("err bad integer", 0),
            0u);
}

TEST(PsHostProtocol, ShutdownStopsTheHostedPs) {
  service::TrainingService svc{service::TrainingService::Options{}};
  service::ProtocolHandler handler(svc);
  ASSERT_EQ(handler.handle_line("ps_serve dim=2").rfind("ok ", 0), 0u);
  EXPECT_EQ(handler.handle_line("shutdown"), "ok bye");
  EXPECT_TRUE(handler.shutdown_requested());
  EXPECT_EQ(handler.ps_host(), nullptr);
}

}  // namespace
}  // namespace isasgd
