#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "partition/balancer.hpp"
#include "partition/importance.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace isasgd::partition {
namespace {

// ---------- importance metrics ----------

TEST(ImportanceVariance, MatchesHandComputation) {
  // L = {1,2,3,4}: mean 2.5, variance (2.25+0.25+0.25+2.25)/4 = 1.25.
  EXPECT_DOUBLE_EQ(importance_variance(std::vector<double>{1, 2, 3, 4}), 1.25);
}

TEST(ImportanceVariance, ZeroForConstantVector) {
  EXPECT_DOUBLE_EQ(importance_variance(std::vector<double>{3, 3, 3}), 0.0);
  EXPECT_DOUBLE_EQ(importance_variance(std::vector<double>{}), 0.0);
}

TEST(PartitionImportance, SumsPerPartition) {
  const std::vector<double> lip = {1, 2, 3, 4};
  const std::vector<std::uint32_t> assign = {0, 0, 1, 1};
  const auto phi = partition_importance(lip, assign, 2);
  EXPECT_DOUBLE_EQ(phi[0], 3.0);
  EXPECT_DOUBLE_EQ(phi[1], 7.0);
}

TEST(PartitionImportance, RejectsMismatchedSizes) {
  EXPECT_THROW(partition_importance(std::vector<double>{1.0},
                                    std::vector<std::uint32_t>{0, 1}, 2),
               std::invalid_argument);
}

TEST(PartitionImportance, RejectsOutOfRangeAssignment) {
  EXPECT_THROW(partition_importance(std::vector<double>{1.0},
                                    std::vector<std::uint32_t>{5}, 2),
               std::out_of_range);
}

TEST(ImportanceImbalance, ZeroWhenBalanced) {
  EXPECT_DOUBLE_EQ(importance_imbalance(std::vector<double>{5, 5, 5}), 0.0);
}

TEST(ImportanceImbalance, PositiveWhenUnbalanced) {
  // Φ = {3, 7}: (7−3)/5 = 0.8.
  EXPECT_DOUBLE_EQ(importance_imbalance(std::vector<double>{3, 7}), 0.8);
}

TEST(SamplingDistortion, PaperFigure2Example) {
  // §2.3: D1={L1=1,L2=2} on node 1, D2={L3=3,L4=4} on node 2.
  // Global p4 = 0.4; local contribution of x4 = (4/7)/2 ≈ 0.2857:
  // distortion of x4 = |0.2857−0.4|/0.4 ≈ 0.2857. x1 is worse:
  // local (1/3)/2 = 1/6 vs global 0.1 → 2/3 distortion.
  const std::vector<double> lip = {1, 2, 3, 4};
  const std::vector<std::uint32_t> assign = {0, 0, 1, 1};
  const double worst = sampling_distortion(lip, assign, 2);
  EXPECT_NEAR(worst, 2.0 / 3.0, 1e-9);
}

TEST(SamplingDistortion, ZeroUnderPerfectBalance) {
  // Head-tail pairing of {1,2,3,4} → {1,4} and {2,3}: Φ both 5, and within
  // each shard local/global rates match: e.g. x1: (1/5)/2 = 0.1 = global.
  const std::vector<double> lip = {1, 2, 3, 4};
  const std::vector<std::uint32_t> assign = {0, 1, 1, 0};
  EXPECT_NEAR(sampling_distortion(lip, assign, 2), 0.0, 1e-12);
}

// ---------- balancers ----------

TEST(HeadTailBalance, PaperExampleBalancesPerfectly) {
  // Figure 2's balanced row: {x1,x4 | x3,x2} — head-tail pairing.
  const std::vector<double> lip = {1, 2, 3, 4};
  const auto order = head_tail_balance(lip);
  ASSERT_EQ(order.size(), 4u);
  // First pair must combine smallest with largest.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 2u);
  // Contiguous split into 2 → Φ = {5, 5}.
  const std::vector<std::uint32_t> assign = {0, 0, 1, 1};
  std::vector<double> reordered;
  for (auto i : order) reordered.push_back(lip[i]);
  const auto phi = partition_importance(reordered, assign, 2);
  EXPECT_DOUBLE_EQ(phi[0], phi[1]);
}

TEST(HeadTailBalance, IsAPermutation) {
  util::Rng rng(1);
  std::vector<double> lip(1001);
  for (auto& l : lip) l = util::uniform_double(rng);
  const auto order = head_tail_balance(lip);
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), lip.size());
}

TEST(HeadTailBalance, OddCountKeepsMedianLast) {
  const std::vector<double> lip = {5, 1, 3};
  const auto order = head_tail_balance(lip);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 2u);  // the median element (value 3)
}

TEST(HeadTailBalance, EmptyAndSingleton) {
  EXPECT_TRUE(head_tail_balance(std::vector<double>{}).empty());
  const auto one = head_tail_balance(std::vector<double>{2.0});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RandomShuffle, IsSeededPermutation) {
  const auto a = random_shuffle(500, 42);
  const auto b = random_shuffle(500, 42);
  const auto c = random_shuffle(500, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<std::uint32_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 500u);
}

TEST(IdentityOrder, IsIdentity) {
  const auto order = identity_order(5);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(GreedyLpt, BeatsOrMatchesHeadTailOnSkewedData) {
  // Heavy-tailed L: a few huge values among many small ones.
  util::Rng rng(7);
  std::vector<double> lip(1000);
  for (auto& l : lip) {
    const double u = util::uniform_double(rng);
    l = std::pow(u, -0.8);  // Pareto-ish tail
  }
  const std::size_t parts = 8;
  auto imbalance_of = [&](const std::vector<std::uint32_t>& order) {
    std::vector<double> reordered;
    for (auto i : order) reordered.push_back(lip[i]);
    std::vector<std::uint32_t> assign(lip.size());
    for (std::size_t k = 0; k < lip.size(); ++k) {
      assign[k] = static_cast<std::uint32_t>(k * parts / lip.size());
    }
    return importance_imbalance(partition_importance(reordered, assign, parts));
  };
  EXPECT_LE(imbalance_of(greedy_lpt_balance(lip, parts)),
            imbalance_of(head_tail_balance(lip)) + 1e-9);
}

TEST(GreedyLpt, IsAPermutation) {
  std::vector<double> lip = {5, 3, 8, 1, 9, 2, 7};
  const auto order = greedy_lpt_balance(lip, 3);
  std::set<std::uint32_t> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), lip.size());
}

TEST(GreedyLpt, RejectsZeroPartitions) {
  EXPECT_THROW(greedy_lpt_balance(std::vector<double>{1.0}, 0),
               std::invalid_argument);
}

// ---------- PartitionPlan ----------

TEST(PartitionPlan, ShardsPartitionAllRows) {
  std::vector<double> lip(103);
  util::Rng rng(3);
  for (auto& l : lip) l = 0.1 + util::uniform_double(rng);
  PartitionOptions opt;
  opt.strategy = Strategy::kHeadTail;
  PartitionPlan plan(lip, 4, opt);
  EXPECT_EQ(plan.num_partitions(), 4u);
  EXPECT_EQ(plan.total_rows(), 103u);
  std::set<std::uint32_t> seen;
  std::size_t total = 0;
  for (std::size_t tid = 0; tid < 4; ++tid) {
    const Shard s = plan.shard(tid);
    total += s.rows.size();
    for (auto r : s.rows) seen.insert(r);
    EXPECT_EQ(s.rows.size(), s.lipschitz.size());
    EXPECT_EQ(s.rows.size(), s.probabilities.size());
  }
  EXPECT_EQ(total, 103u);
  EXPECT_EQ(seen.size(), 103u);
}

TEST(PartitionPlan, LocalProbabilitiesSumToOne) {
  std::vector<double> lip(64);
  util::Rng rng(4);
  for (auto& l : lip) l = util::uniform_double(rng) + 0.01;
  PartitionPlan plan(lip, 4, {});
  for (std::size_t tid = 0; tid < 4; ++tid) {
    const Shard s = plan.shard(tid);
    double sum = 0;
    for (double p : s.probabilities) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(PartitionPlan, ShardLipschitzMatchesGlobalRows) {
  std::vector<double> lip = {4, 8, 15, 16, 23, 42};
  PartitionOptions opt;
  opt.strategy = Strategy::kShuffle;
  PartitionPlan plan(lip, 2, opt);
  for (std::size_t tid = 0; tid < 2; ++tid) {
    const Shard s = plan.shard(tid);
    for (std::size_t k = 0; k < s.rows.size(); ++k) {
      EXPECT_DOUBLE_EQ(s.lipschitz[k], lip[s.rows[k]]);
    }
  }
}

TEST(PartitionPlan, PhiMatchesShardSums) {
  std::vector<double> lip = {1, 2, 3, 4, 5, 6};
  PartitionPlan plan(lip, 3, {});
  const auto phis = plan.phis();
  for (std::size_t tid = 0; tid < 3; ++tid) {
    const Shard s = plan.shard(tid);
    double sum = 0;
    for (double l : s.lipschitz) sum += l;
    EXPECT_DOUBLE_EQ(sum, phis[tid]);
    EXPECT_DOUBLE_EQ(s.phi, phis[tid]);
  }
}

TEST(PartitionPlan, HeadTailReducesImbalanceVsIdentity) {
  // Sorted ascending input is the worst case for a contiguous split.
  std::vector<double> lip(1000);
  for (std::size_t i = 0; i < lip.size(); ++i) {
    lip[i] = 0.001 * static_cast<double>(i + 1);
  }
  PartitionOptions none;
  none.strategy = Strategy::kNone;
  PartitionOptions head_tail;
  head_tail.strategy = Strategy::kHeadTail;
  PartitionPlan unbalanced(lip, 8, none);
  PartitionPlan balanced(lip, 8, head_tail);
  EXPECT_LT(balanced.imbalance(), 0.05 * unbalanced.imbalance());
}

TEST(PartitionPlan, AdaptiveBalancesHighRho) {
  // High-spread L (ρ far above ζ) → head-tail under the evaluation-section
  // reading of Algorithm 4.
  std::vector<double> lip = {0.1, 10.0, 0.2, 9.0, 0.1, 12.0};
  PartitionOptions opt;
  opt.strategy = Strategy::kAdaptive;
  opt.zeta = 5e-4;
  PartitionPlan plan(lip, 2, opt);
  EXPECT_EQ(plan.applied_strategy(), Strategy::kHeadTail);
  EXPECT_GT(plan.rho(), opt.zeta);
}

TEST(PartitionPlan, AdaptiveShufflesLowRho) {
  std::vector<double> lip(100, 0.25);  // ρ = 0
  PartitionOptions opt;
  opt.strategy = Strategy::kAdaptive;
  PartitionPlan plan(lip, 2, opt);
  EXPECT_EQ(plan.applied_strategy(), Strategy::kShuffle);
}

TEST(PartitionPlan, LiteralPseudocodeTestFlipsAdaptiveChoice) {
  std::vector<double> lip(100, 0.25);  // ρ = 0 ≤ ζ
  PartitionOptions opt;
  opt.strategy = Strategy::kAdaptive;
  opt.literal_pseudocode_test = true;
  PartitionPlan plan(lip, 2, opt);
  EXPECT_EQ(plan.applied_strategy(), Strategy::kHeadTail);
}

TEST(PartitionPlan, RejectsDegenerateInputs) {
  EXPECT_THROW(PartitionPlan(std::vector<double>{}, 1, {}),
               std::invalid_argument);
  EXPECT_THROW(PartitionPlan(std::vector<double>{1.0}, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(PartitionPlan(std::vector<double>{1.0}, 2, {}),
               std::invalid_argument);
}

TEST(PartitionPlan, ShardOutOfRangeThrows) {
  PartitionPlan plan(std::vector<double>{1.0, 2.0}, 2, {});
  EXPECT_THROW(plan.shard(2), std::out_of_range);
}

TEST(PartitionPlan, SinglePartitionRecoversGlobalDistribution) {
  std::vector<double> lip = {1, 2, 3, 4};
  PartitionOptions opt;
  opt.strategy = Strategy::kNone;
  PartitionPlan plan(lip, 1, opt);
  const Shard s = plan.shard(0);
  EXPECT_NEAR(s.probabilities[3], 0.4, 1e-12);  // matches IS-SGD's global P
}

TEST(StrategyNames, RoundTrip) {
  for (Strategy s : {Strategy::kNone, Strategy::kShuffle, Strategy::kHeadTail,
                     Strategy::kGreedyLpt, Strategy::kAdaptive}) {
    EXPECT_EQ(strategy_from_name(strategy_name(s)), s);
  }
  EXPECT_THROW(strategy_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace isasgd::partition
