#include "io/libsvm.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace isasgd::io {
namespace {

sparse::CsrMatrix parse(const std::string& text,
                        const LibsvmReadOptions& opts = {}) {
  std::istringstream in(text);
  return read_libsvm(in, opts);
}

TEST(Libsvm, ParsesBasicFile) {
  const auto data = parse("+1 1:0.5 3:2.0\n-1 2:1.0\n");
  EXPECT_EQ(data.rows(), 2u);
  EXPECT_EQ(data.dim(), 3u);
  EXPECT_DOUBLE_EQ(data.label(0), 1.0);
  EXPECT_DOUBLE_EQ(data.label(1), -1.0);
  EXPECT_EQ(data.row(0).index(0), 0u);  // 1-based → 0-based
  EXPECT_DOUBLE_EQ(data.row(0).value(1), 2.0);
}

TEST(Libsvm, SkipsBlankLinesAndComments) {
  const auto data = parse("\n# header comment\n+1 1:1\n\n-1 2:1  # trailing\n");
  EXPECT_EQ(data.rows(), 2u);
}

TEST(Libsvm, HandlesCrlf) {
  const auto data = parse("+1 1:1\r\n-1 2:1\r\n");
  EXPECT_EQ(data.rows(), 2u);
}

TEST(Libsvm, ToleratesUnsortedIndices) {
  const auto data = parse("+1 5:5 2:2\n-1 1:1\n");
  EXPECT_EQ(data.row(0).index(0), 1u);
  EXPECT_DOUBLE_EQ(data.row(0).value(0), 2.0);
}

TEST(Libsvm, RowWithoutFeaturesIsAllowed) {
  const auto data = parse("+1\n-1 1:1\n");
  EXPECT_EQ(data.rows(), 2u);
  EXPECT_EQ(data.row(0).nnz(), 0u);
}

TEST(Libsvm, ZeroIndexFailsWithLineNumber) {
  try {
    parse("+1 1:1\n-1 0:2\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Libsvm, MissingColonFails) {
  EXPECT_THROW(parse("+1 3 4\n"), std::runtime_error);
}

TEST(Libsvm, GarbageValueFails) {
  EXPECT_THROW(parse("+1 1:abc\n"), std::runtime_error);
}

TEST(Libsvm, MapsZeroOneLabelsToPlusMinus) {
  const auto data = parse("0 1:1\n1 2:1\n0 3:1\n");
  EXPECT_DOUBLE_EQ(data.label(0), -1.0);
  EXPECT_DOUBLE_EQ(data.label(1), 1.0);
}

TEST(Libsvm, MapsOneTwoLabelsToPlusMinus) {
  const auto data = parse("1 1:1\n2 2:1\n");
  EXPECT_DOUBLE_EQ(data.label(0), -1.0);
  EXPECT_DOUBLE_EQ(data.label(1), 1.0);
}

TEST(Libsvm, LeavesPlusMinusLabelsAlone) {
  const auto data = parse("-1 1:1\n+1 2:1\n");
  EXPECT_DOUBLE_EQ(data.label(0), -1.0);
  EXPECT_DOUBLE_EQ(data.label(1), 1.0);
}

TEST(Libsvm, NormalizationCanBeDisabled) {
  LibsvmReadOptions opts;
  opts.normalize_binary_labels = false;
  const auto data = parse("0 1:1\n1 2:1\n", opts);
  EXPECT_DOUBLE_EQ(data.label(0), 0.0);
}

TEST(Libsvm, MulticlassLabelsPassThrough) {
  const auto data = parse("1 1:1\n2 2:1\n3 3:1\n");
  EXPECT_DOUBLE_EQ(data.label(2), 3.0);
}

TEST(Libsvm, DimHintExpandsDimension) {
  LibsvmReadOptions opts;
  opts.dim_hint = 100;
  EXPECT_EQ(parse("+1 1:1\n", opts).dim(), 100u);
}

TEST(Libsvm, MaxRowsTruncates) {
  LibsvmReadOptions opts;
  opts.max_rows = 2;
  EXPECT_EQ(parse("+1 1:1\n-1 2:1\n+1 3:1\n", opts).rows(), 2u);
}

TEST(Libsvm, MissingFileThrows) {
  EXPECT_THROW(read_libsvm_file("/no/such/file.svm"), std::runtime_error);
}

TEST(Libsvm, WriteReadRoundTrips) {
  const auto original = parse("+1 1:0.25 7:-3.5\n-1 2:1e-7\n+1 5:42\n");
  std::ostringstream out;
  write_libsvm(out, original);
  const auto reparsed = parse(out.str());
  ASSERT_EQ(reparsed.rows(), original.rows());
  EXPECT_EQ(reparsed.dim(), original.dim());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    EXPECT_DOUBLE_EQ(reparsed.label(i), original.label(i));
    const auto a = original.row(i), b = reparsed.row(i);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
      EXPECT_EQ(a.index(k), b.index(k));
      EXPECT_DOUBLE_EQ(a.value(k), b.value(k));
    }
  }
}

TEST(Libsvm, ScientificNotationValues) {
  const auto data = parse("+1 1:1.5e-3 2:2E+2\n");
  EXPECT_DOUBLE_EQ(data.row(0).value(0), 1.5e-3);
  EXPECT_DOUBLE_EQ(data.row(0).value(1), 200.0);
}

}  // namespace
}  // namespace isasgd::io
