// io::shardpack format: round-trip fidelity, sidecar exactness, and defect
// handling in the checkpoint_test mould — a pack with any flipped byte,
// truncated prefix, wrong magic, or future version must be rejected with a
// typed ShardPackError naming the path and the defect, never silently
// served in part. Plus the PrefetchAutotuner policy, driven directly with
// synthetic counter deltas.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/shard_cache.hpp"
#include "data/synthetic.hpp"
#include "io/shardpack.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd {
namespace {

sparse::CsrMatrix small_data(std::size_t rows = 300, std::size_t dim = 64) {
  data::SyntheticSpec spec;
  spec.rows = rows;
  spec.dim = dim;
  spec.mean_row_nnz = 7;
  spec.seed = 11;
  return data::generate(spec);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Decodes every shard of `reader` and compares against `expected` bit for
/// bit (f64 packs are lossless by contract).
void expect_pack_equals(const io::ShardPackReader& reader,
                        const sparse::CsrMatrix& expected) {
  ASSERT_EQ(reader.rows(), expected.rows());
  ASSERT_EQ(reader.dim(), expected.dim());
  ASSERT_EQ(reader.nnz(), expected.nnz());
  std::vector<std::size_t> row_ptr;
  std::vector<sparse::index_t> col_idx;
  std::vector<sparse::value_t> values;
  std::vector<sparse::value_t> labels;
  for (std::size_t s = 0; s < reader.shard_count(); ++s) {
    reader.decode_shard(s, row_ptr, col_idx, values, labels);
    const std::size_t base = reader.shard_begin(s);
    ASSERT_EQ(row_ptr.size(), reader.shard_rows(s) + 1);
    for (std::size_t r = 0; r < reader.shard_rows(s); ++r) {
      const auto want = expected.row(base + r);
      ASSERT_EQ(row_ptr[r + 1] - row_ptr[r], want.indices().size())
          << "row " << base + r;
      for (std::size_t k = 0; k < want.indices().size(); ++k) {
        EXPECT_EQ(col_idx[row_ptr[r] + k], want.index(k));
        EXPECT_EQ(values[row_ptr[r] + k], want.value(k));
      }
      EXPECT_EQ(labels[r], expected.label(base + r));
    }
  }
}

TEST(ShardPackFormat, RoundTripIsBitExact) {
  const sparse::CsrMatrix data = small_data();
  const std::string path = temp_path("roundtrip.issp");
  io::ShardPackWriteOptions opt;
  opt.shard_rows = 64;  // uneven tail shard on purpose (300 % 64 != 0)
  io::write_shardpack(path, data, opt);
  const io::ShardPackReader reader(path);
  EXPECT_EQ(reader.shard_count(), (data.rows() + 63) / 64);
  expect_pack_equals(reader, data);
  std::remove(path.c_str());
}

TEST(ShardPackFormat, SidecarStoresExactSquaredNorms) {
  const sparse::CsrMatrix data = small_data();
  const std::string path = temp_path("sidecar.issp");
  io::write_shardpack(path, data, {.shard_rows = 50});
  const io::ShardPackReader reader(path);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    // Bitwise equality, not near: the sidecar is the zero-pass replacement
    // for this exact computation.
    EXPECT_EQ(reader.row_squared_norm(i), data.row(i).squared_norm())
        << "row " << i;
  }
  for (std::size_t s = 0; s < reader.shard_count(); ++s) {
    double sum = 0;
    for (std::size_t r = 0; r < reader.shard_rows(s); ++r) {
      sum += data.row(reader.shard_begin(s) + r).squared_norm();
    }
    EXPECT_EQ(reader.shard_sq_norm_sum(s), sum) << "shard " << s;
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, F32PackRoundTripsThroughFloat) {
  const sparse::CsrMatrix data = small_data(120, 40);
  const std::string path = temp_path("f32.issp");
  io::write_shardpack(path, data,
                      {.shard_rows = 48, .values = io::PackValueKind::kF32});
  const io::ShardPackReader reader(path);
  EXPECT_EQ(reader.value_kind(), io::PackValueKind::kF32);
  std::vector<std::size_t> row_ptr;
  std::vector<sparse::index_t> col_idx;
  std::vector<sparse::value_t> values;
  std::vector<sparse::value_t> labels;
  for (std::size_t s = 0; s < reader.shard_count(); ++s) {
    reader.decode_shard(s, row_ptr, col_idx, values, labels);
    const std::size_t base = reader.shard_begin(s);
    for (std::size_t r = 0; r < reader.shard_rows(s); ++r) {
      const auto want = data.row(base + r);
      for (std::size_t k = 0; k < want.indices().size(); ++k) {
        // The decode widens float back to double: exact float round-trip.
        EXPECT_EQ(values[row_ptr[r] + k],
                  static_cast<double>(static_cast<float>(want.value(k))));
      }
      // Labels stay f64 in every pack kind.
      EXPECT_EQ(labels[r], data.label(base + r));
    }
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, SniffDetectsPacks) {
  const sparse::CsrMatrix data = small_data(40, 16);
  const std::string pack = temp_path("sniff.issp");
  const std::string text = temp_path("sniff.txt");
  io::write_shardpack(pack, data);
  spit(text, {'1', ' ', '3', ':', '1', '\n'});
  EXPECT_TRUE(io::is_shardpack_file(pack));
  EXPECT_FALSE(io::is_shardpack_file(text));
  EXPECT_FALSE(io::is_shardpack_file("/nonexistent/nowhere.issp"));
  std::remove(pack.c_str());
  std::remove(text.c_str());
}

TEST(ShardPackFormat, MissingFileNamesThePath) {
  try {
    const io::ShardPackReader reader("/nonexistent/nowhere.issp");
    FAIL() << "expected ShardPackError";
  } catch (const io::ShardPackError& e) {
    EXPECT_NE(std::string(e.what()).find("nowhere.issp"), std::string::npos);
  }
}

TEST(ShardPackFormat, WrongMagicIsRefused) {
  const std::string path = temp_path("magic.issp");
  io::write_shardpack(path, small_data(60, 20));
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW((void)io::ShardPackReader(path), io::ShardPackError);
  std::remove(path.c_str());
}

TEST(ShardPackFormat, FutureVersionIsRefused) {
  const std::string path = temp_path("version.issp");
  io::write_shardpack(path, small_data(60, 20));
  std::vector<char> bytes = slurp(path);
  bytes[4] = 99;  // little-endian u32 version right after the magic
  spit(path, bytes);
  try {
    const io::ShardPackReader reader(path);
    FAIL() << "expected ShardPackError";
  } catch (const io::ShardPackError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, FlippedMetadataByteIsRejectedAtOpen) {
  const std::string path = temp_path("metacorrupt.issp");
  io::write_shardpack(path, small_data(90, 24), {.shard_rows = 32});
  const std::vector<char> pristine = slurp(path);
  // Every byte of the metadata region (header + directory + sidecars) is
  // CRC-covered; flip a few spread across it.
  for (const std::size_t at : {std::size_t{9}, std::size_t{40},
                               std::size_t{80}, std::size_t{160}}) {
    ASSERT_LT(at, pristine.size());
    std::vector<char> bytes = pristine;
    bytes[at] = static_cast<char>(bytes[at] ^ 0x20);
    spit(path, bytes);
    EXPECT_THROW((void)io::ShardPackReader(path), io::ShardPackError)
        << "flipped metadata byte " << at << " was accepted";
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, FlippedBlockByteIsRejectedAtDecode) {
  const std::string path = temp_path("blockcorrupt.issp");
  const sparse::CsrMatrix data = small_data(90, 24);
  io::write_shardpack(path, data, {.shard_rows = 32});
  std::vector<char> bytes = slurp(path);
  // Flip a byte deep in the last shard's payload: open-time metadata checks
  // must still pass, the per-shard CRC must catch it on first decode.
  bytes[bytes.size() - 16] =
      static_cast<char>(bytes[bytes.size() - 16] ^ 0x40);
  spit(path, bytes);
  const io::ShardPackReader reader(path);
  std::vector<std::size_t> row_ptr;
  std::vector<sparse::index_t> col_idx;
  std::vector<sparse::value_t> values;
  std::vector<sparse::value_t> labels;
  // Clean shards still decode.
  reader.decode_shard(0, row_ptr, col_idx, values, labels);
  try {
    reader.decode_shard(reader.shard_count() - 1, row_ptr, col_idx, values,
                        labels);
    FAIL() << "expected ShardPackError";
  } catch (const io::ShardPackError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CRC"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, TruncationIsRejectedAtEveryLength) {
  const std::string path = temp_path("truncated.issp");
  io::write_shardpack(path, small_data(90, 24), {.shard_rows = 32});
  const std::vector<char> bytes = slurp(path);
  // A kill mid-copy can leave any prefix; every one must fail at open (a
  // stride keeps the loop fast, the endpoints cover the degenerate cases).
  for (std::size_t keep = 0; keep < bytes.size();
       keep += (keep < 80 ? 1 : 37)) {
    spit(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_THROW((void)io::ShardPackReader(path), io::ShardPackError)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(ShardPackFormat, TrailingGarbageIsRejected) {
  const std::string path = temp_path("trailing.issp");
  io::write_shardpack(path, small_data(60, 20));
  std::vector<char> bytes = slurp(path);
  bytes.push_back('\0');
  spit(path, bytes);
  // file_bytes in the header pins the exact length; longer is as corrupt
  // as shorter.
  EXPECT_THROW((void)io::ShardPackReader(path), io::ShardPackError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// PrefetchAutotuner policy, driven with synthetic per-epoch deltas.

data::CacheStats delta(std::uint64_t hits, std::uint64_t misses,
                       std::uint64_t issued, std::uint64_t races,
                       std::uint64_t wasted) {
  data::CacheStats d{};
  d.hits = hits;
  d.misses = misses;
  d.prefetch_issued = issued;
  d.prefetch_races = races;
  d.prefetch_wasted = wasted;
  return d;
}

TEST(PrefetchAutotuner, DeepensWhileDemandStillMisses) {
  data::PrefetchAutotuner tuner;
  EXPECT_EQ(tuner.depth(), 1u);
  // Misses every epoch: depth climbs one step per epoch up to capacity-1.
  EXPECT_EQ(tuner.update(delta(10, 5, 10, 0, 0), /*capacity_shards=*/6), 2u);
  EXPECT_EQ(tuner.update(delta(12, 3, 10, 0, 0), 6), 3u);
  EXPECT_EQ(tuner.update(delta(14, 1, 10, 0, 0), 6), 4u);
  EXPECT_EQ(tuner.update(delta(15, 1, 10, 0, 0), 6), 5u);
  EXPECT_EQ(tuner.update(delta(15, 1, 10, 0, 0), 6), 5u) << "capacity-1 cap";
  EXPECT_EQ(tuner.adjustments(), 4u);
}

TEST(PrefetchAutotuner, BacksOffOnWaste) {
  data::PrefetchAutotuner tuner;
  (void)tuner.update(delta(10, 5, 10, 0, 0), 8);
  (void)tuner.update(delta(10, 5, 10, 0, 0), 8);
  ASSERT_EQ(tuner.depth(), 3u);
  // More than waste_tolerance of the prefetches died unused: back off,
  // even though misses continue (waste wins the arbitration).
  EXPECT_EQ(tuner.update(delta(10, 2, 10, 0, 5), 8), 2u);
  EXPECT_EQ(tuner.update(delta(10, 2, 10, 0, 5), 8), 1u);
  EXPECT_EQ(tuner.update(delta(10, 2, 10, 0, 5), 8), 1u) << "floor at 1";
}

TEST(PrefetchAutotuner, DeepensOnRaces) {
  data::PrefetchAutotuner tuner;
  // No misses (single-flight absorbed them) but every second demand get
  // blocked on an in-flight prefetch: I/O is late, look further ahead.
  EXPECT_EQ(tuner.update(delta(10, 0, 10, 5, 0), 8), 2u);
}

TEST(PrefetchAutotuner, SteadyStateHoldsDepth) {
  data::PrefetchAutotuner tuner;
  (void)tuner.update(delta(10, 5, 10, 0, 0), 8);
  ASSERT_EQ(tuner.depth(), 2u);
  // All hits, no races, no waste: nothing to fix.
  EXPECT_EQ(tuner.update(delta(20, 0, 10, 0, 0), 8), 2u);
  EXPECT_EQ(tuner.update(delta(20, 0, 10, 0, 0), 8), 2u);
  EXPECT_EQ(tuner.adjustments(), 1u);
}

TEST(PrefetchAutotuner, IdleWindowLeavesDepthAlone) {
  data::PrefetchAutotuner tuner;
  (void)tuner.update(delta(10, 5, 10, 0, 0), 8);
  const std::size_t depth = tuner.depth();
  EXPECT_EQ(tuner.update(delta(0, 0, 0, 0, 0), 8), depth);
}

TEST(PrefetchAutotuner, FutileRacingDisablesPrefetch) {
  data::PrefetchAutotuner tuner;
  // Nearly every prefetch raced a demand get (no spare core to decode on):
  // one severe epoch deepens as usual, a second proves futility and latches
  // prefetch off — depth 0, permanently.
  EXPECT_EQ(tuner.update(delta(10, 0, 10, 8, 0), 8), 2u);
  EXPECT_EQ(tuner.update(delta(10, 0, 10, 8, 0), 8), 0u);
  // The latch is sticky: later misses (inevitable at depth 0) must not
  // re-deepen, or the cache would oscillate off/on forever.
  EXPECT_EQ(tuner.update(delta(0, 10, 0, 0, 0), 8), 0u);
  EXPECT_EQ(tuner.update(delta(10, 5, 0, 0, 0), 8), 0u);
}

TEST(PrefetchAutotuner, RecoveredRacingResetsTheFutilityStreak) {
  data::PrefetchAutotuner tuner;
  // One severe epoch followed by a healthy one: the streak resets, so a
  // single bad epoch later still does not disable prefetch.
  (void)tuner.update(delta(10, 0, 10, 8, 0), 8);
  (void)tuner.update(delta(20, 0, 10, 0, 0), 8);
  EXPECT_GE(tuner.update(delta(10, 0, 10, 8, 0), 8), 1u);
}

TEST(PrefetchAutotuner, TinyCacheNeverLooksAhead) {
  data::PrefetchAutotuner tuner;
  // capacity 1: the current shard occupies the only slot; lookahead would
  // just thrash. Depth pins at 1 no matter how many misses.
  EXPECT_EQ(tuner.update(delta(0, 10, 10, 0, 0), 1), 1u);
  EXPECT_EQ(tuner.update(delta(0, 10, 10, 0, 0), 1), 1u);
}

}  // namespace
}  // namespace isasgd
