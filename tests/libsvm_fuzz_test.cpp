// Property/fuzz coverage for the LibSVM parser: exact line numbers on every
// malformed input, tolerance for the benign irregularities real files
// contain, a libsvm→binary→libsvm round-trip identity, and a deterministic
// mutation fuzzer asserting the parser either succeeds or throws
// std::runtime_error — never crashes, never silently mangles.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "io/binary.hpp"
#include "io/libsvm.hpp"
#include "util/rng.hpp"

namespace isasgd::io {
namespace {

sparse::CsrMatrix parse(const std::string& text,
                        LibsvmReadOptions options = {}) {
  std::istringstream in(text);
  return read_libsvm(in, options);
}

/// Expects a parse failure whose message names 1-based line `line_no`.
void expect_error_at_line(const std::string& text, std::size_t line_no,
                          const std::string& detail = "") {
  try {
    (void)parse(text);
    FAIL() << "expected a parse error for: " << text;
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("line " + std::to_string(line_no)),
              std::string::npos)
        << "message '" << message << "' does not name line " << line_no;
    if (!detail.empty()) {
      EXPECT_NE(message.find(detail), std::string::npos)
          << "message '" << message << "' lacks '" << detail << "'";
    }
  }
}

TEST(LibsvmErrors, MalformedLabelNamesTheLine) {
  expect_error_at_line("abc 1:2\n", 1, "label");
  // Blank and comment lines still advance the reported line number.
  expect_error_at_line("1 1:2\n# comment\n\nnot-a-label 1:2\n", 4, "label");
}

TEST(LibsvmErrors, MalformedFeatureNamesTheLine) {
  expect_error_at_line("1 1:2\n-1 x:3\n", 2, "feature index");
  expect_error_at_line("1 1:2\n-1 3\n", 2, "':'");
  expect_error_at_line("-1 3:\n", 1, "feature value");
  expect_error_at_line("1 2:1 0:5\n", 1, "1-based");
}

TEST(LibsvmErrors, HugeFeatureIndexIsRejectedNotWrapped) {
  // 2^32 would silently wrap to column 0 through a uint32 narrowing cast;
  // both the just-too-big and the absurdly-big spellings must fail loudly.
  expect_error_at_line("1 4294967297:1\n", 1, "out of range");
  expect_error_at_line("1 1:2\n1 99999999999999999999:1\n", 2, "out of range");
}

TEST(LibsvmErrors, MessageCarriesTheOffendingLineSnippet) {
  try {
    (void)parse("+1 7:bad_value\n");
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("7:bad_value"), std::string::npos)
        << e.what();
  }
}

TEST(LibsvmErrors, LineNumberOffsetShiftsReportedLines) {
  LibsvmReadOptions options;
  options.line_number_offset = 100;
  std::istringstream in("1 1:x\n");
  try {
    (void)read_libsvm(in, options);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 101"), std::string::npos)
        << e.what();
  }
}

TEST(LibsvmTolerance, BenignIrregularitiesParse) {
  // Trailing whitespace, \r\n, blank lines, comments, label-only rows,
  // out-of-order and duplicate indices (duplicates merge additively).
  const auto data = parse(
      "1 3:1.5 1:2.0   \t\r\n"
      "\n"
      "# full-line comment\n"
      "-1\n"
      "-1 2:1 2:0.5  # trailing comment\n");
  ASSERT_EQ(data.rows(), 3u);
  EXPECT_EQ(data.row(0).nnz(), 2u);
  EXPECT_EQ(data.row(0).index(0), 0u);  // 1-based 1 → column 0
  EXPECT_EQ(data.row(0).value(0), 2.0);
  EXPECT_EQ(data.row(0).value(1), 1.5);
  EXPECT_EQ(data.row(1).nnz(), 0u);  // empty row, label only
  ASSERT_EQ(data.row(2).nnz(), 1u);
  EXPECT_EQ(data.row(2).value(0), 1.5);  // 1 + 0.5 merged
}

TEST(LibsvmRoundTrip, LibsvmBinaryLibsvmIsIdentity) {
  util::Rng rng(404);
  std::ostringstream original;
  for (int i = 0; i < 50; ++i) {
    original << (util::uniform_double(rng) < 0.5 ? "-1" : "1");
    std::size_t col = 0;
    const std::size_t nnz = util::uniform_index(rng, 6);
    for (std::size_t k = 0; k < nnz; ++k) {
      col += 1 + util::uniform_index(rng, 40);
      // Awkward doubles on purpose: %.17g must survive both trips.
      original << ' ' << col << ':'
               << (util::uniform_double(rng) - 0.5) / 3.0;
    }
    original << '\n';
  }
  const auto first = parse(original.str());

  std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
  write_dataset_binary(binary, first);
  const auto second = read_dataset_binary(binary);

  std::ostringstream text;
  write_libsvm(text, second);
  const auto third = parse(text.str());

  ASSERT_EQ(third.rows(), first.rows());
  ASSERT_EQ(third.nnz(), first.nnz());
  EXPECT_EQ(third.row_ptr(), first.row_ptr());
  EXPECT_EQ(third.col_idx(), first.col_idx());
  EXPECT_EQ(third.values(), first.values());  // exact, not approximate
  EXPECT_EQ(third.labels(), first.labels());

  // And the serialised text itself is a fixed point after one trip.
  std::ostringstream again;
  write_libsvm(again, third);
  EXPECT_EQ(again.str(), text.str());
}

TEST(LibsvmIndex, AgreesWithMaterialisingReader) {
  const std::string text =
      "# header comment\n"
      "1 1:1 5:2\n"
      "0 2:1\n"
      "\n"
      "1 7:3 8:1 9:4\n"
      "0 1:5\n";
  std::istringstream for_index(text);
  const LibsvmIndex index = index_libsvm(for_index, /*rows_per_shard=*/2);
  const auto data = parse(text);
  EXPECT_EQ(index.rows, data.rows());
  EXPECT_EQ(index.dim, data.dim());
  EXPECT_EQ(index.nnz, data.nnz());
  ASSERT_EQ(index.shard_rows.size(), 2u);
  EXPECT_EQ(index.shard_rows[0], 2u);
  EXPECT_EQ(index.shard_rows[1], 2u);
  EXPECT_EQ((std::vector<double>{0.0, 1.0}), index.distinct_labels);
  // Seeking to a recorded offset and reading shard_rows rows reproduces the
  // shard exactly.
  std::istringstream seeked(text);
  seeked.seekg(static_cast<std::streamoff>(index.shard_offset[1]));
  LibsvmReadOptions options;
  options.max_rows = index.shard_rows[1];
  options.dim_hint = index.dim;
  options.normalize_binary_labels = false;
  const auto shard = read_libsvm(seeked, options);
  ASSERT_EQ(shard.rows(), 2u);
  EXPECT_EQ(shard.row(0).value(0), 3.0);
  EXPECT_EQ(shard.label(1), 0.0);
}

TEST(LibsvmIndex, CountsMergedNotRawNonzeros) {
  // read_libsvm folds duplicate indices additively into one entry; the
  // index must report that merged shape, or a StreamingSource's nnz() would
  // disagree with the shards it serves.
  const std::string text = "1 2:1 2:0.5 3:1\n-1 4:2 4:1 4:1\n";
  std::istringstream for_index(text);
  const LibsvmIndex index = index_libsvm(for_index, 8);
  const auto data = parse(text);
  EXPECT_EQ(data.nnz(), 3u);
  EXPECT_EQ(index.nnz, data.nnz());
}

TEST(LibsvmFuzz, MutatedInputsNeverCrashAndErrorsNameALine) {
  const std::string seed_text =
      "1 1:0.5 3:1.25 9:-2\n"
      "-1 2:0.125 4:8\n"
      "1 5:3.5\n"
      "-1 1:-1 6:0.75 7:2.5 8:-0.25\n";
  util::Rng rng(20260728);
  const std::string alphabet = "0123456789.:+-e \t#\nx";
  std::size_t parsed = 0, rejected = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::string mutated = seed_text;
    const std::size_t edits = 1 + util::uniform_index(rng, 4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t at = util::uniform_index(rng, mutated.size());
      const char c = alphabet[util::uniform_index(rng, alphabet.size())];
      switch (util::uniform_index(rng, 3)) {
        case 0: mutated[at] = c; break;
        case 1: mutated.insert(at, 1, c); break;
        default: mutated.erase(at, 1); break;
      }
    }
    try {
      const auto data = parse(mutated);
      // Whatever survived must be structurally sound.
      EXPECT_LE(data.rows(), 8u);
      EXPECT_EQ(data.row_ptr().size(), data.rows() + 1);
      ++parsed;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
          << e.what();
      ++rejected;
    }
  }
  // The mutation distribution must actually exercise both outcomes.
  EXPECT_GT(parsed, 50u);
  EXPECT_GT(rejected, 50u);
}

}  // namespace
}  // namespace isasgd::io
