#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "simulate/delayed_sgd.hpp"
#include "solvers/sgd.hpp"
#include "util/rng.hpp"

namespace isasgd::simulate {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  explicit Fixture(std::size_t rows = 1200, std::size_t dim = 120,
                   double nnz = 12)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = nnz;
          spec.target_psi = 0.9;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}
};

solvers::SolverOptions base_options(std::size_t epochs = 6,
                                    double lambda = 0.5) {
  solvers::SolverOptions opt;
  opt.step_size = lambda;
  opt.epochs = epochs;
  opt.seed = 77;
  opt.keep_final_model = true;
  return opt;
}

// ---------- DelayModel ----------

TEST(DelayModel, NoneIsAlwaysZero) {
  util::Rng rng(1);
  const DelayModel m = DelayModel::none();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.draw(rng), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(DelayModel, FixedIsConstant) {
  util::Rng rng(2);
  const DelayModel m = DelayModel::fixed(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(m.draw(rng), 17u);
  EXPECT_DOUBLE_EQ(m.mean(), 17.0);
}

TEST(DelayModel, UniformStaysInRangeWithMatchingMean) {
  util::Rng rng(3);
  const DelayModel m = DelayModel::uniform(16);
  double sum = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t d = m.draw(rng);
    ASSERT_LE(d, 16u);
    sum += static_cast<double>(d);
  }
  EXPECT_NEAR(sum / kDraws, 8.0, 0.1);
  EXPECT_DOUBLE_EQ(m.mean(), 8.0);
}

TEST(DelayModel, GeometricHasRequestedMean) {
  util::Rng rng(4);
  const DelayModel m = DelayModel::geometric(10);
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(m.draw(rng));
  EXPECT_NEAR(sum / kDraws, 10.0, 0.25);
  EXPECT_DOUBLE_EQ(m.mean(), 10.0);
}

TEST(DelayModel, GeometricZeroMeanIsZero) {
  util::Rng rng(5);
  const DelayModel m = DelayModel::geometric(0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(m.draw(rng), 0u);
}

TEST(DelayModel, Names) {
  EXPECT_EQ(DelayModel::fixed(8).name(), "fixed(8)");
  EXPECT_EQ(DelayModel::none().name(), "none(0)");
  EXPECT_EQ(delay_kind_name(DelayKind::kGeometric), "geometric");
}

// ---------- Delayed SGD: zero-delay equivalence ----------

TEST(DelayedSgd, ZeroDelayIsBitwiseSerialSgd) {
  // The simulator with DelayModel::none() must reproduce run_sgd exactly:
  // same sampling stream, same update order, same floating-point result.
  Fixture f;
  const auto opt = base_options();
  const solvers::Trace serial =
      solvers::run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  DelayReport report;
  const solvers::Trace sim =
      run_delayed_sgd(f.data, f.loss, opt, DelayModel::none(),
                      /*use_importance=*/false, f.evaluator.as_fn(), &report);
  ASSERT_EQ(serial.final_model.size(), sim.final_model.size());
  for (std::size_t j = 0; j < serial.final_model.size(); ++j) {
    ASSERT_EQ(serial.final_model[j], sim.final_model[j]) << "coord " << j;
  }
  EXPECT_DOUBLE_EQ(report.mean_applied_delay, 0.0);
  EXPECT_EQ(report.flushed_at_fences, 0u);
  EXPECT_EQ(report.max_in_flight, 1u);  // each update applied the same step
}

TEST(DelayedSgd, ZeroDelayConvergesWithImportance) {
  Fixture f;
  const auto opt = base_options();
  const solvers::Trace t =
      run_delayed_sgd(f.data, f.loss, opt, DelayModel::none(),
                      /*use_importance=*/true, f.evaluator.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.6 * t.points.front().rmse);
}

// ---------- Delayed SGD: staleness mechanics ----------

TEST(DelayedSgd, FixedDelayReportedAccurately) {
  Fixture f(600, 80, 8);
  const auto opt = base_options(3, 0.1);
  DelayReport report;
  (void)run_delayed_sgd(f.data, f.loss, opt, DelayModel::fixed(32),
                        /*use_importance=*/false, f.evaluator.as_fn(), &report);
  // Steady-state queue depth is τ+1 (the update computed this step plus the
  // τ still waiting); fence flushes shorten a few delays at epoch ends.
  EXPECT_EQ(report.max_in_flight, 33u);
  EXPECT_GT(report.mean_applied_delay, 28.0);
  EXPECT_LE(report.mean_applied_delay, 32.0);
  // τ updates pending at each of the 3 fences.
  EXPECT_EQ(report.flushed_at_fences, 3u * 32u);
}

TEST(DelayedSgd, QueueDrainedAtEveryFence) {
  Fixture f(500, 60, 6);
  const auto opt = base_options(2, 0.1);
  for (const DelayModel& m :
       {DelayModel::uniform(64), DelayModel::geometric(48)}) {
    DelayReport report;
    const solvers::Trace t = run_delayed_sgd(
        f.data, f.loss, opt, m, /*use_importance=*/false, f.evaluator.as_fn(),
        &report);
    // All n·epochs updates applied: trace exists and the model moved.
    EXPECT_LT(t.points.back().rmse, t.points.front().rmse);
    EXPECT_GT(report.flushed_at_fences, 0u);
  }
}

TEST(DelayedSgd, ModerateDelayBarelyHurts) {
  // Inside the Eq. 27 bound the perturbed iterates track serial SGD — the
  // paper's "nearly linear speedup" regime.
  Fixture f;
  const auto opt = base_options(6, 0.25);
  const double base =
      run_delayed_sgd(f.data, f.loss, opt, DelayModel::none(), false,
                      f.evaluator.as_fn())
          .points.back()
          .rmse;
  const double tau8 =
      run_delayed_sgd(f.data, f.loss, opt, DelayModel::fixed(8), false,
                      f.evaluator.as_fn())
          .points.back()
          .rmse;
  EXPECT_LT(tau8, base * 1.25);
}

/// Dense-overlap least-squares regime: every pair of rows shares support
/// (Δ̄ ≈ n) and the residual never vanishes, so Eq. 25's noise term δ scales
/// with λ²τ and the delayed recursion has a genuine instability threshold —
/// logistic loss cannot show this (its gradients decay as margins grow).
struct LeastSquaresFixture {
  sparse::CsrMatrix data;
  objectives::LeastSquaresLoss loss;
  Evaluator evaluator;

  LeastSquaresFixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 500;
          spec.dim = 30;
          spec.mean_row_nnz = 10;
          spec.smoothness_beta = 1.0;  // least-squares L_i = ‖x_i‖²
          spec.mean_lipschitz = 1.0;   // ‖x‖ ≈ 1
          spec.target_psi = 0.95;
          spec.label_noise = 0.1;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}
};

/// RMSE of the last trace point, mapping NaN/Inf (delay-driven blowup) to a
/// huge finite value so ordering assertions stay meaningful.
double final_rmse_or_huge(const solvers::Trace& t) {
  const double r = t.points.back().rmse;
  return std::isfinite(r) ? r : 1e30;
}

TEST(DelayedSgd, LargeDelayDegradesConvergence) {
  // Past the Eq. 27 bound the noise term dominates: at equal epochs a
  // heavily stale run ends with a clearly worse objective (Fig. 3c's shape,
  // which physical Hogwild on this machine cannot produce).
  LeastSquaresFixture f;
  auto opt = base_options(5, 0.5);
  const double base = final_rmse_or_huge(run_delayed_sgd(
      f.data, f.loss, opt, DelayModel::none(), false, f.evaluator.as_fn()));
  const double stale = final_rmse_or_huge(
      run_delayed_sgd(f.data, f.loss, opt, DelayModel::fixed(256), false,
                      f.evaluator.as_fn()));
  EXPECT_GT(stale, base * 1.05);
}

TEST(DelayedSgd, DegradationMonotoneInTau) {
  // Sweep τ: per-τ noise allowed, but the ends must order and the largest
  // delays must be no better than the moderate ones.
  LeastSquaresFixture f;
  auto opt = base_options(4, 0.5);
  std::vector<double> rmse;
  for (std::size_t tau : {0u, 32u, 128u, 512u}) {
    rmse.push_back(final_rmse_or_huge(
        run_delayed_sgd(f.data, f.loss, opt,
                        tau == 0 ? DelayModel::none() : DelayModel::fixed(tau),
                        false, f.evaluator.as_fn())));
  }
  EXPECT_LT(rmse.front(), rmse.back());
  EXPECT_LE(rmse[1], rmse[3] * 1.05);
}

TEST(DelayedSgd, ImportanceSamplingAtLeastAsRobustAsUniform) {
  // The paper's core claim at the simulator level: at equal injected τ,
  // IS-weighted delayed SGD ends no worse (within tolerance) than uniform.
  data::SyntheticSpec spec;
  spec.rows = 1500;
  spec.dim = 150;
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.80;  // meaningful L spread so IS differs from uniform
  spec.label_noise = 0.02;
  spec.difficulty_coupling = 2.0;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  Evaluator evaluator(data, loss, objectives::Regularization::none(), 4);
  auto opt = base_options(6, 0.5);
  const double uniform =
      run_delayed_sgd(data, loss, opt, DelayModel::fixed(128), false,
                      evaluator.as_fn())
          .points.back()
          .rmse;
  const double is =
      run_delayed_sgd(data, loss, opt, DelayModel::fixed(128), true,
                      evaluator.as_fn())
          .points.back()
          .rmse;
  EXPECT_LT(is, uniform * 1.10);
}

TEST(DelayedSgd, TraceShapeMatchesEpochCount) {
  Fixture f(300, 40, 6);
  const auto opt = base_options(4, 0.2);
  const solvers::Trace t = run_delayed_sgd(
      f.data, f.loss, opt, DelayModel::uniform(16), false, f.evaluator.as_fn());
  ASSERT_EQ(t.points.size(), 5u);  // epoch 0 + 4
  EXPECT_EQ(t.algorithm, "sim_asgd");
  for (std::size_t k = 1; k < t.points.size(); ++k) {
    EXPECT_GE(t.points[k].seconds, t.points[k - 1].seconds);
  }
}

}  // namespace
}  // namespace isasgd::simulate
