#include "solvers/model.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace isasgd::solvers {
namespace {

TEST(SharedModel, StartsAtZero) {
  SharedModel m(10);
  EXPECT_EQ(m.dim(), 10u);
  for (std::size_t j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(m.load(j), 0.0);
}

TEST(SharedModel, StoreAndLoad) {
  SharedModel m(3);
  m.store(1, 2.5);
  EXPECT_DOUBLE_EQ(m.load(1), 2.5);
  EXPECT_DOUBLE_EQ(m.load(0), 0.0);
}

TEST(SharedModel, AddBothPolicies) {
  SharedModel m(2);
  m.add(0, 1.5, UpdatePolicy::kWild);
  m.add(0, 1.5, UpdatePolicy::kWild);
  EXPECT_DOUBLE_EQ(m.load(0), 3.0);
  m.add(1, -2.0, UpdatePolicy::kAtomic);
  m.add(1, -2.0, UpdatePolicy::kAtomic);
  EXPECT_DOUBLE_EQ(m.load(1), -4.0);
}

TEST(SharedModel, SnapshotAndAssignRoundTrip) {
  SharedModel m(4);
  m.store(0, 1.0);
  m.store(3, -7.0);
  const auto snap = m.snapshot();
  EXPECT_EQ(snap, (std::vector<double>{1.0, 0.0, 0.0, -7.0}));
  SharedModel m2(4);
  m2.assign(snap);
  EXPECT_DOUBLE_EQ(m2.load(3), -7.0);
}

TEST(SharedModel, AssignRejectsWrongSize) {
  SharedModel m(2);
  EXPECT_THROW(m.assign(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(SharedModel, ResetZeroes) {
  SharedModel m(3);
  m.store(2, 9.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.load(2), 0.0);
}

TEST(SharedModel, SparseDotUsesStoredValues) {
  SharedModel m(5);
  m.store(1, 2.0);
  m.store(4, 3.0);
  sparse::SparseVector x({1, 4}, {10.0, 100.0});
  EXPECT_DOUBLE_EQ(m.sparse_dot(x.view()), 2.0 * 10.0 + 3.0 * 100.0);
}

TEST(SharedModel, AtomicAddsAreExactUnderContention) {
  // With kAtomic, no update may be lost: 8 threads × 10000 increments of the
  // same coordinate must sum exactly.
  SharedModel m(1);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        m.add(0, 1.0, UpdatePolicy::kAtomic);
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_DOUBLE_EQ(m.load(0), double(kThreads) * kIncrements);
}

TEST(SharedModel, WildAddsMayLoseButStayBounded) {
  // With kWild, lost updates are allowed (that is Hogwild's bargain); the
  // result must still land in (0, total] and be a plausible partial sum.
  SharedModel m(1);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        m.add(0, 1.0, UpdatePolicy::kWild);
      }
    });
  }
  for (auto& t : pool) t.join();
  const double v = m.load(0);
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, double(kThreads) * kIncrements);
  // At least one thread's worth of updates must have landed.
  EXPECT_GE(v, double(kIncrements));
}

TEST(SharedModel, DisjointWildWritesAreExact) {
  // Threads touching disjoint coordinates race on nothing; even kWild must
  // be exact — this is the sparse-data regime Hogwild's analysis assumes.
  SharedModel m(8);
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < 8; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 5000; ++i) m.add(t, 1.0, UpdatePolicy::kWild);
    });
  }
  for (auto& t : pool) t.join();
  for (std::size_t j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(m.load(j), 5000.0);
}

TEST(SharedModel, SpinlockStripesAreCacheLinePadded) {
  // The kStriped/kLocked ablations measure lock *policy*; adjacent stripes
  // sharing a cache line would add false-sharing noise to that measurement.
  // Runtime counterpart of model.hpp's static_asserts: stripe stride and
  // base alignment both honour the cache line.
  using Stripe = util::CachePadded<util::Spinlock>;
  EXPECT_EQ(sizeof(Stripe), util::kCacheLineSize);
  EXPECT_EQ(alignof(Stripe), util::kCacheLineSize);
  std::vector<Stripe> stripes(4);
  const auto base = reinterpret_cast<std::uintptr_t>(stripes.data());
  EXPECT_EQ(base % util::kCacheLineSize, 0u);
  for (std::size_t i = 1; i < stripes.size(); ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(&stripes[i]);
    EXPECT_EQ(addr - base, i * util::kCacheLineSize);
  }
}

// (The AlgorithmNames round-trip test left with the removed Algorithm enum
// shim; registry_test.cpp covers name round-trips through SolverRegistry.)

}  // namespace
}  // namespace isasgd::solvers
