#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace isasgd::util {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Stopwatch, ResetRestartsFromZero) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Stopwatch, MillisMatchesSeconds) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.seconds();
  const double ms = sw.millis();
  EXPECT_NEAR(ms, s * 1e3, 5.0);
}

TEST(AccumulatingTimer, SumsOnlyClosedWindows) {
  AccumulatingTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  const double after_first = t.seconds();
  EXPECT_GE(after_first, 0.008);
  // Time outside a window must not accumulate.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_DOUBLE_EQ(t.seconds(), after_first);
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_GE(t.seconds(), after_first + 0.008);
}

TEST(AccumulatingTimer, StopWithoutStartIsNoOp) {
  AccumulatingTimer t;
  t.stop();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

TEST(AccumulatingTimer, DoubleStopCountsWindowOnce) {
  AccumulatingTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  const double once = t.seconds();
  t.stop();
  EXPECT_DOUBLE_EQ(t.seconds(), once);
}

TEST(AccumulatingTimer, ResetClearsTotal) {
  AccumulatingTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  t.stop();
  t.reset();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

}  // namespace
}  // namespace isasgd::util
