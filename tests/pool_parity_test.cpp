// Registry-path parity: pooled runs must reproduce the pre-refactor solver
// traces bit for bit under fixed seeds.
//
// Two independent guarantees are pinned here:
//   1. the persistent-pool epoch driver changes WHERE worker code runs, not
//      WHAT it computes — verified against in-test replicas of the
//      pre-refactor inner loops (frozen copies of the exact arithmetic the
//      seed solvers executed, subgradient call and all);
//   2. pool reuse across consecutive train() calls — and sharing one
//      ExecutionContext across Trainers — perturbs nothing and never
//      respawns threads (instrumentation counters).
#include <gtest/gtest.h>

#include <vector>

#include "core/execution.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "partition/balancer.hpp"
#include "solvers/schedule.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

sparse::CsrMatrix small_data() {
  data::SyntheticSpec spec;
  spec.rows = 300;
  spec.dim = 60;
  spec.mean_row_nnz = 8;
  return data::generate(spec);
}

solvers::SolverOptions base_options() {
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.2;
  opt.seed = 11;
  opt.keep_final_model = true;
  return opt;
}

const objectives::Regularization kReg = objectives::Regularization::l2(1e-3);

/// Frozen pre-refactor serial SGD inner loop (seed sgd.cpp, batch = 1):
/// margin accumulation and `g·x + reg.subgradient(w)` update, verbatim.
std::vector<double> reference_sgd_model(const sparse::CsrMatrix& data,
                                        const objectives::Objective& objective,
                                        const solvers::SolverOptions& opt) {
  const std::size_t n = data.rows();
  std::vector<double> w(data.dim(), 0.0);
  util::Rng rng(opt.seed);
  for (std::size_t epoch = 1; epoch <= opt.epochs; ++epoch) {
    const double step = solvers::epoch_step(opt, epoch);
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t i = util::uniform_index(rng, n);
      const auto x = data.row(i);
      double margin = 0;
      const auto idx = x.indices();
      const auto val = x.values();
      for (std::size_t j = 0; j < idx.size(); ++j) {
        margin += w[idx[j]] * val[j];
      }
      const double g = objective.gradient_scale(margin, data.label(i));
      const double batch_step = step / 1.0;
      for (std::size_t j = 0; j < idx.size(); ++j) {
        const std::size_t c = idx[j];
        w[c] -= batch_step * (g * val[j] + kReg.subgradient(w[c]));
      }
    }
  }
  return w;
}

/// Frozen pre-refactor ASGD inner loop at threads = 1 (seed asgd.cpp): one
/// shard covering all rows, the worker's relaxed load/add/store sequence
/// replayed on a plain vector (sequentially they are the same arithmetic).
std::vector<double> reference_asgd1_model(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& opt) {
  const std::size_t n = data.rows();
  std::vector<double> w(data.dim(), 0.0);
  const std::vector<std::uint32_t> order =
      partition::random_shuffle(n, opt.seed ^ 0xa5a5);
  util::Rng rng(util::derive_seed(opt.seed, 0));
  for (std::size_t epoch = 1; epoch <= opt.epochs; ++epoch) {
    const double lambda = solvers::epoch_step(opt, epoch);
    for (std::size_t u = 0; u < n; ++u) {
      const std::size_t i = order[util::uniform_index(rng, n)];
      const auto x = data.row(i);
      double margin = 0;
      const auto idx = x.indices();
      const auto val = x.values();
      for (std::size_t k = 0; k < idx.size(); ++k) {
        margin += w[idx[k]] * val[k];
      }
      const double g = objective.gradient_scale(margin, data.label(i));
      const double batch_step = lambda / 1.0;
      for (std::size_t j = 0; j < idx.size(); ++j) {
        const std::size_t c = idx[j];
        const double wc = w[c];
        w[c] = wc + -batch_step * (g * val[j] + kReg.subgradient(wc));
      }
    }
  }
  return w;
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    // EXPECT_EQ on doubles is exact comparison — bit-for-bit parity.
    EXPECT_EQ(a[j], b[j]) << "coordinate " << j;
  }
}

TEST(PoolParity, SgdRegistryPathMatchesPreRefactorReference) {
  const auto data = small_data();
  objectives::LogisticLoss loss;
  const auto trainer = core::TrainerBuilder()
                           .data(data)
                           .objective(loss)
                           .regularization(kReg)
                           .eval_threads(1)
                           .build();
  const auto trace = trainer.train("sgd", base_options());
  expect_bitwise_equal(trace.final_model,
                       reference_sgd_model(data, loss, base_options()));
}

TEST(PoolParity, AsgdSingleThreadMatchesPreRefactorReference) {
  const auto data = small_data();
  objectives::LogisticLoss loss;
  const auto trainer = core::TrainerBuilder()
                           .data(data)
                           .objective(loss)
                           .regularization(kReg)
                           .eval_threads(1)
                           .build();
  auto opt = base_options();
  opt.threads = 1;
  const auto trace = trainer.train("asgd", opt);
  expect_bitwise_equal(trace.final_model,
                       reference_asgd1_model(data, loss, base_options()));
}

TEST(PoolParity, PoolReuseAcrossTrainCallsPerturbsNothing) {
  const auto data = small_data();
  objectives::LogisticLoss loss;
  const auto trainer = core::TrainerBuilder()
                           .data(data)
                           .objective(loss)
                           .regularization(kReg)
                           .eval_threads(1)
                           .build();
  auto opt = base_options();
  opt.threads = 1;
  // Same Trainer (same pool), many solvers back to back: a warm pool must
  // give the identical trace a cold one did.
  for (const char* solver : {"sgd", "asgd", "is_asgd", "is_sgd", "svrg_sgd",
                             "sag", "saga"}) {
    const auto first = trainer.train(solver, opt);
    const auto second = trainer.train(solver, opt);
    ASSERT_EQ(first.points.size(), second.points.size()) << solver;
    for (std::size_t e = 0; e < first.points.size(); ++e) {
      EXPECT_EQ(first.points[e].rmse, second.points[e].rmse) << solver;
      EXPECT_EQ(first.points[e].objective, second.points[e].objective)
          << solver;
    }
    expect_bitwise_equal(first.final_model, second.final_model);
  }
}

TEST(PoolParity, NoThreadRespawnAcrossConsecutiveTrainCalls) {
  const auto data = small_data();
  objectives::LogisticLoss loss;
  auto execution = std::make_shared<core::ExecutionContext>(1);
  const auto trainer = core::TrainerBuilder()
                           .data(data)
                           .objective(loss)
                           .regularization(kReg)
                           .eval_threads(1)
                           .execution(execution)
                           .build();
  auto opt = base_options();
  opt.threads = 4;
  (void)trainer.train("asgd", opt);
  const auto spawned_after_warmup = execution->pool().threads_spawned();
  const auto dispatched_after_warmup = execution->pool().jobs_dispatched();
  EXPECT_EQ(spawned_after_warmup, 4u);
  (void)trainer.train("asgd", opt);
  (void)trainer.train("is_asgd", opt);
  (void)trainer.train("svrg_asgd", opt);
  // Work kept flowing through the pool…
  EXPECT_GT(execution->pool().jobs_dispatched(), dispatched_after_warmup);
  // …but not one new OS thread was created after warm-up.
  EXPECT_EQ(execution->pool().threads_spawned(), spawned_after_warmup);
}

TEST(PoolParity, SharedExecutionContextAcrossTrainers) {
  const auto data = small_data();
  objectives::LogisticLoss loss;
  auto execution = std::make_shared<core::ExecutionContext>(1);
  auto opt = base_options();
  opt.threads = 2;
  const auto t1 = core::TrainerBuilder()
                      .data(data)
                      .objective(loss)
                      .regularization(kReg)
                      .execution(execution)
                      .build();
  (void)t1.train("asgd", opt);
  const auto spawned = execution->pool().threads_spawned();
  const auto t2 = core::TrainerBuilder()
                      .data(data)
                      .objective(loss)
                      .execution(execution)
                      .build();
  (void)t2.train("asgd", opt);
  EXPECT_EQ(execution->pool().threads_spawned(), spawned);
}

}  // namespace
}  // namespace isasgd
