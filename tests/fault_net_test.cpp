// Fault-injection layer conformance: FaultPlan purity and determinism, the
// per-action behavior of FaultyEndpoint over BOTH backends (tcp and shm),
// identical seed ⇒ identical injected-event log, and the shm peer-death
// probe (a reader blocked on a ring whose peer process died gets a typed
// kClosed instead of spinning forever — including while the peer is an
// unreaped zombie, which is what a crashed PS worker looks like until the
// controller reaps it at a fence).
#include "net/fault.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace isasgd::net {
namespace {

std::string temp_prefix(const char* tag) {
  return "/tmp/isasgd_fault_test_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

std::string listen_address(const std::string& backend, const char* tag) {
  if (backend == "tcp") return "tcp://127.0.0.1:0";
  return "shm://" + temp_prefix(tag);
}

struct Pair {
  std::unique_ptr<Listener> listener;
  std::unique_ptr<Endpoint> server;
  std::unique_ptr<Endpoint> client;
};

Pair make_pair_over(const std::string& backend, const char* tag) {
  Pair pair;
  pair.listener = listen(listen_address(backend, tag));
  std::thread connector(
      [&] { pair.client = connect(pair.listener->address(), 5000); });
  pair.listener->set_accept_timeout(5000);
  pair.server = pair.listener->accept();
  connector.join();
  return pair;
}

// ---- FaultPlan: pure, deterministic, validated ------------------------------

TEST(FaultPlan, DecideIsAPureFunctionOfSeedStreamFrame) {
  FaultSpec spec;
  spec.seed = 42;
  spec.drop_rate = 0.2;
  spec.delay_rate = 0.2;
  spec.torn_rate = 0.1;
  spec.reset_rate = 0.1;
  const FaultPlan plan(spec);
  const FaultPlan twin(spec);
  // Any order, any repetition, two instances: always the same decision.
  for (std::uint64_t frame = 100; frame-- > 0;) {
    for (std::uint64_t stream : {std::uint64_t{0}, std::uint64_t{7},
                                 FaultPlan::stream_id(1, 3, 2)}) {
      const FaultDecision a = plan.decide(stream, frame);
      const FaultDecision b = plan.decide(stream, frame);
      const FaultDecision c = twin.decide(stream, frame);
      EXPECT_EQ(a.action, b.action);
      EXPECT_EQ(a.action, c.action);
      EXPECT_EQ(a.delay_ms, c.delay_ms);
    }
  }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  FaultSpec spec;
  spec.drop_rate = 0.5;
  spec.seed = 1;
  const FaultPlan a(spec);
  spec.seed = 2;
  const FaultPlan b(spec);
  int disagreements = 0;
  for (std::uint64_t f = 0; f < 200; ++f) {
    if (a.decide(0, f).action != b.decide(0, f).action) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultPlan, RatesPartitionTheFrames) {
  FaultSpec spec;
  spec.seed = 9;
  spec.drop_rate = 0.25;
  spec.delay_rate = 0.25;
  spec.torn_rate = 0.25;
  spec.reset_rate = 0.25;
  const FaultPlan plan(spec);
  int counts[5] = {0, 0, 0, 0, 0};
  constexpr int kFrames = 4000;
  for (std::uint64_t f = 0; f < kFrames; ++f) {
    const FaultDecision d = plan.decide(3, f);
    ++counts[static_cast<int>(d.action)];
    if (d.action == FaultAction::kDelay) {
      EXPECT_GE(d.delay_ms, 1u);
      EXPECT_LE(d.delay_ms, spec.max_delay_ms);
    }
  }
  EXPECT_EQ(counts[static_cast<int>(FaultAction::kNone)], 0);
  for (const FaultAction a : {FaultAction::kDrop, FaultAction::kDelay,
                              FaultAction::kTorn, FaultAction::kReset}) {
    const double share =
        static_cast<double>(counts[static_cast<int>(a)]) / kFrames;
    EXPECT_NEAR(share, 0.25, 0.05) << fault_action_name(a);
  }
}

TEST(FaultPlan, FirstFaultyFrameShieldsTheSetupPrefix) {
  FaultSpec spec;
  spec.seed = 5;
  spec.drop_rate = 1.0;
  spec.first_faulty_frame = 10;
  const FaultPlan plan(spec);
  for (std::uint64_t f = 0; f < 10; ++f) {
    EXPECT_EQ(plan.decide(0, f).action, FaultAction::kNone) << f;
  }
  EXPECT_EQ(plan.decide(0, 10).action, FaultAction::kDrop);
}

TEST(FaultSpec, ValidationNamesTheOffendingField) {
  const auto expect_throw = [](FaultSpec spec, const char* field) {
    try {
      spec.validate();
      FAIL() << field << " must be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  FaultSpec spec;
  spec.drop_rate = -0.1;
  expect_throw(spec, "drop_rate");
  spec = {};
  spec.delay_rate = 1.5;
  expect_throw(spec, "delay_rate");
  spec = {};
  spec.drop_rate = 0.6;
  spec.reset_rate = 0.6;
  expect_throw(spec, "rate");  // sum > 1
  spec = {};
  spec.delay_rate = 0.1;
  spec.max_delay_ms = 0;
  expect_throw(spec, "max_delay_ms");
}

// ---- FaultyEndpoint over both backends --------------------------------------

class FaultyEndpointSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultyEndpointSuite, DropSwallowsTheFrameThenDeliveryResumes) {
  Pair pair = make_pair_over(GetParam(), "drop");
  FaultSpec spec;
  spec.seed = 3;
  spec.drop_rate = 1.0;
  spec.max_faults_per_stream = 1;  // only the first frame is eaten
  auto log = std::make_shared<FaultLog>();
  auto faulty = wrap_faulty(std::move(pair.client),
                            std::make_shared<FaultPlan>(spec), 0, log);
  write_frame(*faulty, 1, "dropped");
  pair.server->set_io_timeout(100);
  try {
    (void)read_frame(*pair.server);
    FAIL() << "dropped frame must never arrive";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
  }
  pair.server->set_io_timeout(-1);
  std::thread sender([&] { write_frame(*faulty, 2, "delivered"); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.type, 2u);
  EXPECT_EQ(frame.payload, "delivered");
  const auto events = log->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, FaultAction::kDrop);
  EXPECT_EQ(events[0].frame, 0u);
}

TEST_P(FaultyEndpointSuite, DelayedFrameStillArrivesIntact) {
  Pair pair = make_pair_over(GetParam(), "delay");
  FaultSpec spec;
  spec.seed = 4;
  spec.delay_rate = 1.0;
  spec.max_delay_ms = 3;
  auto log = std::make_shared<FaultLog>();
  auto faulty = wrap_faulty(std::move(pair.client),
                            std::make_shared<FaultPlan>(spec), 0, log);
  std::thread sender([&] { write_frame(*faulty, 8, "late but whole"); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.type, 8u);
  EXPECT_EQ(frame.payload, "late but whole");
  const auto events = log->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].action, FaultAction::kDelay);
  EXPECT_GE(events[0].delay_ms, 1u);
  EXPECT_LE(events[0].delay_ms, 3u);
}

TEST_P(FaultyEndpointSuite, TornWriteIsKClosedOnBothSides) {
  Pair pair = make_pair_over(GetParam(), "torn");
  FaultSpec spec;
  spec.seed = 6;
  spec.torn_rate = 1.0;
  auto faulty = wrap_faulty(std::move(pair.client),
                            std::make_shared<FaultPlan>(spec), 0);
  std::thread sender([&] {
    try {
      write_frame(*faulty, 9, std::string(1000, 'x'));
      ADD_FAILURE() << "torn write must throw at the writer";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    }
    // The endpoint is dead from here on: every further send is kClosed.
    try {
      write_frame(*faulty, 10, "after death");
      ADD_FAILURE() << "dead endpoint must stay dead";
    } catch (const TransportError& e) {
      EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    }
  });
  try {
    (void)read_frame(*pair.server);
    FAIL() << "the reader must see a torn frame";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    EXPECT_NE(std::string(e.what()).find("torn frame"), std::string::npos)
        << e.what();
  }
  sender.join();
}

TEST_P(FaultyEndpointSuite, ResetClosesBeforeAnyBytes) {
  Pair pair = make_pair_over(GetParam(), "reset");
  FaultSpec spec;
  spec.seed = 11;
  spec.reset_rate = 1.0;
  auto faulty = wrap_faulty(std::move(pair.client),
                            std::make_shared<FaultPlan>(spec), 0);
  try {
    write_frame(*faulty, 1, "never sent");
    FAIL() << "reset must throw at the writer";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
  }
  // Nothing of the frame reached the wire; the peer sees a clean close.
  try {
    (void)read_frame(*pair.server);
    FAIL() << "the reader must see the close";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    EXPECT_EQ(std::string(e.what()).find("torn frame"), std::string::npos)
        << e.what();
  }
}

TEST_P(FaultyEndpointSuite, DisabledSpecIsAPassThrough) {
  Pair pair = make_pair_over(GetParam(), "clean");
  auto wrapped = wrap_faulty(std::move(pair.client),
                             std::make_shared<FaultPlan>(FaultSpec{}), 0);
  std::thread sender([&] { write_frame(*wrapped, 4, "clean"); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.payload, "clean");
}

TEST_P(FaultyEndpointSuite, IdenticalSeedGivesIdenticalFaultLog) {
  // The replayability contract of the whole layer: rerunning the same
  // scripted exchange under the same spec injects the same events at the
  // same frames, and exactly the un-dropped frames arrive.
  FaultSpec spec;
  spec.seed = 77;
  spec.drop_rate = 0.3;
  spec.delay_rate = 0.2;
  spec.max_delay_ms = 2;
  constexpr int kFrames = 40;
  std::vector<FaultEvent> first_log;
  std::vector<std::uint32_t> first_arrivals;
  for (int run = 0; run < 2; ++run) {
    Pair pair = make_pair_over(GetParam(), run == 0 ? "log0" : "log1");
    auto log = std::make_shared<FaultLog>();
    auto faulty =
        wrap_faulty(std::move(pair.client), std::make_shared<FaultPlan>(spec),
                    FaultPlan::stream_id(0, 2, 0), log);
    std::thread sender([&] {
      for (int i = 0; i < kFrames; ++i) {
        write_frame(*faulty, static_cast<std::uint32_t>(i),
                    std::to_string(i));
      }
      faulty->close();
    });
    std::vector<std::uint32_t> arrivals;
    try {
      for (;;) arrivals.push_back(read_frame(*pair.server).type);
    } catch (const TransportError& e) {
      EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    }
    sender.join();
    const auto events = log->events();
    EXPECT_GT(events.size(), 0u);
    // Arrivals are exactly the frames the log does not mark dropped.
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < kFrames; ++i) {
      bool dropped = false;
      for (const FaultEvent& ev : events) {
        if (ev.frame == i && ev.action == FaultAction::kDrop) dropped = true;
      }
      if (!dropped) expected.push_back(i);
    }
    EXPECT_EQ(arrivals, expected);
    if (run == 0) {
      first_log = events;
      first_arrivals = arrivals;
    } else {
      EXPECT_EQ(events, first_log);
      EXPECT_EQ(arrivals, first_arrivals);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, FaultyEndpointSuite,
                         ::testing::Values(std::string("tcp"),
                                           std::string("shm")),
                         [](const auto& info) { return info.param; });

// ---- shm peer-death detection ----------------------------------------------

TEST(ShmPeerDeath, ReaderUnblocksWithKClosedWhenPeerDiesMidFrame) {
  // The child connects, sends half a frame header, and dies without closing
  // — exactly what a crashed worker leaves behind. The parent does NOT reap
  // it before reading, so the probe must see through the zombie state.
  auto listener = listen("shm://" + temp_prefix("peerdeath"));
  const std::string address = listener->address();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    try {
      auto child = connect(address, 5000);
      char half[8];
      std::memset(half, 0, sizeof(half));
      child->send_bytes(half, sizeof(half));
      (void)child.release();  // leak: the ring must say nothing of the death
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  listener->set_accept_timeout(5000);
  auto server = listener->accept();
  server->set_io_timeout(10000);  // the probe must fire long before this
  try {
    (void)read_frame(*server);
    FAIL() << "reader must detect the dead peer";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    EXPECT_NE(std::string(e.what()).find("peer process died"),
              std::string::npos)
        << e.what();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

TEST(ShmPeerDeath, WriterUnblocksWhenPeerDiesWithFullRing) {
  // The child stops draining, so the parent's bulk send fills the 1 MB ring
  // and blocks; when the child then dies the send loop must throw kClosed
  // instead of spinning until the io timeout.
  auto listener = listen("shm://" + temp_prefix("peerfull"));
  const std::string address = listener->address();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    try {
      auto child = connect(address, 5000);
      // Read one byte as a handshake, then die without draining the rest.
      char byte = 0;
      child->recv_bytes(&byte, 1);
      (void)child.release();  // leak: no close flag, only the dead pid
    } catch (...) {
      ::_exit(1);
    }
    ::_exit(0);
  }
  listener->set_accept_timeout(5000);
  auto server = listener->accept();
  server->set_io_timeout(10000);
  const std::string big(std::size_t{4} << 20, 'y');  // 4 MB >> ring capacity
  try {
    server->send_bytes(big.data(), big.size());
    FAIL() << "writer must detect the dead peer";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    EXPECT_NE(std::string(e.what()).find("peer process died"),
              std::string::npos)
        << e.what();
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

}  // namespace
}  // namespace isasgd::net
