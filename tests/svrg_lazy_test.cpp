// Lazy-aggregated SVRG: exactness against the faithful schedule, the L1
// rejection contract, and the sparsity (cost) claim.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/solver.hpp"
#include "solvers/svrg_lazy.hpp"
#include "solvers/svrg_sgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  explicit Fixture(objectives::Regularization reg =
                       objectives::Regularization::none(),
                   std::size_t rows = 600, std::size_t dim = 300)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 8;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, reg, 4) {}
};

SolverOptions opts(objectives::Regularization reg, std::size_t epochs = 4) {
  SolverOptions o;
  o.epochs = epochs;
  o.step_size = 0.1;
  o.seed = 31;
  o.reg = reg;
  o.keep_final_model = true;
  return o;
}

void expect_models_close(const Trace& a, const Trace& b, double tol) {
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  double worst = 0;
  for (std::size_t j = 0; j < a.final_model.size(); ++j) {
    worst = std::max(worst, std::abs(a.final_model[j] - b.final_model[j]));
  }
  EXPECT_LE(worst, tol) << "max coordinate divergence";
}

TEST(SvrgLazy, MatchesFaithfulWithoutRegularizer) {
  const auto reg = objectives::Regularization::none();
  Fixture f(reg);
  const auto o = opts(reg);
  const Trace faithful = run_svrg_sgd(f.data, f.loss, o, f.evaluator.as_fn());
  const Trace lazy = run_svrg_sgd_lazy(f.data, f.loss, o, f.evaluator.as_fn());
  // Same iterates up to floating-point reassociation of m·λμ vs m additions.
  expect_models_close(faithful, lazy, 1e-9);
  EXPECT_NEAR(faithful.points.back().rmse, lazy.points.back().rmse, 1e-9);
}

TEST(SvrgLazy, MatchesFaithfulWithL2) {
  const auto reg = objectives::Regularization::l2(1e-3);
  Fixture f(reg);
  const auto o = opts(reg);
  const Trace faithful = run_svrg_sgd(f.data, f.loss, o, f.evaluator.as_fn());
  const Trace lazy = run_svrg_sgd_lazy(f.data, f.loss, o, f.evaluator.as_fn());
  // The geometric-sum closed form reassociates more aggressively.
  expect_models_close(faithful, lazy, 1e-7);
}

TEST(SvrgLazy, MatchesFaithfulAcrossSnapshotIntervals) {
  const auto reg = objectives::Regularization::l2(1e-4);
  Fixture f(reg);
  for (std::size_t interval : {1u, 2u, 3u}) {
    auto o = opts(reg, 6);
    o.svrg_snapshot_interval = interval;
    const Trace faithful =
        run_svrg_sgd(f.data, f.loss, o, f.evaluator.as_fn());
    const Trace lazy =
        run_svrg_sgd_lazy(f.data, f.loss, o, f.evaluator.as_fn());
    expect_models_close(faithful, lazy, 1e-7);
  }
}

TEST(SvrgLazy, MatchesFaithfulUnderDecaySchedule) {
  const auto reg = objectives::Regularization::none();
  Fixture f(reg);
  auto o = opts(reg, 5);
  o.step_decay = 0.8;  // λ changes per epoch; segments must re-read it
  const Trace faithful = run_svrg_sgd(f.data, f.loss, o, f.evaluator.as_fn());
  const Trace lazy = run_svrg_sgd_lazy(f.data, f.loss, o, f.evaluator.as_fn());
  expect_models_close(faithful, lazy, 1e-9);
}

TEST(SvrgLazy, RejectsL1) {
  const auto reg = objectives::Regularization::l1(1e-4);
  Fixture f(reg);
  EXPECT_THROW(
      (void)run_svrg_sgd_lazy(f.data, f.loss, opts(reg), f.evaluator.as_fn()),
      std::invalid_argument);
}

TEST(SvrgLazy, ConvergesLikeSvrg) {
  const auto reg = objectives::Regularization::none();
  Fixture f(reg, 1500, 400);
  auto o = opts(reg, 8);
  o.step_size = 0.3;
  const Trace lazy = run_svrg_sgd_lazy(f.data, f.loss, o, f.evaluator.as_fn());
  EXPECT_LT(lazy.points.back().rmse, 0.65 * lazy.points.front().rmse);
  EXPECT_EQ(lazy.algorithm, "SVRG-LAZY");
}

TEST(SvrgLazy, InnerLoopCostIsSparse) {
  // The §1.2 rebuttal measured: at d ≫ n·nnz the lazy schedule's epoch is
  // far cheaper than the faithful dense one (which pays n·d per epoch).
  const auto reg = objectives::Regularization::none();
  data::SyntheticSpec spec;
  spec.rows = 300;
  spec.dim = 60000;  // dense pass = 1.8e7 coord-ops/epoch vs ~2.4e3 sparse
  spec.mean_row_nnz = 8;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  Evaluator ev(data, loss, reg, 4);
  auto o = opts(reg, 2);
  o.keep_final_model = false;
  const Trace faithful = run_svrg_sgd(data, loss, o, ev.as_fn());
  const Trace lazy = run_svrg_sgd_lazy(data, loss, o, ev.as_fn());
  EXPECT_LT(lazy.train_seconds * 5, faithful.train_seconds);
}

TEST(SvrgLazy, AvailableThroughTrainerFacade) {
  const Solver* s = SolverRegistry::instance().find("svrg_lazy");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "SVRG-LAZY");
}

}  // namespace
}  // namespace isasgd::solvers
