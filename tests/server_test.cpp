// Service transport + protocol hardening regressions (ISSUE 8 satellites):
//
//   * a client that disconnects before its response lands must not kill the
//     daemon (SIGPIPE → MSG_NOSIGNAL + per-connection EPIPE handling);
//   * a client that connects and sends nothing must not wedge the
//     single-threaded accept loop — the connection times out with a typed
//     `err timeout` and the next client is served;
//   * send_command honours a client-side timeout against a mute daemon;
//   * protocol numeric values reject anything std::stoull would quietly
//     accept-and-wrap: leading '-', '+', exponents, empty strings.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/execution.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/training_service.hpp"
#include "util/thread_pool.hpp"

namespace isasgd {
namespace {

std::string test_socket_path(const char* tag) {
  return "/tmp/isasgd_server_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// Raw AF_UNIX connect; returns the fd (or -1).
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// A daemon (service + handler + socket server) running on its own thread.
struct Daemon {
  service::TrainingService svc;
  service::ProtocolHandler handler{svc};
  service::SocketServer server;
  std::thread thread;

  explicit Daemon(const std::string& path, int io_timeout_ms = 300)
      : svc([] {
          service::TrainingService::Options options;
          options.max_concurrent = 1;
          options.execution = std::make_shared<core::ExecutionContext>(
              /*eval_threads=*/1, util::ThreadPool::Options{.max_workers = 1});
          return options;
        }()),
        server(path, handler, io_timeout_ms),
        thread([this] { server.run(); }) {}

  ~Daemon() {
    server.stop();
    thread.join();
  }
};

TEST(SocketServer, SurvivesClientDisconnectBeforeResponse) {
  const std::string path = test_socket_path("earlyclose");
  Daemon daemon(path);

  // Connect and close immediately: the server reads EOF (an empty request)
  // and then writes its response into a fully closed peer. Without
  // MSG_NOSIGNAL that write raises SIGPIPE and kills the whole process.
  for (int i = 0; i < 8; ++i) {
    const int fd = raw_connect(path);
    ASSERT_GE(fd, 0) << "connect " << path;
    ::close(fd);
  }
  // Also: send a full request, then vanish before the response.
  for (int i = 0; i < 8; ++i) {
    const int fd = raw_connect(path);
    ASSERT_GE(fd, 0);
    const char req[] = "ping\n";
    ASSERT_EQ(::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(req) - 1));
    ::close(fd);
  }

  // The daemon survived and still answers.
  EXPECT_EQ(service::send_command(path, "ping", /*timeout_ms=*/5000),
            "ok pong");
}

TEST(SocketServer, StalledClientTimesOutWithoutWedgingTheAcceptLoop) {
  const std::string path = test_socket_path("stall");
  Daemon daemon(path, /*io_timeout_ms=*/200);

  // Connect and send nothing. Pre-fix this wedged the daemon forever (the
  // accept loop sat in a blocking read); now the connection is timed out.
  const int mute = raw_connect(path);
  ASSERT_GE(mute, 0);

  const auto start = std::chrono::steady_clock::now();
  // The next request must be answered once the mute connection times out.
  EXPECT_EQ(service::send_command(path, "ping", /*timeout_ms=*/5000),
            "ok pong");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 4000) << "accept loop took too long to shed the stall";

  // The stalled client got the typed error line before its socket closed.
  char buf[64] = {};
  ssize_t n = ::recv(mute, buf, sizeof(buf) - 1, 0);
  EXPECT_GT(n, 0);
  if (n > 0) {
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)), "err timeout\n");
  }
  ::close(mute);
}

TEST(SocketServer, ClientSideTimeoutAgainstMuteServer) {
  // A listener that accepts and never responds: send_command must give up
  // with a timeout error instead of blocking forever.
  const std::string path = test_socket_path("muteserver");
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 4), 0);

  std::thread sink([&] {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn >= 0) {
      // Swallow the request, never answer, hold the socket open briefly.
      char buf[64];
      (void)::recv(conn, buf, sizeof(buf), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(1500));
      ::close(conn);
    }
  });

  try {
    (void)service::send_command(path, "ping", /*timeout_ms=*/200);
    FAIL() << "expected a timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos)
        << e.what();
  }
  sink.join();
  ::close(listen_fd);
  ::unlink(path.c_str());
}

// ---------- protocol numeric hardening ----------

struct ProtocolFixture {
  service::TrainingService svc;
  service::ProtocolHandler handler{svc};

  ProtocolFixture()
      : svc([] {
          service::TrainingService::Options options;
          options.max_concurrent = 1;
          options.execution = std::make_shared<core::ExecutionContext>(
              /*eval_threads=*/1, util::ThreadPool::Options{.max_workers = 1});
          return options;
        }()) {}
};

TEST(Protocol, RejectsNonCanonicalIntegersOnEveryNumericKey) {
  ProtocolFixture f;
  // Every unsigned key of the submit grammar, plus the id= of the lifecycle
  // verbs. "-1" must come back as a typed err — pre-fix std::stoull wrapped
  // it to 2^64−1 (epochs=-1 silently trained ~forever).
  const std::vector<std::string> u64_keys = {
      "epochs", "seed", "batch", "threads", "adaptive",
      "shard_rows", "cache_mb", "ckpt_every"};
  const std::vector<std::string> bad_values = {"-1", "+3", "1e3", "", " 7",
                                               "0x10", "nine"};
  for (const std::string& key : u64_keys) {
    for (const std::string& value : bad_values) {
      const std::string line =
          "submit solver=sgd data=/nonexistent " + key + "=" + value;
      const std::string response = f.handler.handle_line(line);
      ASSERT_EQ(response.rfind("err ", 0), 0u)
          << key << "=" << value << " → " << response;
      // Values that parse() can see at all produce the typed bad-integer
      // message (a value with whitespace splits into a malformed token and
      // gets parse()'s own typed error instead).
      if (value.find(' ') == std::string::npos) {
        EXPECT_NE(response.find("bad integer for " + key), std::string::npos)
            << key << "=" << value << " → " << response;
      }
    }
    // The fix must not over-reject: a plain digit string still parses (it
    // gets past integer parsing to the dataset-open failure).
    const std::string ok_response = f.handler.handle_line(
        "submit solver=sgd data=/nonexistent " + key + "=3");
    EXPECT_EQ(ok_response.find("bad integer"), std::string::npos)
        << key << "=3 → " << ok_response;
  }
  for (const std::string& verb :
       {std::string("status"), std::string("wait"), std::string("pause"),
        std::string("cancel")}) {
    const std::string response = f.handler.handle_line(verb + " id=-1");
    ASSERT_EQ(response.rfind("err ", 0), 0u) << response;
    EXPECT_NE(response.find("bad integer for id"), std::string::npos)
        << response;
  }
}

TEST(Protocol, FloatKeysStillAcceptSignsAndExponents) {
  ProtocolFixture f;
  // The digits-only rule is for the unsigned integer keys; float keys keep
  // full stod grammar ("-0.5" is a legitimate step decay direction to
  // reject at validation, not at parse).
  const std::string response = f.handler.handle_line(
      "submit solver=sgd data=/nonexistent step=5e-1 decay=0.93");
  EXPECT_EQ(response.find("bad number"), std::string::npos) << response;
}

}  // namespace
}  // namespace isasgd
