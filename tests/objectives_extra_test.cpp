// Tests for the extension objectives: smoothed hinge and Huber regression.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "objectives/huber.hpp"
#include "objectives/objective.hpp"
#include "objectives/smooth_hinge.hpp"

namespace isasgd::objectives {
namespace {

/// Central-difference check of gradient_scale against loss.
void expect_gradient_matches_loss(const Objective& obj, double margin,
                                  double y, double tol = 1e-6) {
  const double h = 1e-6;
  const double numeric =
      (obj.loss(margin + h, y) - obj.loss(margin - h, y)) / (2 * h);
  EXPECT_NEAR(obj.gradient_scale(margin, y), numeric, tol)
      << "margin=" << margin << " y=" << y;
}

// ---------- SmoothHingeLoss ----------

TEST(SmoothHinge, ZeroLossBeyondMargin) {
  SmoothHingeLoss loss(1.0);
  EXPECT_DOUBLE_EQ(loss.loss(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.loss(2.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.loss(-1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.gradient_scale(2.0, 1.0), 0.0);
}

TEST(SmoothHinge, LinearZoneMatchesShiftedHinge) {
  SmoothHingeLoss loss(1.0);
  // z = y·m ≤ 1 − γ = 0: φ = 1 − z − γ/2.
  EXPECT_NEAR(loss.loss(-2.0, 1.0), 1.0 + 2.0 - 0.5, 1e-12);
  EXPECT_NEAR(loss.gradient_scale(-2.0, 1.0), -1.0, 1e-12);
  EXPECT_NEAR(loss.gradient_scale(2.0, -1.0), 1.0, 1e-12);
}

TEST(SmoothHinge, QuadraticZoneValue) {
  SmoothHingeLoss loss(1.0);
  // z = 0.5 inside (0, 1): φ = (1 − z)²/(2γ) = 0.125.
  EXPECT_NEAR(loss.loss(0.5, 1.0), 0.125, 1e-12);
  EXPECT_NEAR(loss.gradient_scale(0.5, 1.0), -0.5, 1e-12);
}

TEST(SmoothHinge, ContinuousAtZoneBoundaries) {
  for (double gamma : {0.25, 1.0, 2.0}) {
    SmoothHingeLoss loss(gamma);
    const double eps = 1e-9;
    for (double y : {1.0, -1.0}) {
      // z = 1 boundary.
      const double m1 = y * 1.0;
      EXPECT_NEAR(loss.loss(m1 - y * eps, y), loss.loss(m1 + y * eps, y), 1e-8);
      // z = 1 − γ boundary.
      const double m2 = y * (1.0 - gamma);
      EXPECT_NEAR(loss.loss(m2 - y * eps, y), loss.loss(m2 + y * eps, y), 1e-8);
    }
  }
}

TEST(SmoothHinge, GradientMatchesNumericalDerivative) {
  SmoothHingeLoss loss(0.5);
  for (double m : {-3.0, -0.7, 0.2, 0.6, 0.9, 1.4}) {
    expect_gradient_matches_loss(loss, m, 1.0);
    expect_gradient_matches_loss(loss, m, -1.0);
  }
}

TEST(SmoothHinge, SmoothnessIsInverseGamma) {
  SmoothHingeLoss a(0.25), b(2.0);
  EXPECT_DOUBLE_EQ(a.smoothness(), 4.0);
  EXPECT_DOUBLE_EQ(b.smoothness(), 0.5);
}

TEST(SmoothHinge, GradientIsBetaLipschitz) {
  // |φ'(m1) − φ'(m2)| ≤ β·|m1 − m2| sampled over the kink region.
  SmoothHingeLoss loss(0.5);
  const double beta = loss.smoothness();
  for (double m = -1.0; m < 2.0; m += 0.01) {
    const double g1 = loss.gradient_scale(m, 1.0);
    const double g2 = loss.gradient_scale(m + 0.01, 1.0);
    EXPECT_LE(std::abs(g1 - g2), beta * 0.01 + 1e-12) << "m=" << m;
  }
}

TEST(SmoothHinge, RejectsNonPositiveGamma) {
  EXPECT_THROW(SmoothHingeLoss(0.0), std::invalid_argument);
  EXPECT_THROW(SmoothHingeLoss(-1.0), std::invalid_argument);
}

TEST(SmoothHinge, IsClassificationWithSignPrediction) {
  SmoothHingeLoss loss;
  EXPECT_TRUE(loss.is_classification());
  EXPECT_DOUBLE_EQ(loss.predict(0.3), 1.0);
  EXPECT_DOUBLE_EQ(loss.predict(-0.3), -1.0);
}

// ---------- HuberLoss ----------

TEST(Huber, QuadraticZoneMatchesLeastSquares) {
  HuberLoss loss(1.0);
  EXPECT_NEAR(loss.loss(0.5, 0.0), 0.125, 1e-12);
  EXPECT_NEAR(loss.gradient_scale(0.5, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(loss.loss(2.0, 2.5), 0.125, 1e-12);
}

TEST(Huber, LinearZoneClampsGradient) {
  HuberLoss loss(1.0);
  EXPECT_NEAR(loss.loss(3.0, 0.0), 1.0 * (3.0 - 0.5), 1e-12);
  EXPECT_NEAR(loss.gradient_scale(3.0, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(loss.gradient_scale(-3.0, 0.0), -1.0, 1e-12);
}

TEST(Huber, ContinuousAtTransition) {
  for (double delta : {0.5, 1.0, 3.0}) {
    HuberLoss loss(delta);
    const double eps = 1e-9;
    EXPECT_NEAR(loss.loss(delta - eps, 0.0), loss.loss(delta + eps, 0.0), 1e-8);
    EXPECT_NEAR(loss.loss(-delta - eps, 0.0), loss.loss(-delta + eps, 0.0),
                1e-8);
  }
}

TEST(Huber, GradientMatchesNumericalDerivative) {
  HuberLoss loss(0.8);
  for (double m : {-2.0, -0.7, 0.0, 0.5, 0.79, 0.81, 3.0}) {
    expect_gradient_matches_loss(loss, m, 0.0);
    expect_gradient_matches_loss(loss, m, 1.5);
  }
}

TEST(Huber, RejectsNonPositiveDelta) {
  EXPECT_THROW(HuberLoss(0.0), std::invalid_argument);
  EXPECT_THROW(HuberLoss(-2.0), std::invalid_argument);
}

TEST(Huber, IsRegression) {
  HuberLoss loss;
  EXPECT_FALSE(loss.is_classification());
}

TEST(Huber, GradientNormBoundIsDeltaTimesNorm) {
  HuberLoss loss(2.0);
  const std::vector<std::uint32_t> idx = {0, 3};
  const std::vector<double> val = {3.0, 4.0};  // ‖x‖ = 5
  sparse::SparseVectorView x({idx.data(), idx.size()},
                             {val.data(), val.size()});
  const double bound =
      loss.gradient_norm_bound(x, 0.0, 10.0, Regularization::none());
  EXPECT_NEAR(bound, 2.0 * 5.0, 1e-12);
  // And it is an actual bound on |φ'|·‖x‖ for any margin.
  for (double m : {-100.0, -1.0, 0.0, 1.0, 100.0}) {
    EXPECT_LE(std::abs(loss.gradient_scale(m, 0.0)) * 5.0, bound + 1e-12);
  }
}

// ---------- factory ----------

TEST(ObjectiveFactory, MakesExtensionObjectives) {
  EXPECT_EQ(make_objective("smooth_hinge")->name(), "smooth_hinge");
  EXPECT_EQ(make_objective("huber")->name(), "huber");
  EXPECT_THROW(make_objective("hinge"), std::invalid_argument);
}

}  // namespace
}  // namespace isasgd::objectives
