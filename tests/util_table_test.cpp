#include "util/table.hpp"

#include <gtest/gtest.h>

namespace isasgd::util {
namespace {

TEST(TablePrinter, RendersHeaderSeparatorAndRows) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Rows render in insertion order.
  EXPECT_LT(out.find("alpha"), out.find("22"));
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"x", "y"});
  t.add_row({"longvalue", "1"});
  t.add_row({"s", "22"});
  const std::string out = t.render();
  // Every rendered line is padded to the same width.
  std::vector<std::size_t> lengths;
  std::size_t start = 0;
  while (true) {
    const auto nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    lengths.push_back(nl - start);
    start = nl + 1;
  }
  ASSERT_EQ(lengths.size(), 4u);  // header, separator, two rows
  for (std::size_t len : lengths) EXPECT_EQ(len, lengths[0]);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only"}), std::invalid_argument);
}

TEST(TablePrinter, EmptyColumnsThrows) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::num(0.5), "0.5");
  EXPECT_EQ(TablePrinter::num(12345678.0), "1.235e+07");
  EXPECT_EQ(TablePrinter::num(0.0001), "0.0001");
}

TEST(TablePrinter, AddRowValuesMixesStringsAndNumbers) {
  TablePrinter t({"name", "psi", "rho"});
  t.add_row_values("news20", 0.972, 5e-4);
  EXPECT_EQ(t.row_count(), 1u);
  const std::string out = t.render();
  EXPECT_NE(out.find("0.972"), std::string::npos);
  EXPECT_NE(out.find("0.0005"), std::string::npos);
}

}  // namespace
}  // namespace isasgd::util
