#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace isasgd::util {
namespace {

CliParser make_parser() {
  CliParser cli("prog", "test program");
  cli.add_flag("epochs", "15", "number of epochs");
  cli.add_flag("lambda", "0.5", "step size");
  cli.add_flag("verbose", "false", "chatty output");
  cli.add_flag("threads", "4,8,16", "thread counts");
  cli.add_flag("name", "default", "a string");
  return cli;
}

int parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParser, DefaultsApplyWhenNotSupplied) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("epochs"), 15);
  EXPECT_DOUBLE_EQ(cli.get_double("lambda"), 0.5);
  EXPECT_FALSE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.supplied("epochs"));
}

TEST(CliParser, SpaceSeparatedForm) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--epochs", "30"}));
  EXPECT_EQ(cli.get_int("epochs"), 30);
  EXPECT_TRUE(cli.supplied("epochs"));
}

TEST(CliParser, EqualsForm) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--lambda=0.05"}));
  EXPECT_DOUBLE_EQ(cli.get_double("lambda"), 0.05);
}

TEST(CliParser, BareBooleanFlag) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose"}));
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(CliParser, BooleanFollowedByAnotherFlag) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "--epochs", "3"}));
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_EQ(cli.get_int("epochs"), 3);
}

TEST(CliParser, IntListParsing) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--threads", "1,2,32"}));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<int>{1, 2, 32}));
}

TEST(CliParser, IntListRejectsPartiallyNumericItems) {
  // Pre-fix, unchecked std::stoi read "--threads=4x,8" as {4, 8}: the typo'd
  // benchmark silently measured the wrong thread counts. Every item must now
  // consume its full token, like get_int/get_double already did.
  for (const char* bad : {"4x,8", "4,8x", "1,2.5", "1,two", "0x4,8", "4 ,8"}) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--threads", bad}));
    EXPECT_THROW(cli.get_int_list("threads"), std::invalid_argument) << bad;
  }
}

TEST(CliParser, IntListStillAcceptsNegativesAndSkipsEmptyItems) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--threads", "-1,,8,"}));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<int>{-1, 8}));
}

TEST(CliParser, IntListDefault) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int_list("threads"), (std::vector<int>{4, 8, 16}));
}

TEST(CliParser, UnknownFlagThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"--bogus", "1"}), std::invalid_argument);
}

TEST(CliParser, PositionalArgumentThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(parse(cli, {"positional"}), std::invalid_argument);
}

TEST(CliParser, NonNumericValueThrows) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--epochs", "abc"}));
  EXPECT_THROW(cli.get_int("epochs"), std::invalid_argument);
}

TEST(CliParser, NonBooleanValueThrows) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {"--verbose", "maybe"}));
  EXPECT_THROW(cli.get_bool("verbose"), std::invalid_argument);
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli = make_parser();
  EXPECT_FALSE(parse(cli, {"--help"}));
}

TEST(CliParser, DuplicateFlagRegistrationThrows) {
  CliParser cli = make_parser();
  EXPECT_THROW(cli.add_flag("epochs", "1", "dup"), std::logic_error);
}

TEST(CliParser, UnregisteredAccessorThrows) {
  CliParser cli = make_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_THROW(cli.get("nope"), std::logic_error);
}

TEST(CliParser, UsageMentionsFlagsAndDefaults) {
  CliParser cli = make_parser();
  const std::string usage = cli.usage();
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("default: 15"), std::string::npos);
}

TEST(CliParser, BoolAcceptsCommonSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--verbose", spelling}));
    EXPECT_TRUE(cli.get_bool("verbose")) << spelling;
  }
  for (const char* spelling : {"false", "0", "no", "off"}) {
    CliParser cli = make_parser();
    ASSERT_TRUE(parse(cli, {"--verbose", spelling}));
    EXPECT_FALSE(cli.get_bool("verbose")) << spelling;
  }
}

}  // namespace
}  // namespace isasgd::util
