#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "objectives/squared_hinge.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sgd.hpp"
#include "solvers/solver.hpp"
#include "solvers/svrg_asgd.hpp"
#include "solvers/svrg_sgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  explicit Fixture(std::size_t rows = 2000, std::size_t dim = 300,
                   double psi = 0.93)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 10;
          spec.target_psi = psi;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}

  SolverOptions options(std::size_t epochs = 8, double lambda = 0.5) const {
    SolverOptions opt;
    opt.step_size = lambda;
    opt.epochs = epochs;
    opt.threads = 4;
    opt.seed = 77;
    return opt;
  }
};

double initial_rmse(const Trace& t) { return t.points.front().rmse; }
double final_rmse(const Trace& t) { return t.points.back().rmse; }

// ---------- SGD ----------

TEST(Sgd, ReducesObjectiveSubstantially) {
  Fixture f;
  const Trace t = run_sgd(f.data, f.loss, f.options(), f.evaluator.as_fn());
  ASSERT_EQ(t.points.size(), 9u);  // epoch 0 + 8
  EXPECT_LT(final_rmse(t), 0.6 * initial_rmse(t));
  EXPECT_LT(t.best_error_rate(), 0.25);
}

TEST(Sgd, IsDeterministicPerSeed) {
  Fixture f(500, 100);
  const auto opt = f.options(3);
  const Trace a = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace b = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t e = 0; e < a.points.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.points[e].rmse, b.points[e].rmse);
  }
}

TEST(Sgd, EpochZeroRecordsInitialModel) {
  Fixture f(300, 100);
  const Trace t = run_sgd(f.data, f.loss, f.options(2), f.evaluator.as_fn());
  EXPECT_EQ(t.points[0].epoch, 0u);
  EXPECT_DOUBLE_EQ(t.points[0].seconds, 0.0);
  EXPECT_NEAR(t.points[0].rmse, std::sqrt(std::log(2.0)), 1e-9);
}

TEST(Sgd, StepDecayChangesTrajectory) {
  Fixture f(500, 100);
  auto opt = f.options(5);
  const Trace constant = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  opt.step_decay = 0.5;
  const Trace decayed = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NE(final_rmse(constant), final_rmse(decayed));
}

TEST(Sgd, L1RegularizationSparsifiesOrShrinksModel) {
  Fixture f(800, 150);
  auto opt = f.options(6, 0.2);
  Evaluator plain_eval(f.data, f.loss, objectives::Regularization::none(), 2);
  const Trace plain = run_sgd(f.data, f.loss, opt, plain_eval.as_fn());
  opt.reg = objectives::Regularization::l1(5e-3);
  Evaluator reg_eval(f.data, f.loss, opt.reg, 2);
  const Trace reg = run_sgd(f.data, f.loss, opt, reg_eval.as_fn());
  // Regularized run must behave differently and stay bounded.
  EXPECT_TRUE(std::isfinite(final_rmse(reg)));
  EXPECT_NE(final_rmse(plain), final_rmse(reg));
}

// ---------- IS-SGD ----------

TEST(IsSgd, ReducesObjectiveSubstantially) {
  Fixture f;
  const Trace t = run_is_sgd(f.data, f.loss, f.options(), f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.6 * initial_rmse(t));
  EXPECT_GT(t.setup_seconds, 0.0);
}

TEST(IsSgd, MatchesSgdQualityOnUniformImportance) {
  // With ψ = 1 (all L_i equal) IS degenerates to uniform sampling with unit
  // weights; quality must match plain SGD closely.
  Fixture f(1500, 200, /*psi=*/1.0);
  const auto opt = f.options(6);
  const Trace sgd = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace is = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NEAR(final_rmse(is), final_rmse(sgd), 0.05 * final_rmse(sgd) + 0.02);
}

TEST(IsSgd, ReshuffleModeAlsoConverges) {
  Fixture f(1000, 150);
  auto opt = f.options(6);
  opt.sequence_mode = SolverOptions::SequenceMode::kReshuffle;
  const Trace t = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

TEST(IsSgd, GradientBoundImportanceAlsoConverges) {
  Fixture f(1000, 150);
  auto opt = f.options(6);
  opt.importance = ImportanceKind::kGradientBound;
  const Trace t = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

// ---------- ASGD ----------

TEST(Asgd, ConvergesWithFourThreads) {
  Fixture f;
  const Trace t = run_asgd(f.data, f.loss, f.options(), f.evaluator.as_fn());
  EXPECT_EQ(t.threads, 4u);
  EXPECT_LT(final_rmse(t), 0.6 * initial_rmse(t));
}

TEST(Asgd, SingleThreadMatchesSgdQuality) {
  Fixture f(1500, 200);
  auto opt = f.options(6);
  opt.threads = 1;
  const Trace asgd = run_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace sgd = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NEAR(final_rmse(asgd), final_rmse(sgd),
              0.1 * final_rmse(sgd) + 0.02);
}

TEST(Asgd, AtomicPolicyAlsoConverges) {
  Fixture f(1000, 150);
  auto opt = f.options(6);
  opt.update_policy = UpdatePolicy::kAtomic;
  const Trace t = run_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

TEST(Asgd, ManyThreadsStillConverge) {
  Fixture f(2000, 500);
  auto opt = f.options(6);
  opt.threads = 8;
  const Trace t = run_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

// ---------- IS-ASGD ----------

TEST(IsAsgd, ConvergesWithFourThreads) {
  Fixture f;
  IsAsgdReport report;
  const Trace t = run_is_asgd(f.data, f.loss, f.options(),
                              f.evaluator.as_fn(), &report);
  EXPECT_LT(final_rmse(t), 0.6 * initial_rmse(t));
  EXPECT_GT(report.rho, 0.0);
  EXPECT_GT(t.setup_seconds, 0.0);
}

TEST(IsAsgd, AdaptiveAppliesHeadTailOnSpreadData) {
  Fixture f(2000, 300, /*psi=*/0.85);  // high spread → ρ above ζ
  IsAsgdReport report;
  (void)run_is_asgd(f.data, f.loss, f.options(2), f.evaluator.as_fn(),
                    &report);
  EXPECT_EQ(report.applied_strategy, partition::Strategy::kHeadTail);
  // Algorithm 3 is an approximation ("does not guarantee to produce an
  // equal-importance dataset segmentation", §2.4): on lognormal L the
  // consecutive pair-sums drift, so we only require a bounded spread.
  EXPECT_LT(report.phi_imbalance, 0.5);
}

TEST(IsAsgd, ForcedShuffleStrategyIsHonored) {
  Fixture f(800, 150);
  auto opt = f.options(2);
  opt.partition.strategy = partition::Strategy::kShuffle;
  IsAsgdReport report;
  (void)run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn(), &report);
  EXPECT_EQ(report.applied_strategy, partition::Strategy::kShuffle);
}

TEST(IsAsgd, SingleThreadMatchesIsSgdQuality) {
  Fixture f(1500, 200);
  auto opt = f.options(6);
  opt.threads = 1;
  const Trace is_asgd = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace is_sgd = run_is_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NEAR(final_rmse(is_asgd), final_rmse(is_sgd),
              0.1 * final_rmse(is_sgd) + 0.02);
}

TEST(IsAsgd, ReshuffleModeConverges) {
  Fixture f(1000, 150);
  auto opt = f.options(6);
  opt.sequence_mode = SolverOptions::SequenceMode::kReshuffle;
  const Trace t = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

TEST(IsAsgd, NoWorseThanAsgdOnSkewedImportance) {
  // The paper's core claim at small scale: same epochs, same step size, the
  // IS variant should reach at-least-comparable RMSE on a ψ < 1 dataset.
  Fixture f(3000, 400, /*psi=*/0.85);
  const auto opt = f.options(8);
  const Trace asgd = run_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace is = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LE(final_rmse(is), final_rmse(asgd) * 1.10 + 0.01);
}

// ---------- SVRG-SGD ----------

TEST(SvrgSgd, ConvergesFastPerEpoch) {
  Fixture f(1000, 150);
  auto opt = f.options(8, 0.5);
  const Trace t = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.6 * initial_rmse(t));
}

TEST(SvrgSgd, BeatsSgdIteratively) {
  // SVRG's iterative convergence should dominate plain SGD's at equal epoch
  // counts (the paper's Fig. 3a).
  Fixture f(1500, 150);
  auto opt = f.options(5, 0.2);
  const Trace svrg = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace sgd = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LE(final_rmse(svrg), final_rmse(sgd) * 1.05);
}

TEST(SvrgSgd, SkipMuApproximationDiverges) {
  // §1.2: the public-version approximation's convergence curve is "far from
  // the literature version".
  Fixture f(800, 120);
  auto opt = f.options(4, 0.2);
  const Trace faithful = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  opt.svrg_skip_mu = true;
  const Trace skip = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_GT(std::abs(final_rmse(skip) - final_rmse(faithful)),
            0.02 * final_rmse(faithful));
}

TEST(SvrgSgd, SnapshotIntervalIsRespected) {
  Fixture f(600, 100);
  auto opt = f.options(4, 0.2);
  opt.svrg_snapshot_interval = 2;
  const Trace t = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_TRUE(std::isfinite(final_rmse(t)));
}

// ---------- SVRG-ASGD ----------

TEST(SvrgAsgd, ConvergesWithThreads) {
  Fixture f(800, 120);
  auto opt = f.options(6, 0.2);
  const Trace t = run_svrg_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

TEST(SvrgAsgd, IsSlowerPerEpochThanAsgdOnSparseData) {
  // The §1.2 bottleneck: dense μ update each iteration makes SVRG-ASGD's
  // per-epoch wall clock far higher than ASGD's on sparse data. Re-pinned
  // for the wild-view era: the fused dense pass cut SVRG-ASGD's constant
  // ~3x, so the structural O(d)-vs-O(nnz) gap needs d ≫ nnz to dominate,
  // and each wall clock is the min over repeats so a scheduler preemption
  // inside one tiny timed window (parallel ctest on a loaded runner)
  // cannot fake either side.
  Fixture f(1000, 8000);  // sparse: nnz/row = 10 ≪ d = 8000
  auto opt = f.options(2, 0.2);
  double asgd_s = std::numeric_limits<double>::infinity();
  double svrg_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    asgd_s = std::min(
        asgd_s, run_asgd(f.data, f.loss, opt, f.evaluator.as_fn()).train_seconds);
    svrg_s = std::min(
        svrg_s,
        run_svrg_asgd(f.data, f.loss, opt, f.evaluator.as_fn()).train_seconds);
  }
  EXPECT_GT(svrg_s, 3.0 * asgd_s);
}

TEST(SvrgAsgd, SkipMuIsCheapButDifferent) {
  // min-over-repeats on both sides, for the same loaded-runner reason as
  // IsSlowerPerEpochThanAsgdOnSparseData above; d ≫ nnz so the faithful
  // dense pass dominates even fused.
  Fixture f(500, 4000);
  auto opt = f.options(2, 0.2);
  double faithful_s = std::numeric_limits<double>::infinity();
  double skip_s = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    opt.svrg_skip_mu = false;
    faithful_s = std::min(
        faithful_s,
        run_svrg_asgd(f.data, f.loss, opt, f.evaluator.as_fn()).train_seconds);
    opt.svrg_skip_mu = true;
    skip_s = std::min(
        skip_s,
        run_svrg_asgd(f.data, f.loss, opt, f.evaluator.as_fn()).train_seconds);
  }
  EXPECT_LT(skip_s, faithful_s);
}

// ---------- cross-cutting ----------

TEST(AllSolvers, TraceShapeIsUniform) {
  Fixture f(400, 100);
  const auto opt = f.options(3);
  const auto eval = f.evaluator.as_fn();
  const Trace traces[] = {
      run_sgd(f.data, f.loss, opt, eval),
      run_is_sgd(f.data, f.loss, opt, eval),
      run_asgd(f.data, f.loss, opt, eval),
      run_is_asgd(f.data, f.loss, opt, eval),
      run_svrg_sgd(f.data, f.loss, opt, eval),
      run_svrg_asgd(f.data, f.loss, opt, eval),
  };
  for (const Trace& t : traces) {
    ASSERT_EQ(t.points.size(), 4u) << t.algorithm;
    EXPECT_EQ(t.points.front().epoch, 0u) << t.algorithm;
    EXPECT_EQ(t.points.back().epoch, 3u) << t.algorithm;
    for (std::size_t e = 1; e < t.points.size(); ++e) {
      EXPECT_GE(t.points[e].seconds, t.points[e - 1].seconds) << t.algorithm;
      // Monotone best-so-far error convention.
      EXPECT_LE(t.points[e].error_rate, t.points[e - 1].error_rate + 1e-12)
          << t.algorithm;
    }
    EXPECT_GT(t.train_seconds, 0.0) << t.algorithm;
  }
}

TEST(AllSolvers, SquaredHingeObjectiveWorksEverywhere) {
  data::SyntheticSpec spec;
  spec.rows = 600;
  spec.dim = 150;
  spec.mean_row_nnz = 8;
  spec.smoothness_beta = 2.0;  // hinge² smoothness
  spec.mean_lipschitz = 0.5;
  const auto data = data::generate(spec);
  objectives::SquaredHingeLoss loss;
  const auto reg = objectives::Regularization::l2(1e-3);
  Evaluator ev(data, loss, reg, 2);
  SolverOptions opt;
  opt.epochs = 5;
  opt.step_size = 0.1;
  opt.threads = 2;
  opt.reg = reg;
  const data::InMemorySource source(data);
  for (const char* name : {"SGD", "IS-SGD", "ASGD"}) {
    const Trace t = SolverRegistry::instance().get(name).train(
        SolverContext{.source = source,
                      .objective = loss,
                      .options = opt,
                      .eval = ev.as_fn(),
                      .observer = nullptr});
    EXPECT_LT(final_rmse(t), initial_rmse(t)) << t.algorithm;
  }
}

}  // namespace
}  // namespace isasgd::solvers
