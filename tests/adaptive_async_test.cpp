// Adaptive (Eq.-11) importance refresh inside asynchronous IS-ASGD.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 2000;
          spec.dim = 400;
          spec.mean_row_nnz = 10;
          spec.target_psi = 0.8;
          spec.difficulty_coupling = 2.0;
          spec.label_noise = 0.03;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}

  SolverOptions options(std::size_t epochs = 8) const {
    SolverOptions opt;
    opt.step_size = 0.5;
    opt.epochs = epochs;
    opt.threads = 4;
    opt.seed = 41;
    return opt;
  }
};

TEST(AdaptiveIsAsgd, ConvergesWithPerEpochRefresh) {
  Fixture f;
  auto opt = f.options();
  opt.adaptive_importance = true;
  opt.adaptive_interval = 1;
  const Trace t = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  ASSERT_EQ(t.points.size(), 9u);
  EXPECT_LT(t.points.back().rmse, 0.65 * t.points.front().rmse);
  EXPECT_LT(t.best_error_rate(), 0.15);
}

TEST(AdaptiveIsAsgd, QualityTracksStaticIs) {
  // Adaptive importance must not be *worse* than static Eq. 12 by more
  // than noise — the refresh replaces a fixed approximation with the
  // live optimum.
  Fixture f;
  auto opt = f.options(10);
  const Trace fixed = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  opt.adaptive_importance = true;
  const Trace adaptive =
      run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(adaptive.best_error_rate(), fixed.best_error_rate() * 1.25);
}

TEST(AdaptiveIsAsgd, RefreshCostIsInsideTheTrainingClock) {
  // The point of the extension: the Eq. 11 tracking cost must show up in
  // the timed window, not in setup. Under streamed block sequences setup
  // no longer generates per-epoch sequences for ANY mode, so the old
  // adaptive-vs-static setup comparison is meaningless; what setup must
  // now guarantee is epoch-count independence — 25x the epochs must not
  // buy 25x the setup (the pre-streaming scheme scaled linearly).
  Fixture f;
  auto opt = f.options(6);
  opt.adaptive_importance = true;
  const Trace adaptive =
      run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_GT(adaptive.train_seconds, 0.0);

  const Trace few =
      run_is_asgd(f.data, f.loss, f.options(2), f.evaluator.as_fn());
  const Trace many =
      run_is_asgd(f.data, f.loss, f.options(50), f.evaluator.as_fn());
  // Generous slack (5x + 1ms absolute): only a regression back to
  // per-epoch pre-generation (~25x here) can trip it.
  EXPECT_LT(many.setup_seconds, 5.0 * few.setup_seconds + 1e-3);
}

TEST(AdaptiveIsAsgd, IntervalReusesSequences) {
  // interval = 3 over 6 epochs: refresh at epochs 1 and 4 only; the run
  // must still be well-formed and converge.
  Fixture f;
  auto opt = f.options(6);
  opt.adaptive_importance = true;
  opt.adaptive_interval = 3;
  const Trace t = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.7 * t.points.front().rmse);
}

TEST(AdaptiveIsAsgd, SingleThreadMatchesMultiThreadShape) {
  Fixture f;
  for (std::size_t threads : {1u, 8u}) {
    auto opt = f.options(6);
    opt.threads = threads;
    opt.adaptive_importance = true;
    const Trace t = run_is_asgd(f.data, f.loss, opt, f.evaluator.as_fn());
    EXPECT_LT(t.points.back().rmse, 0.7 * t.points.front().rmse)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace isasgd::solvers
