#include "util/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace isasgd::util {
namespace {

template <class Barrier>
void phase_ordering_holds(std::size_t threads, std::size_t rounds) {
  Barrier barrier(threads);
  std::atomic<std::size_t> counter{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t r = 0; r < rounds; ++r) {
        counter.fetch_add(1);
        barrier.arrive_and_wait();
        // After the barrier, every thread of round r must have incremented:
        // the counter must read ≥ (r+1)·threads.
        if (counter.load() < (r + 1) * threads) violation.store(true);
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(counter.load(), threads * rounds);
}

TEST(SpinBarrier, EnforcesPhaseOrdering) { phase_ordering_holds<SpinBarrier>(4, 50); }

TEST(SpinBarrier, SingleThreadNeverBlocks) {
  SpinBarrier b(1);
  for (int i = 0; i < 10; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(BlockingBarrier, EnforcesPhaseOrdering) {
  phase_ordering_holds<BlockingBarrier>(4, 50);
}

TEST(BlockingBarrier, SingleThreadNeverBlocks) {
  BlockingBarrier b(1);
  for (int i = 0; i < 10; ++i) b.arrive_and_wait();
  SUCCEED();
}

TEST(BlockingBarrier, ManyThreadsManyRounds) {
  phase_ordering_holds<BlockingBarrier>(8, 200);
}

TEST(CachePadded, OccupiesFullCacheLine) {
  static_assert(sizeof(CachePadded<int>) == kCacheLineSize);
  static_assert(alignof(CachePadded<int>) == kCacheLineSize);
  CachePadded<int> x;
  x.value = 3;
  EXPECT_EQ(x.value, 3);
}

}  // namespace
}  // namespace isasgd::util
