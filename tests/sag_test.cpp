// SAG — the third member of the incremental-VR family.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/solver.hpp"
#include "solvers/sag.hpp"
#include "solvers/saga.hpp"
#include "solvers/sgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  explicit Fixture(std::size_t rows = 1200, std::size_t dim = 250)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 10;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}

  SolverOptions options(std::size_t epochs = 8, double lambda = 0.5) const {
    SolverOptions opt;
    opt.step_size = lambda;
    opt.epochs = epochs;
    opt.seed = 77;
    return opt;
  }
};

TEST(Sag, ReducesObjectiveSubstantially) {
  Fixture f;
  const Trace t = run_sag(f.data, f.loss, f.options(), f.evaluator.as_fn());
  ASSERT_EQ(t.points.size(), 9u);
  EXPECT_LT(t.points.back().rmse, 0.6 * t.points.front().rmse);
  EXPECT_LT(t.best_error_rate(), 0.2);
  EXPECT_EQ(t.algorithm, "SAG");
}

TEST(Sag, BeatsPlainSgdPerEpochOnceMemoryWarms) {
  // After a couple of passes the gradient table is fresh and the averaged
  // direction is near the full gradient — per-epoch progress beats SGD's.
  Fixture f;
  const auto opt = f.options(10, 0.5);
  const Trace sag = run_sag(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace sgd = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LT(sag.points.back().rmse, sgd.points.back().rmse);
}

TEST(Sag, ComparableToSagaAtEqualBudget) {
  Fixture f;
  const auto opt = f.options(8, 0.3);
  const Trace sag = run_sag(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace saga = run_saga(f.data, f.loss, opt, f.evaluator.as_fn());
  // Same family, same memory, biased-vs-unbiased step: final quality within
  // a generous factor of each other (neither should collapse).
  EXPECT_LT(sag.points.back().rmse, 1.5 * saga.points.back().rmse);
  EXPECT_LT(saga.points.back().rmse, 1.5 * sag.points.back().rmse);
}

TEST(Sag, DeterministicForFixedSeed) {
  Fixture f(300, 80);
  auto opt = f.options(3);
  opt.keep_final_model = true;
  const Trace a = run_sag(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace b = run_sag(f.data, f.loss, opt, f.evaluator.as_fn());
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  for (std::size_t j = 0; j < a.final_model.size(); ++j) {
    ASSERT_EQ(a.final_model[j], b.final_model[j]);
  }
}

TEST(Sag, RegisteredWithFacade) {
  const Solver* s = SolverRegistry::instance().find("sag");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "SAG");
}

TEST(Sag, DensePassCostGrowsWithDimension) {
  // SAG pays Θ(d) per iteration like SVRG/SAGA (the §1.2 family property).
  objectives::LogisticLoss loss;
  double small_time = 0, large_time = 0;
  for (std::size_t dim : {500u, 20000u}) {
    data::SyntheticSpec spec;
    spec.rows = 300;
    spec.dim = dim;
    spec.mean_row_nnz = 8;
    const auto data = data::generate(spec);
    Evaluator ev(data, loss, objectives::Regularization::none(), 4);
    SolverOptions opt;
    opt.epochs = 2;
    opt.step_size = 0.1;
    const Trace t = run_sag(data, loss, opt, ev.as_fn());
    (dim == 500u ? small_time : large_time) = t.train_seconds;
  }
  EXPECT_GT(large_time, 5 * small_time);
}

}  // namespace
}  // namespace isasgd::solvers
