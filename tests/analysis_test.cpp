#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "analysis/conflict_graph.hpp"
#include "analysis/dataset_stats.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd::analysis {
namespace {

// ---------- ψ (Eq. 15) ----------

TEST(Psi, EqualsOneForUniformLipschitz) {
  EXPECT_DOUBLE_EQ(psi(std::vector<double>{2, 2, 2, 2}), 1.0);
}

TEST(Psi, MatchesHandComputation) {
  // L = {1, 3}: (1+3)²/(2·(1+9)) = 16/20 = 0.8.
  EXPECT_DOUBLE_EQ(psi(std::vector<double>{1, 3}), 0.8);
}

TEST(Psi, NeverExceedsOne) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> lip(100);
    for (auto& l : lip) l = util::uniform_double(rng) + 1e-6;
    const double p = psi(lip);
    EXPECT_LE(p, 1.0 + 1e-12);
    EXPECT_GT(p, 0.0);
  }
}

TEST(Psi, FallsWithSpread) {
  EXPECT_GT(psi(std::vector<double>{1.0, 1.1, 0.9}),
            psi(std::vector<double>{1.0, 10.0, 0.1}));
}

TEST(Psi, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(psi(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(psi(std::vector<double>{0.0, 0.0}), 1.0);
}

// ---------- Lipschitz summary ----------

TEST(LipschitzSummary, ComputesAllFields) {
  const auto s = summarize_lipschitz(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.sup, 4.0);
  EXPECT_DOUBLE_EQ(s.inf, 1.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_DOUBLE_EQ(s.sum_sq, 30.0);
}

TEST(LipschitzSummary, RejectsEmpty) {
  EXPECT_THROW(summarize_lipschitz(std::vector<double>{}),
               std::invalid_argument);
}

// ---------- Iteration bounds (Eqs. 26/28/29) ----------

TEST(IterationBounds, IsBoundNeverWorseThanSgdForEqualL) {
  const auto lip = summarize_lipschitz(std::vector<double>{2, 2, 2});
  BoundInputs in;
  EXPECT_NEAR(is_sgd_iteration_bound(lip, in), sgd_iteration_bound(lip, in),
              1e-9);
}

TEST(IterationBounds, IsBoundImprovesWithSpread) {
  // sup L dominates the SGD bound; the IS bound depends on the mean. A
  // heavy-tailed L therefore favours IS in the first (condition-number) term.
  const auto spread = summarize_lipschitz(std::vector<double>{0.9, 1.0, 10.0});
  BoundInputs in;
  in.sigma_sq = 0;  // isolate the L/μ term
  EXPECT_LT(is_sgd_iteration_bound(spread, in),
            sgd_iteration_bound(spread, in));
}

TEST(IterationBounds, ShrinkWithLooserEpsilon) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 2, 3});
  BoundInputs tight;
  tight.epsilon = 1e-6;
  BoundInputs loose;
  loose.epsilon = 1e-2;
  EXPECT_LT(sgd_iteration_bound(lip, loose), sgd_iteration_bound(lip, tight));
  EXPECT_LT(is_sgd_iteration_bound(lip, loose),
            is_sgd_iteration_bound(lip, tight));
}

TEST(IterationBounds, RejectNonPositiveEpsilon) {
  const auto lip = summarize_lipschitz(std::vector<double>{1.0});
  BoundInputs in;
  in.epsilon = 0;
  EXPECT_THROW(sgd_iteration_bound(lip, in), std::invalid_argument);
}

// ---------- Rate constants (Eqs. 13/14) ----------

TEST(RateConstants, RatioIsSqrtPsi) {
  const std::vector<double> lip = {1, 2, 3, 4, 5};
  const auto rc = rate_constants(lip, 1.0, 1.0);
  EXPECT_NEAR(rc.ratio, std::sqrt(psi(lip)), 1e-12);
  EXPECT_LE(rc.importance, rc.uniform + 1e-12);  // Cauchy–Schwarz
}

TEST(RateConstants, EqualityAtUniformLipschitz) {
  const std::vector<double> lip = {3, 3, 3};
  const auto rc = rate_constants(lip, 2.0, 0.5);
  EXPECT_NEAR(rc.ratio, 1.0, 1e-12);
}

TEST(RateConstants, RejectsBadInputs) {
  EXPECT_THROW(rate_constants(std::vector<double>{}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(rate_constants(std::vector<double>{1.0}, 1.0, 0.0),
               std::invalid_argument);
}

// ---------- τ bound (Eq. 27) and friends ----------

TEST(TauBound, TakesStructuralMinimumWhenConflictsDominate) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 1});
  BoundInputs in;
  in.epsilon = 1e-9;  // tight ε → σ²/(εμ²) optimisation term is huge
  // n/Δ̄ = 100/50 = 2 becomes the binding constraint.
  EXPECT_NEAR(tau_bound(100, 50.0, lip, in), 2.0, 1e-9);
}

TEST(TauBound, GrowsWithSparsity) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 1});
  BoundInputs in;
  in.epsilon = 1e-9;  // structural term binds in both cases
  EXPECT_GT(tau_bound(1000, 2.0, lip, in), tau_bound(1000, 200.0, lip, in));
}

TEST(TauBound, InfiniteStructuralTermForConflictFreeData) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 1});
  BoundInputs in;
  const double bound = tau_bound(10, 0.0, lip, in);
  EXPECT_TRUE(std::isfinite(bound));  // optimisation term still applies
}

TEST(IsGradientInflation, MeanOverInf) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 2, 3});
  EXPECT_DOUBLE_EQ(is_gradient_inflation(lip), 2.0);
}

TEST(Lemma2StepSize, MatchesFormula) {
  const auto lip = summarize_lipschitz(std::vector<double>{1, 4});
  BoundInputs in;
  in.mu = 2.0;
  in.epsilon = 0.1;
  in.sigma_sq = 3.0;
  const double expected = 0.1 * 2.0 / (2 * 0.1 * 2.0 * 4.0 + 2 * 3.0);
  EXPECT_NEAR(lemma2_step_size(lip, in), expected, 1e-12);
}

// ---------- Conflict graph ----------

sparse::CsrMatrix conflict_fixture() {
  // row0: {0}, row1: {0,1}, row2: {1}, row3: {2}.
  // Edges: (0,1), (1,2). Degrees: 1, 2, 1, 0 → Δ̄ = 1.
  sparse::CsrBuilder b(3);
  b.add_row(std::vector<sparse::index_t>{0}, std::vector<sparse::value_t>{1}, 1);
  b.add_row(std::vector<sparse::index_t>{0, 1},
            std::vector<sparse::value_t>{1, 1}, -1);
  b.add_row(std::vector<sparse::index_t>{1}, std::vector<sparse::value_t>{1}, 1);
  b.add_row(std::vector<sparse::index_t>{2}, std::vector<sparse::value_t>{1}, -1);
  return b.build();
}

TEST(ConflictGraph, ExactDegreesOnHandExample) {
  const auto data = conflict_fixture();
  const sparse::InvertedIndex index(data);
  const auto stats = conflict_stats_exact(data, index);
  EXPECT_DOUBLE_EQ(stats.average_degree, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_degree, 2.0);
  EXPECT_EQ(stats.rows_examined, 4u);
  EXPECT_DOUBLE_EQ(stats.normalized, 0.25);
}

TEST(ConflictGraph, FullyConflictingClique) {
  // All rows share feature 0 → complete graph, Δ̄ = n−1.
  sparse::CsrBuilder b(1);
  for (int i = 0; i < 5; ++i) {
    b.add_row(std::vector<sparse::index_t>{0},
              std::vector<sparse::value_t>{1}, 1);
  }
  const auto data = b.build();
  const sparse::InvertedIndex index(data);
  EXPECT_DOUBLE_EQ(conflict_stats_exact(data, index).average_degree, 4.0);
}

TEST(ConflictGraph, DisjointRowsHaveZeroDegree) {
  sparse::CsrBuilder b(4);
  for (int i = 0; i < 4; ++i) {
    b.add_row(std::vector<sparse::index_t>{static_cast<sparse::index_t>(i)},
              std::vector<sparse::value_t>{1}, 1);
  }
  const auto data = b.build();
  const sparse::InvertedIndex index(data);
  EXPECT_DOUBLE_EQ(conflict_stats_exact(data, index).average_degree, 0.0);
}

TEST(ConflictGraph, SampledEstimatorTracksExact) {
  data::SyntheticSpec spec;
  spec.rows = 800;
  spec.dim = 400;
  spec.mean_row_nnz = 4;
  spec.feature_skew = 1.5;
  const auto data = data::generate(spec);
  const sparse::InvertedIndex index(data);
  const auto exact = conflict_stats_exact(data, index);
  const auto sampled = conflict_stats_sampled(data, index, 400, 99);
  EXPECT_NEAR(sampled.average_degree, exact.average_degree,
              0.15 * exact.average_degree + 1.0);
}

TEST(ConflictGraph, DenserDataHasHigherDegree) {
  data::SyntheticSpec sparse_spec;
  sparse_spec.rows = 500;
  sparse_spec.dim = 2000;
  sparse_spec.mean_row_nnz = 3;
  data::SyntheticSpec dense_spec = sparse_spec;
  dense_spec.mean_row_nnz = 40;
  const auto sparse_data = data::generate(sparse_spec);
  const auto dense_data = data::generate(dense_spec);
  const sparse::InvertedIndex si(sparse_data), di(dense_data);
  EXPECT_LT(conflict_stats_exact(sparse_data, si).average_degree,
            conflict_stats_exact(dense_data, di).average_degree);
}

TEST(ConflictGraph, EmptyInputsAreSafe) {
  sparse::CsrBuilder b(2);
  b.add_row(std::vector<sparse::index_t>{0}, std::vector<sparse::value_t>{1}, 1);
  const auto data = b.build();
  const sparse::InvertedIndex index(data);
  const auto none = conflict_stats_sampled(data, index, 0, 1);
  EXPECT_EQ(none.rows_examined, 0u);
}

// ---------- Dataset stats (Table 1) ----------

TEST(DatasetStats, ComputesTableOneColumns) {
  data::SyntheticSpec spec;
  spec.rows = 2000;
  spec.dim = 1000;
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.93;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const auto stats = compute_dataset_stats(
      "unit", data, loss, objectives::Regularization::none());
  EXPECT_EQ(stats.name, "unit");
  EXPECT_EQ(stats.dimension, 1000u);
  EXPECT_EQ(stats.instances, 2000u);
  EXPECT_NEAR(stats.gradient_sparsity, 0.01, 0.003);
  EXPECT_NEAR(stats.psi, 0.93, 0.03);
  EXPECT_GT(stats.avg_conflict_degree, 0.0);
  EXPECT_GT(stats.lipschitz_sup, stats.lipschitz_mean);
}

TEST(DatasetStats, ConflictComputationCanBeSkipped) {
  data::SyntheticSpec spec;
  spec.rows = 100;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  DatasetStatsOptions opt;
  opt.compute_conflicts = false;
  const auto stats = compute_dataset_stats(
      "x", data, loss, objectives::Regularization::none(), opt);
  EXPECT_DOUBLE_EQ(stats.avg_conflict_degree, 0.0);
}

}  // namespace
}  // namespace isasgd::analysis
