// data::PackedSource: served shards must be bit-identical to the
// parse-on-fault StreamingSource over the same data, training over the pack
// must be bit-identical to training over the original file for every
// deterministic solver in the registry (adaptive IS-SGD and the dist.*
// engines included) even under hard eviction pressure, and the sidecar must
// make setup provably zero-pass (load-counter assertions, not timing).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/packed_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "distributed/fenced.hpp"
#include "io/binary.hpp"
#include "io/shardpack.hpp"
#include "objectives/logistic.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/solver.hpp"

namespace isasgd {
namespace {

constexpr std::size_t kShardRows = 64;
/// Small enough that only ~2 of the fixture's 7 shards fit resident: every
/// epoch cycles the cache, so parity holds under genuine eviction, not
/// because everything stayed cached.
constexpr std::size_t kTightBudget = 16 << 10;

struct Fixture {
  sparse::CsrMatrix data;
  std::string bin_path;
  std::string pack_path;

  Fixture() {
    data::SyntheticSpec spec;
    spec.rows = 400;
    spec.dim = 120;
    spec.mean_row_nnz = 8;
    spec.seed = 7;
    data = data::generate(spec);
    bin_path = ::testing::TempDir() + "packed_src.bin";
    pack_path = ::testing::TempDir() + "packed_src.issp";
    io::write_dataset_binary_file(bin_path, data);
    io::write_shardpack(pack_path, data, {.shard_rows = kShardRows});
  }
  ~Fixture() {
    std::remove(bin_path.c_str());
    std::remove(pack_path.c_str());
  }

  [[nodiscard]] data::StreamingOptions streaming_options() const {
    data::StreamingOptions opt;
    opt.shard_rows = kShardRows;
    opt.memory_budget_bytes = kTightBudget;
    return opt;
  }
  [[nodiscard]] data::PackedOptions packed_options() const {
    data::PackedOptions opt;
    opt.memory_budget_bytes = kTightBudget;
    return opt;
  }
};

TEST(PackedSource, ShardsAreBitIdenticalToStreaming) {
  const Fixture f;
  const data::StreamingSource stream(f.bin_path, f.streaming_options());
  const data::PackedSource packed(f.pack_path, f.packed_options());
  ASSERT_EQ(packed.rows(), stream.rows());
  ASSERT_EQ(packed.dim(), stream.dim());
  ASSERT_EQ(packed.nnz(), stream.nnz());
  ASSERT_EQ(packed.shard_count(), stream.shard_count());
  for (std::size_t s = 0; s < stream.shard_count(); ++s) {
    const data::ShardPtr a = stream.shard(s);
    const data::ShardPtr b = packed.shard(s);
    EXPECT_EQ(a->row_begin, b->row_begin);
    EXPECT_EQ(a->matrix->row_ptr(), b->matrix->row_ptr()) << "shard " << s;
    EXPECT_EQ(a->matrix->col_idx(), b->matrix->col_idx()) << "shard " << s;
    EXPECT_EQ(a->matrix->values(), b->matrix->values()) << "shard " << s;
    EXPECT_EQ(a->matrix->labels(), b->matrix->labels()) << "shard " << s;
  }
}

TEST(PackedSource, MaterializeReproducesTheMatrix) {
  const Fixture f;
  const data::PackedSource packed(f.pack_path, f.packed_options());
  const sparse::CsrMatrix& m = packed.materialize();
  EXPECT_EQ(m.row_ptr(), f.data.row_ptr());
  EXPECT_EQ(m.col_idx(), f.data.col_idx());
  EXPECT_EQ(m.values(), f.data.values());
  EXPECT_EQ(m.labels(), f.data.labels());
  // Idempotent single-flight: same object on the second call.
  EXPECT_EQ(&packed.materialize(), &m);
}

TEST(PackedSource, RowStatsServesExactSquaredNorms) {
  const Fixture f;
  const data::PackedSource packed(f.pack_path, f.packed_options());
  const data::RowStats* stats = packed.row_stats();
  ASSERT_NE(stats, nullptr);
  for (std::size_t i = 0; i < f.data.rows(); ++i) {
    EXPECT_EQ(stats->row_squared_norm(i), f.data.row(i).squared_norm())
        << "row " << i;
  }
}

TEST(PackedSource, StreamingSourceHasNoRowStats) {
  const Fixture f;
  const data::StreamingSource stream(f.bin_path, f.streaming_options());
  EXPECT_EQ(stream.row_stats(), nullptr);
}

/// Trains `solver` over both sources with identical options and requires
/// bit-identical final models.
void expect_training_parity(const Fixture& f, const std::string& solver,
                            solvers::SolverOptions opt,
                            const distributed::ClusterSpec* cluster) {
  opt.keep_final_model = true;
  objectives::LogisticLoss loss;
  const data::StreamingSource stream(f.bin_path, f.streaming_options());
  const data::PackedSource packed(f.pack_path, f.packed_options());
  auto build = [&](const data::DataSource& source) {
    core::TrainerBuilder b;
    b.source(source).objective(loss).l2(1e-3).eval_threads(1);
    if (cluster) b.cluster(*cluster);
    return b.build();
  };
  const auto from_stream = build(stream).train(solver, opt);
  const auto from_pack = build(packed).train(solver, opt);
  ASSERT_EQ(from_pack.final_model.size(), from_stream.final_model.size())
      << solver;
  for (std::size_t j = 0; j < from_stream.final_model.size(); ++j) {
    ASSERT_EQ(from_pack.final_model[j], from_stream.final_model[j])
        << solver << " coordinate " << j;
  }
}

solvers::SolverOptions parity_options() {
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.3;
  opt.seed = 20260808;
  return opt;
}

TEST(PackedParity, EveryDeterministicRegistrySolver) {
  // Serial solvers are bit-pure; the dist.*/sim.* engines are single-thread
  // discrete-event simulations, equally bit-pure. Hogwild solvers race by
  // construction and are covered at threads=1 below.
  const Fixture f;
  distributed::ClusterSpec cluster;
  cluster.nodes = 3;
  const auto& registry = solvers::SolverRegistry::instance();
  std::size_t covered = 0;
  for (const std::string& name : registry.list()) {
    const auto caps = registry.get(name).capabilities();
    if (!caps.serial() && !caps.simulated_time) continue;
    ++covered;
    expect_training_parity(f, name, parity_options(),
                           caps.simulated_time ? &cluster : nullptr);
  }
  EXPECT_GE(covered, 10u);
}

TEST(PackedParity, AdaptiveImportanceSgdUsesSidecarBitIdentically) {
  // Adaptive IS-SGD reads row norms at setup — over the pack those come
  // from the sidecar (zero-pass), over the file from the loaded rows. Same
  // bits required.
  const Fixture f;
  solvers::SolverOptions opt = parity_options();
  opt.adaptive_importance = true;
  expect_training_parity(f, "IS-SGD", opt, nullptr);
}

TEST(PackedParity, SingleThreadAsgdMatches) {
  const Fixture f;
  solvers::SolverOptions opt = parity_options();
  opt.threads = 1;
  expect_training_parity(f, "IS-ASGD", opt, nullptr);
  expect_training_parity(f, "ASGD", opt, nullptr);
}

TEST(PackedZeroPass, DistSetupLoadsNoShards) {
  // The load-counter proof: parameter-server setup over a pack must build
  // per-shard importance and Φ entirely from the sidecar. Zero loads, zero
  // prefetches — not "fast", *none*.
  const Fixture f;
  objectives::LogisticLoss loss;
  const data::PackedSource packed(f.pack_path, f.packed_options());
  solvers::SolverOptions opt = parity_options();
  const auto setup = distributed::fenced::make_ps_setup_sharded(
      packed, loss, opt, /*nodes=*/3, /*use_importance=*/true);
  const data::CacheStats stats = *packed.cache_stats();
  EXPECT_EQ(stats.loads, 0u);
  EXPECT_EQ(stats.prefetch_issued, 0u);

  // And the zero-pass numbers are the loaded-path numbers, bit for bit.
  const data::StreamingSource stream(f.bin_path, f.streaming_options());
  const auto loaded = distributed::fenced::make_ps_setup_sharded(
      stream, loss, opt, /*nodes=*/3, /*use_importance=*/true);
  ASSERT_EQ(setup.shard_phi.size(), loaded.shard_phi.size());
  for (std::size_t s = 0; s < setup.shard_phi.size(); ++s) {
    EXPECT_EQ(setup.shard_phi[s], loaded.shard_phi[s]) << "shard " << s;
    EXPECT_EQ(setup.shard_importance[s], loaded.shard_importance[s])
        << "shard " << s;
  }
  EXPECT_GT(stream.cache_stats()->loads, 0u)
      << "loaded path is supposed to pay the pass the sidecar avoids";
}

TEST(PackedZeroPass, SidecarFedIsSgdMatchesLoadedPath) {
  // Direct solver-level check: run_is_sgd with the sidecar feed equals the
  // loaded-path run bit for bit (importance AND adaptive row norms).
  const Fixture f;
  objectives::LogisticLoss loss;
  const data::PackedSource packed(f.pack_path, f.packed_options());
  solvers::SolverOptions opt = parity_options();
  opt.reg = objectives::Regularization::l2(1e-3);
  opt.keep_final_model = true;
  opt.adaptive_importance = true;
  const auto eval = [](std::span<const double>) {
    return solvers::EvalResult{};
  };
  const auto with_stats =
      solvers::run_is_sgd(f.data, loss, opt, eval, nullptr, {},
                          packed.row_stats());
  const auto without_stats =
      solvers::run_is_sgd(f.data, loss, opt, eval, nullptr, {}, nullptr);
  EXPECT_EQ(with_stats.final_model, without_stats.final_model);
}

TEST(PackedSource, BufferPoolRecyclesUnderEviction) {
  const Fixture f;
  core::ExecutionContext ctx(1);
  const auto packed = [&] {
    data::PackedOptions opt;
    opt.memory_budget_bytes = kTightBudget;
    return std::make_shared<data::PackedSource>(f.pack_path, opt, &ctx.pool());
  }();
  objectives::LogisticLoss loss;
  solvers::SolverOptions opt = parity_options();
  opt.epochs = 4;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .source(*packed)
                                    .objective(loss)
                                    .l2(1e-3)
                                    .eval_threads(1)
                                    .build();
  (void)trainer.train("SGD", opt);
  const data::CacheStats stats = *packed->cache_stats();
  EXPECT_GT(stats.evictions, 0u) << "budget did not create eviction pressure";
  // Once the first pass populated the pool, later decodes reuse arrays.
  EXPECT_GT(packed->buffer_pool_reuses(), 0u);
  // The autotuner is live and its depth stays in its contract range
  // (0 is legal: the futility latch fires on hosts with no spare core).
  EXPECT_LE(packed->prefetch_depth(), 8u);
}

}  // namespace
}  // namespace isasgd
