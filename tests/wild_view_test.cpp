// wild_view() contract: the raw-view fast lane the async solvers take under
// UpdatePolicy::kWild must be arithmetically indistinguishable from the
// per-element atomic path it replaced.
//
// Three layers of evidence:
//   1. Storage coherence — writes through add()/store() are visible through
//      the raw view and vice versa (plain storage + atomic_ref window).
//   2. Kernel parity — a frozen copy of the pre-wild-view per-element
//      atomic inner loop (margin via model.load, update via model.add)
//      replayed against the fused-kernel wild path gives bit-identical
//      models for every regularizer kind.
//   3. Solver parity — serial (threads = 1) registry runs under kWild (the
//      fast lane) and kAtomic (per-element fetch_add) are bit-identical:
//      with one worker both disciplines perform the same real-number
//      updates, so any divergence is a fast-lane arithmetic change.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {
namespace {

TEST(WildView, RawAndAtomicAccessSeeTheSameStorage) {
  SharedModel model(8);
  model.add(3, 1.5, UpdatePolicy::kAtomic);
  model.store(5, -2.0);
  const std::span<const double> view =
      static_cast<const SharedModel&>(model).wild_view();
  EXPECT_EQ(view.size(), 8u);
  EXPECT_EQ(view[3], 1.5);
  EXPECT_EQ(view[5], -2.0);
  model.wild_view()[3] = 4.25;
  EXPECT_EQ(model.load(3), 4.25);
  std::vector<double> scratch;
  model.snapshot_into(scratch);
  EXPECT_EQ(scratch, model.snapshot());
  EXPECT_EQ(scratch[3], 4.25);
}

/// Frozen pre-wild-view inner loop: margin through relaxed atomic loads,
/// update through per-element add() with the out-of-line subgradient — the
/// exact code the solvers ran before the fast lane existed.
void frozen_atomic_step(SharedModel& model, sparse::SparseVectorView x,
                        double label, const objectives::Objective& objective,
                        double step, const objectives::Regularization& reg,
                        UpdatePolicy policy) {
  const double margin = model.sparse_dot(x);
  const double g = objective.gradient_scale(margin, label);
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const std::size_t c = idx[j];
    const double wc = model.load(c);
    model.add(c, -step * (g * val[j] + reg.subgradient(wc)), policy);
  }
}

TEST(WildView, FusedKernelPathMatchesFrozenAtomicLoopBitForBit) {
  const objectives::LogisticLoss loss;
  data::SyntheticSpec spec;
  spec.rows = 300;
  spec.dim = 120;
  spec.mean_row_nnz = 8;
  const auto data = data::generate(spec);

  for (const auto& reg :
       {objectives::Regularization::none(), objectives::Regularization::l1(1e-3),
        objectives::Regularization::l2(1e-3)}) {
    SharedModel atomic_model(data.dim());
    SharedModel wild_model(data.dim());
    const std::span<double> wv = wild_model.wild_view();
    const double eta_l1 = reg.eta_l1();
    const double eta_l2 = reg.eta_l2();
    util::Rng rng(99);
    for (std::size_t t = 0; t < 2000; ++t) {
      const std::size_t i = util::uniform_index(rng, data.rows());
      const auto x = data.row(i);
      const double step = 0.5 / (1.0 + static_cast<double>(t) / 500.0);
      frozen_atomic_step(atomic_model, x, data.label(i), loss, step, reg,
                         UpdatePolicy::kWild);
      const double margin = sparse::sparse_dot(wv, x);
      const double g = loss.gradient_scale(margin, data.label(i));
      sparse::sparse_dot_residual_axpy(wv, x, step, g, eta_l1, eta_l2);
    }
    const auto a = atomic_model.snapshot();
    const auto b = wild_model.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j], b[j]) << "reg=" << reg.name() << " j=" << j;
    }
  }
}

class WildViewSolverParity : public ::testing::Test {
 protected:
  WildViewSolverParity()
      : data_([] {
          data::SyntheticSpec spec;
          spec.rows = 600;
          spec.dim = 200;
          spec.mean_row_nnz = 9;
          spec.target_psi = 0.8;
          return data::generate(spec);
        }()),
        trainer_(core::TrainerBuilder()
                     .data(data_)
                     .objective(loss_)
                     .l2(1e-4)
                     .eval_threads(1)
                     .build()) {}

  /// Serial run of `solver` under `policy`; returns the final model.
  std::vector<double> run(const std::string& solver, UpdatePolicy policy,
                          std::size_t batch_size = 1,
                          bool adaptive = false) const {
    SolverOptions opt;
    opt.threads = 1;
    opt.epochs = 4;
    opt.seed = 17;
    opt.step_size = 0.3;
    opt.batch_size = batch_size;
    opt.update_policy = policy;
    opt.adaptive_importance = adaptive;
    opt.keep_final_model = true;
    const Trace t = trainer_.train(solver, opt);
    EXPECT_FALSE(t.final_model.empty()) << solver;
    return t.final_model;
  }

  void expect_parity(const std::string& solver, std::size_t batch_size = 1,
                     bool adaptive = false) const {
    const auto wild = run(solver, UpdatePolicy::kWild, batch_size, adaptive);
    const auto atomic =
        run(solver, UpdatePolicy::kAtomic, batch_size, adaptive);
    ASSERT_EQ(wild.size(), atomic.size()) << solver;
    for (std::size_t j = 0; j < wild.size(); ++j) {
      ASSERT_EQ(wild[j], atomic[j]) << solver << " j=" << j;
    }
  }

  objectives::LogisticLoss loss_;
  sparse::CsrMatrix data_;
  core::Trainer trainer_;
};

TEST_F(WildViewSolverParity, IsAsgdSerialWildEqualsAtomic) {
  expect_parity("is_asgd");
}

TEST_F(WildViewSolverParity, IsAsgdMiniBatchSerialWildEqualsAtomic) {
  expect_parity("is_asgd", /*batch_size=*/3);
}

TEST_F(WildViewSolverParity, IsAsgdAdaptiveSerialWildEqualsAtomic) {
  expect_parity("is_asgd", /*batch_size=*/1, /*adaptive=*/true);
}

TEST_F(WildViewSolverParity, AsgdSerialWildEqualsAtomic) {
  expect_parity("asgd");
}

TEST_F(WildViewSolverParity, SvrgAsgdSerialWildEqualsAtomic) {
  expect_parity("svrg_asgd");
}

TEST_F(WildViewSolverParity, IsProxAsgdSerialWildEqualsAtomic) {
  // The prox map is non-additive, so kAtomic degrades to the racy
  // load→prox→store (see SharedModel::update) — serially identical real
  // arithmetic to the raw wild lane.
  expect_parity("is_prox_asgd");
}

}  // namespace
}  // namespace isasgd::solvers
