#include "sparse/csr_matrix.hpp"

#include <gtest/gtest.h>

#include "sparse/csr_builder.hpp"

namespace isasgd::sparse {
namespace {

CsrMatrix small_matrix() {
  // 3×5:
  //   row0: (0:1.0) (2:2.0)
  //   row1: (1:−1.0)
  //   row2: (0:3.0) (3:4.0) (4:5.0)
  return CsrMatrix(5, {0, 2, 3, 6}, {0, 2, 1, 0, 3, 4},
                   {1.0, 2.0, -1.0, 3.0, 4.0, 5.0}, {1.0, -1.0, 1.0});
}

TEST(CsrMatrix, BasicAccessors) {
  const CsrMatrix m = small_matrix();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.dim(), 5u);
  EXPECT_EQ(m.nnz(), 6u);
  EXPECT_DOUBLE_EQ(m.label(1), -1.0);
}

TEST(CsrMatrix, RowViewsAreCorrect) {
  const CsrMatrix m = small_matrix();
  const auto r0 = m.row(0);
  EXPECT_EQ(r0.nnz(), 2u);
  EXPECT_EQ(r0.index(1), 2u);
  EXPECT_DOUBLE_EQ(r0.value(1), 2.0);
  const auto r2 = m.row(2);
  EXPECT_EQ(r2.nnz(), 3u);
  EXPECT_DOUBLE_EQ(r2.value(0), 3.0);
}

TEST(CsrMatrix, EmptyRowsAreAllowed) {
  CsrMatrix m(3, {0, 0, 1}, {2}, {1.0}, {1.0, -1.0});
  EXPECT_EQ(m.row(0).nnz(), 0u);
  EXPECT_EQ(m.row(1).nnz(), 1u);
}

TEST(CsrMatrix, DensityAndMeanNnz) {
  const CsrMatrix m = small_matrix();
  EXPECT_DOUBLE_EQ(m.density(), 6.0 / 15.0);
  EXPECT_DOUBLE_EQ(m.mean_row_nnz(), 2.0);
}

TEST(CsrMatrix, DefaultConstructedIsEmpty) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.density(), 0.0);
}

TEST(CsrMatrix, RejectsBadRowPtrStart) {
  EXPECT_THROW(CsrMatrix(2, {1, 2}, {0}, {1.0}, {1.0}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsRowPtrLabelMismatch) {
  EXPECT_THROW(CsrMatrix(2, {0, 1}, {0}, {1.0}, {1.0, -1.0}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsRowPtrNnzMismatch) {
  EXPECT_THROW(CsrMatrix(2, {0, 2}, {0}, {1.0}, {1.0}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsDecreasingRowPtr) {
  EXPECT_THROW(
      CsrMatrix(3, {0, 2, 1, 3}, {0, 1, 2}, {1.0, 1.0, 1.0}, {1, -1, 1}),
      std::invalid_argument);
}

TEST(CsrMatrix, RejectsColumnOutOfRange) {
  EXPECT_THROW(CsrMatrix(2, {0, 1}, {5}, {1.0}, {1.0}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsUnsortedColumnsWithinRow) {
  EXPECT_THROW(
      CsrMatrix(4, {0, 2}, {3, 1}, {1.0, 1.0}, {1.0}),
      std::invalid_argument);
}

TEST(CsrMatrix, RejectsDuplicateColumnsWithinRow) {
  EXPECT_THROW(
      CsrMatrix(4, {0, 2}, {1, 1}, {1.0, 1.0}, {1.0}),
      std::invalid_argument);
}

TEST(CsrMatrix, SelectRowsExtractsAndReorders) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix sub = m.select_rows({2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.dim(), 5u);
  EXPECT_EQ(sub.row(0).nnz(), 3u);       // old row 2
  EXPECT_DOUBLE_EQ(sub.label(1), 1.0);   // old row 0
  EXPECT_DOUBLE_EQ(sub.row(1).value(0), 1.0);
}

TEST(CsrMatrix, SelectRowsAllowsRepetition) {
  const CsrMatrix m = small_matrix();
  const CsrMatrix sub = m.select_rows({1, 1, 1});
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_EQ(sub.nnz(), 3u);
}

TEST(CsrMatrix, SelectRowsRejectsOutOfRange) {
  const CsrMatrix m = small_matrix();
  EXPECT_THROW(m.select_rows({7}), std::out_of_range);
}

TEST(CsrMatrix, SummaryMentionsShape) {
  const std::string s = small_matrix().summary();
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("d=5"), std::string::npos);
}

TEST(CsrBuilder, BuildsIncrementally) {
  CsrBuilder b;
  b.add_row(std::vector<index_t>{0, 2}, std::vector<value_t>{1.0, 2.0}, 1.0);
  b.add_row(std::vector<index_t>{1}, std::vector<value_t>{-1.0}, -1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.dim(), 3u);  // inferred from max index
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(CsrBuilder, DimHintExpandsDimension) {
  CsrBuilder b(100);
  b.add_row(std::vector<index_t>{3}, std::vector<value_t>{1.0}, 1.0);
  EXPECT_EQ(b.build().dim(), 100u);
}

TEST(CsrBuilder, IndexBeyondHintGrowsDimension) {
  CsrBuilder b(2);
  b.add_row(std::vector<index_t>{9}, std::vector<value_t>{1.0}, 1.0);
  EXPECT_EQ(b.build().dim(), 10u);
}

TEST(CsrBuilder, RejectsUnsortedRow) {
  CsrBuilder b;
  EXPECT_THROW(
      b.add_row(std::vector<index_t>{2, 1}, std::vector<value_t>{1.0, 1.0}, 1.0),
      std::invalid_argument);
}

TEST(CsrBuilder, AddRowUnsortedNormalises) {
  CsrBuilder b;
  b.add_row_unsorted({5, 1, 5}, {1.0, 2.0, 3.0}, -1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.row(0).nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.row(0).value(1), 4.0);  // merged duplicates
}

TEST(CsrBuilder, IsReusableAfterBuild) {
  CsrBuilder b;
  b.add_row(std::vector<index_t>{0}, std::vector<value_t>{1.0}, 1.0);
  (void)b.build();
  EXPECT_EQ(b.rows(), 0u);
  b.add_row(std::vector<index_t>{1}, std::vector<value_t>{2.0}, -1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.dim(), 2u);
}

}  // namespace
}  // namespace isasgd::sparse
