#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "partition/balancer.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace isasgd::partition {
namespace {

std::vector<double> lognormal_weights(std::size_t n, double sigma,
                                      std::uint64_t seed) {
  std::vector<double> w(n);
  util::Rng rng(seed);
  for (auto& v : w) v = std::exp(sigma * util::normal_double(rng));
  return w;
}

bool is_permutation_of_n(const std::vector<std::uint32_t>& order,
                         std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (std::uint32_t i : order) {
    if (i >= n || seen[i]) return false;
    seen[i] = true;
  }
  return true;
}

double plan_spread(std::span<const double> weights, std::size_t parts,
                   Strategy strategy) {
  PartitionOptions opt;
  opt.strategy = strategy;
  return PartitionPlan(weights, parts, opt).imbalance();
}

TEST(KarmarkarKarp, ReturnsValidPermutation) {
  const auto w = lognormal_weights(103, 1.5, 11);
  for (std::size_t k : {1u, 2u, 3u, 7u, 16u}) {
    EXPECT_TRUE(is_permutation_of_n(karmarkar_karp_balance(w, k), w.size()))
        << "k=" << k;
  }
}

TEST(KarmarkarKarp, RejectsZeroPartitions) {
  const std::vector<double> w = {1.0, 2.0};
  EXPECT_THROW(karmarkar_karp_balance(w, 0), std::invalid_argument);
}

TEST(KarmarkarKarp, PerfectSplitWhenOneExists) {
  // {8,7,6,5,4,3,2,1} splits into two Φ=18 halves; differencing finds it.
  const std::vector<double> w = {8, 7, 6, 5, 4, 3, 2, 1};
  PartitionOptions opt;
  opt.strategy = Strategy::kKarmarkarKarp;
  PartitionPlan plan(w, 2, opt);
  EXPECT_NEAR(plan.imbalance(), 0.0, 1e-12);
  const auto phis = plan.phis();
  EXPECT_NEAR(phis[0], 18.0, 1e-12);
  EXPECT_NEAR(phis[1], 18.0, 1e-12);
}

TEST(KarmarkarKarp, SinglePartitionIsIdentity) {
  const std::vector<double> w = {3.0, 1.0, 2.0};
  const auto order = karmarkar_karp_balance(w, 1);
  EXPECT_EQ(order, identity_order(3));
}

TEST(KarmarkarKarp, HandlesIndivisibleSizes) {
  // n % k != 0: the contiguous split's shard sizes are n·(a+1)/k − n·a/k;
  // the balancer's buckets must match that pattern exactly.
  const auto w = lognormal_weights(10, 1.0, 12);
  PartitionOptions opt;
  opt.strategy = Strategy::kKarmarkarKarp;
  PartitionPlan plan(w, 4, opt);
  std::size_t total = 0;
  for (std::size_t a = 0; a < 4; ++a) total += plan.shard(a).rows.size();
  EXPECT_EQ(total, 10u);
  // Shard sizes follow the boundary pattern (2,3,2,3 for n=10, k=4).
  EXPECT_EQ(plan.shard(0).rows.size(), 2u);
  EXPECT_EQ(plan.shard(1).rows.size(), 3u);
  EXPECT_EQ(plan.shard(2).rows.size(), 2u);
  EXPECT_EQ(plan.shard(3).rows.size(), 3u);
}

TEST(KarmarkarKarp, MorePartitionsThanDistinctChunksStillValid) {
  const auto w = lognormal_weights(5, 1.0, 13);
  EXPECT_TRUE(is_permutation_of_n(karmarkar_karp_balance(w, 4), 5));
  EXPECT_TRUE(is_permutation_of_n(karmarkar_karp_balance(w, 5), 5));
}

TEST(KarmarkarKarp, BeatsIdentityOnSortedWeights) {
  std::vector<double> w(60);
  std::iota(w.begin(), w.end(), 1.0);  // ascending 1..60: worst case for none
  for (std::size_t k : {2u, 3u, 5u}) {
    EXPECT_LT(plan_spread(w, k, Strategy::kKarmarkarKarp),
              plan_spread(w, k, Strategy::kNone))
        << "k=" << k;
  }
}

TEST(KarmarkarKarp, NoWorseThanHeadTailOnSkewedDistributions) {
  // Differencing should dominate the head-tail heuristic on heavy-tailed
  // importance; compare across several seeds and sizes.
  for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    for (std::size_t n : {64u, 97u}) {
      const auto w = lognormal_weights(n, 2.0, seed);
      for (std::size_t k : {2u, 4u, 8u}) {
        const double kk = plan_spread(w, k, Strategy::kKarmarkarKarp);
        const double ht = plan_spread(w, k, Strategy::kHeadTail);
        EXPECT_LE(kk, ht + 1e-9)
            << "seed=" << seed << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(KarmarkarKarp, IsDeterministic) {
  // The balancer is pure: same weights → same permutation (no hidden RNG).
  const auto w = lognormal_weights(120, 1.5, 31);
  EXPECT_EQ(karmarkar_karp_balance(w, 6), karmarkar_karp_balance(w, 6));
}

TEST(KarmarkarKarp, LandsBetweenHeadTailAndIdentityOnLognormal) {
  // The cardinality-constrained differencing heuristic (balanced LDM) is
  // weaker than unconstrained KK: it dominates head-tail but — unlike plain
  // differencing on free-cardinality number partitioning — does not dominate
  // the capacity-respecting greedy LPT deal (ablation_balancing records the
  // measured hierarchy). Pin the relationships that do hold.
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const auto w = lognormal_weights(120, 1.5, seed);
    for (std::size_t k : {3u, 6u}) {
      const double kk = plan_spread(w, k, Strategy::kKarmarkarKarp);
      EXPECT_LE(kk, plan_spread(w, k, Strategy::kHeadTail) + 1e-9)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(KarmarkarKarp, UniformWeightsGiveNearZeroSpread) {
  std::vector<double> w(48, 2.5);
  EXPECT_NEAR(plan_spread(w, 6, Strategy::kKarmarkarKarp), 0.0, 1e-12);
}

TEST(KarmarkarKarp, StrategyNameRoundTrips) {
  EXPECT_EQ(strategy_name(Strategy::kKarmarkarKarp), "karmarkar_karp");
  EXPECT_EQ(strategy_from_name("karmarkar_karp"), Strategy::kKarmarkarKarp);
}

TEST(SplitCapacities, MatchPlanBoundaries) {
  for (std::size_t n : {1u, 7u, 10u, 23u, 100u}) {
    for (std::size_t k = 1; k <= std::min<std::size_t>(n, 9); ++k) {
      const auto caps = detail::split_capacities(n, k);
      ASSERT_EQ(caps.size(), k);
      std::size_t total = 0;
      for (std::size_t a = 0; a < k; ++a) {
        EXPECT_EQ(caps[a], n * (a + 1) / k - n * a / k);
        total += caps[a];
      }
      EXPECT_EQ(total, n);
    }
  }
}

TEST(GreedyLpt, BucketsAlignWithPlanBoundariesWhenIndivisible) {
  // Regression test for the capacity/boundary mismatch: with n=10, k=4 the
  // contiguous split takes sizes {2,3,2,3}; the greedy balancer must deal to
  // those capacities, not {3,3,2,2}, or the Φ it optimised is not the Φ the
  // shards see. With one dominant weight the mismatch is visible: the heavy
  // sample must land alone in the smallest-Φ shard.
  std::vector<double> w(10, 1.0);
  w[0] = 100.0;
  PartitionOptions opt;
  opt.strategy = Strategy::kGreedyLpt;
  PartitionPlan plan(w, 4, opt);
  const auto phis = plan.phis();
  // The heavy sample's shard should hold Φ ≈ 100 + (size−1); every other
  // shard only light samples. If capacities misalign, the heavy sample's
  // bucket spills across two shards and some Φ lands between.
  std::vector<double> sorted_phis = phis;
  std::sort(sorted_phis.begin(), sorted_phis.end());
  EXPECT_GE(sorted_phis.back(), 100.0);
  for (std::size_t a = 0; a + 1 < sorted_phis.size(); ++a) {
    EXPECT_LE(sorted_phis[a], 4.0) << "light shard " << a;
  }
}

}  // namespace
}  // namespace isasgd::partition
