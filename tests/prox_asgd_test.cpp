// Asynchronous proximal (IS-)SGD — the Hogwild prox direction of the cited
// async-proximal works, plus the SharedModel::update primitive it rides on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/model.hpp"
#include "solvers/prox_sgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;
using objectives::Regularization;

// ---------- SharedModel::update ----------

TEST(SharedModelUpdate, AppliesArbitraryTransforms) {
  SharedModel model(3);
  model.store(1, 4.0);
  model.update(1, [](double v) { return v * v; }, UpdatePolicy::kWild);
  EXPECT_DOUBLE_EQ(model.load(1), 16.0);
}

TEST(SharedModelUpdate, LockedDisciplinesLoseNothing) {
  // Non-additive transform (+1 via fn) hammered from many threads: under
  // the locked disciplines every application must land.
  for (UpdatePolicy policy : {UpdatePolicy::kStriped, UpdatePolicy::kLocked}) {
    SharedModel model(2, 8);
    constexpr int kThreads = 8, kIters = 30000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < kIters; ++i) {
          model.update(0, [](double v) { return v + 1.0; }, policy);
        }
      });
    }
    for (auto& t : pool) t.join();
    EXPECT_DOUBLE_EQ(model.load(0), double(kThreads) * kIters)
        << update_policy_name(policy);
  }
}

// ---------- prox-ASGD ----------

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;

  explicit Fixture(std::size_t rows = 1500, std::size_t dim = 400)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 10;
          spec.target_psi = 0.85;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()) {}
};

SolverOptions opts(Regularization reg, std::size_t epochs = 8) {
  SolverOptions o;
  o.epochs = epochs;
  o.step_size = 0.5;
  o.threads = 4;
  o.seed = 23;
  o.reg = reg;
  o.keep_final_model = true;
  return o;
}

TEST(ProxAsgd, ConvergesUniform) {
  Fixture f;
  const auto reg = Regularization::none();
  Evaluator ev(f.data, f.loss, reg, 4);
  const Trace t = run_prox_asgd(f.data, f.loss, opts(reg), false, ev.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.65 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "PROX-ASGD");
}

TEST(ProxAsgd, ConvergesWithImportance) {
  Fixture f;
  const auto reg = Regularization::l1(1e-5);
  Evaluator ev(f.data, f.loss, reg, 4);
  const Trace t = run_prox_asgd(f.data, f.loss, opts(reg), true, ev.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.7 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "IS-PROX-ASGD");
  EXPECT_LT(t.best_error_rate(), 0.2);
}

TEST(ProxAsgd, PerTouchProxIsWeakerThanSerialProx) {
  // The async solver can only prox a coordinate when it is touched (the
  // serial lazy-flush clock is serial state), so its shrinkage pressure is
  // λη per *touch* instead of per iteration: some exact zeros appear, but
  // far fewer than the serial solver's. Pin both the existence and the
  // direction of the gap — it is the documented approximation.
  Fixture f;
  const auto reg = Regularization::l1(5e-3);
  Evaluator ev(f.data, f.loss, reg, 4);
  ProxReport async_report, serial_report;
  (void)run_prox_asgd(f.data, f.loss, opts(reg), true, ev.as_fn(),
                      &async_report);
  (void)run_prox_sgd(f.data, f.loss, opts(reg), true, ev.as_fn(),
                     &serial_report);
  // (The async run's own zero count is race-dependent and may be 0 — only
  // the direction of the gap is deterministic.)
  EXPECT_LT(async_report.sparsity, serial_report.sparsity);
  EXPECT_GT(serial_report.sparsity, 0.05);
}

TEST(ProxAsgd, SingleThreadTracksSerialProxQuality) {
  // At one thread the async solver is serial (different sampling stream, so
  // compare quality, not bits).
  Fixture f;
  const auto reg = Regularization::l1(1e-5);
  Evaluator ev(f.data, f.loss, reg, 4);
  auto o = opts(reg);
  o.threads = 1;
  const Trace async = run_prox_asgd(f.data, f.loss, o, true, ev.as_fn());
  const Trace serial = run_prox_sgd(f.data, f.loss, o, true, ev.as_fn());
  EXPECT_NEAR(async.points.back().rmse, serial.points.back().rmse,
              0.15 * serial.points.back().rmse);
}

TEST(ProxAsgd, AllPoliciesConverge) {
  Fixture f(1000, 300);
  const auto reg = Regularization::l2(1e-4);
  Evaluator ev(f.data, f.loss, reg, 4);
  for (UpdatePolicy policy : {UpdatePolicy::kWild, UpdatePolicy::kStriped,
                              UpdatePolicy::kLocked}) {
    auto o = opts(reg, 6);
    o.update_policy = policy;
    const Trace t = run_prox_asgd(f.data, f.loss, o, true, ev.as_fn());
    EXPECT_LT(t.points.back().rmse, 0.75 * t.points.front().rmse)
        << update_policy_name(policy);
  }
}

}  // namespace
}  // namespace isasgd::solvers
