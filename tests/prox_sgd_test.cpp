// Prox operators + the Zhao–Zhang proximal (IS-)SGD solver.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "objectives/prox.hpp"
#include "solvers/prox_sgd.hpp"
#include "solvers/sgd.hpp"

namespace isasgd::solvers {
namespace {

using metrics::Evaluator;
using objectives::Regularization;

// ---------- prox operators ----------

TEST(Prox, SoftThresholdShrinksTowardZero) {
  EXPECT_DOUBLE_EQ(objectives::soft_threshold(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(objectives::soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(objectives::soft_threshold(0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(objectives::soft_threshold(-0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(objectives::soft_threshold(1.0, 1.0), 0.0);
}

TEST(Prox, MapsMatchDefinitions) {
  EXPECT_DOUBLE_EQ(objectives::prox(Regularization::none(), 2.5, 0.1), 2.5);
  EXPECT_DOUBLE_EQ(objectives::prox(Regularization::l1(2.0), 2.5, 0.1), 2.3);
  EXPECT_NEAR(objectives::prox(Regularization::l2(2.0), 2.4, 0.1),
              2.4 / 1.2, 1e-15);
}

TEST(Prox, L1ProxIsTheArgmin) {
  // prox_{t|·|}(v) minimises t|u| + (u−v)²/2; check against a grid.
  const Regularization reg = Regularization::l1(0.7);
  const double step = 0.3, v = 0.9;
  const double p = objectives::prox(reg, v, step);
  const double t = step * reg.eta;
  auto obj = [&](double u) { return t * std::abs(u) + 0.5 * (u - v) * (u - v); };
  for (double u = -2.0; u <= 2.0; u += 1e-3) {
    EXPECT_GE(obj(u) + 1e-12, obj(p)) << "u=" << u;
  }
}

// ---------- prox-SGD solver ----------

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;

  explicit Fixture(std::size_t rows = 1500, std::size_t dim = 400)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 10;
          spec.target_psi = 0.85;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()) {}
};

SolverOptions opts(Regularization reg, std::size_t epochs = 8) {
  SolverOptions o;
  o.epochs = epochs;
  o.step_size = 0.5;
  o.seed = 17;
  o.reg = reg;
  o.keep_final_model = true;
  return o;
}

TEST(ProxSgd, ConvergesWithoutRegularizer) {
  Fixture f;
  const auto reg = Regularization::none();
  Evaluator ev(f.data, f.loss, reg, 4);
  const Trace t =
      run_prox_sgd(f.data, f.loss, opts(reg), false, ev.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.65 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "PROX-SGD");
}

TEST(ProxSgd, MatchesPlainSgdWhenNoRegularizer) {
  // With kNone the prox is the identity and the update is exactly SGD's;
  // same seed → same sampling stream → bitwise-equal models.
  Fixture f(600, 200);
  const auto reg = Regularization::none();
  Evaluator ev(f.data, f.loss, reg, 4);
  const auto o = opts(reg, 4);
  const Trace sgd = run_sgd(f.data, f.loss, o, ev.as_fn());
  const Trace prox = run_prox_sgd(f.data, f.loss, o, false, ev.as_fn());
  ASSERT_EQ(sgd.final_model.size(), prox.final_model.size());
  for (std::size_t j = 0; j < sgd.final_model.size(); ++j) {
    ASSERT_EQ(sgd.final_model[j], prox.final_model[j]) << "coord " << j;
  }
}

TEST(ProxSgd, L1ProducesExactZeros) {
  // The subgradient treatment oscillates around zero; the prox hard-zeroes.
  Fixture f;
  const auto reg = Regularization::l1(5e-3);
  Evaluator ev(f.data, f.loss, reg, 4);
  ProxReport prox_report;
  const Trace prox =
      run_prox_sgd(f.data, f.loss, opts(reg), false, ev.as_fn(), &prox_report);
  EXPECT_GT(prox_report.sparsity, 0.05);
  std::size_t exact_zeros = 0;
  for (double v : prox.final_model) exact_zeros += v == 0.0;
  EXPECT_GT(exact_zeros, 0u);

  const Trace sub = run_sgd(f.data, f.loss, opts(reg), ev.as_fn());
  std::size_t sub_zeros = 0;
  for (double v : sub.final_model) sub_zeros += v == 0.0;
  // Touched coordinates under the subgradient treatment essentially never
  // land on exact zero; the prox model must be strictly sparser.
  EXPECT_GT(exact_zeros, sub_zeros);
}

TEST(ProxSgd, StrongerL1GivesSparserModels) {
  Fixture f;
  double prev_sparsity = -1;
  for (double eta : {1e-4, 1e-3, 1e-2}) {
    const auto reg = Regularization::l1(eta);
    Evaluator ev(f.data, f.loss, reg, 4);
    ProxReport report;
    (void)run_prox_sgd(f.data, f.loss, opts(reg, 5), false, ev.as_fn(),
                       &report);
    EXPECT_GE(report.sparsity, prev_sparsity) << "eta=" << eta;
    prev_sparsity = report.sparsity;
  }
  EXPECT_GT(prev_sparsity, 0.5);  // heavy L1 kills most coordinates
}

TEST(ProxSgd, ImportanceVariantConverges) {
  Fixture f;
  const auto reg = Regularization::l1(1e-4);
  Evaluator ev(f.data, f.loss, reg, 4);
  const Trace t = run_prox_sgd(f.data, f.loss, opts(reg), true, ev.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.7 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "IS-PROX-SGD");
  EXPECT_GT(t.setup_seconds, 0.0);  // sequence pre-generation is accounted
}

TEST(ProxSgd, L2ProxMatchesClosedFormShrinkage) {
  // One epoch over a single-row dataset: every step is analytic.
  sparse::CsrMatrix data = [] {
    data::SyntheticSpec spec;
    spec.rows = 1;
    spec.dim = 2;
    spec.mean_row_nnz = 2;
    spec.nnz_dispersion = 0;
    return data::generate(spec);
  }();
  objectives::LogisticLoss loss;
  const auto reg = Regularization::l2(0.5);
  Evaluator ev(data, loss, reg, 1);
  auto o = opts(reg, 1);
  o.step_size = 0.1;
  const Trace t = run_prox_sgd(data, loss, o, false, ev.as_fn());
  // Every coordinate was either touched (prox applied per step) or caught
  // up by the flush — in both cases |w_j| must be bounded by the shrinkage
  // fixed point |g|·λ/(1−1/(1+λη)) and finite.
  for (double v : t.final_model) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace isasgd::solvers
