#include "solvers/solver.hpp"
#include "solvers/saga.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/asgd.hpp"
#include "solvers/sgd.hpp"
#include "solvers/svrg_sgd.hpp"

namespace isasgd::solvers {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator;

  explicit Fixture(std::size_t rows = 1200, std::size_t dim = 150)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 10;
          spec.target_psi = 0.93;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}

  SolverOptions options(std::size_t epochs = 8, double lambda = 0.3) const {
    SolverOptions opt;
    opt.step_size = lambda;
    opt.epochs = epochs;
    opt.seed = 31;
    return opt;
  }
};

double final_rmse(const Trace& t) { return t.points.back().rmse; }
double initial_rmse(const Trace& t) { return t.points.front().rmse; }

TEST(Saga, ReducesObjectiveSubstantially) {
  Fixture f;
  const Trace t = run_saga(f.data, f.loss, f.options(), f.evaluator.as_fn());
  EXPECT_EQ(t.algorithm, "SAGA");
  EXPECT_LT(final_rmse(t), 0.7 * initial_rmse(t));
}

TEST(Saga, IsDeterministicPerSeed) {
  Fixture f(400, 80);
  const auto opt = f.options(3);
  const Trace a = run_saga(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace b = run_saga(f.data, f.loss, opt, f.evaluator.as_fn());
  for (std::size_t e = 0; e < a.points.size(); ++e) {
    EXPECT_DOUBLE_EQ(a.points[e].rmse, b.points[e].rmse);
  }
}

TEST(Saga, TracksSvrgQualityPerEpoch) {
  // Both are variance-reduced; at equal budgets their per-epoch quality
  // should be in the same ballpark.
  Fixture f;
  const auto opt = f.options(6, 0.3);
  const Trace saga = run_saga(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace svrg = run_svrg_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_NEAR(final_rmse(saga), final_rmse(svrg),
              0.15 * final_rmse(svrg) + 0.03);
}

TEST(Saga, NoWorseThanSgdPerEpoch) {
  Fixture f;
  const auto opt = f.options(8, 0.3);
  const Trace saga = run_saga(f.data, f.loss, opt, f.evaluator.as_fn());
  const Trace sgd = run_sgd(f.data, f.loss, opt, f.evaluator.as_fn());
  EXPECT_LE(final_rmse(saga), final_rmse(sgd) * 1.10 + 0.02);
}

TEST(Saga, PaysTheDenseAggregateCost) {
  // The §1.2 bottleneck applies to SAGA exactly as to SVRG: per-epoch cost
  // grows with d while the index-compressed ASGD stays flat.
  Fixture narrow(800, 200);
  Fixture wide(800, 8000);
  auto opt = narrow.options(2, 0.3);
  const double narrow_s =
      run_saga(narrow.data, narrow.loss, opt, narrow.evaluator.as_fn())
          .train_seconds;
  const double wide_s =
      run_saga(wide.data, wide.loss, opt, wide.evaluator.as_fn())
          .train_seconds;
  EXPECT_GT(wide_s, 5.0 * narrow_s);
  const double asgd_narrow =
      run_asgd(narrow.data, narrow.loss, opt, narrow.evaluator.as_fn())
          .train_seconds;
  const double asgd_wide =
      run_asgd(wide.data, wide.loss, opt, wide.evaluator.as_fn())
          .train_seconds;
  EXPECT_LT(asgd_wide, 5.0 * asgd_narrow + 0.05);
}

TEST(Saga, L2RegularizationStaysStable) {
  Fixture f;
  auto opt = f.options(5, 0.2);
  opt.reg = objectives::Regularization::l2(1e-3);
  metrics::Evaluator ev(f.data, f.loss, opt.reg, 4);
  const Trace t = run_saga(f.data, f.loss, opt, ev.as_fn());
  EXPECT_TRUE(std::isfinite(final_rmse(t)));
  EXPECT_LT(final_rmse(t), initial_rmse(t));
}

TEST(Saga, RegisteredInSolverRegistry) {
  const Solver* s = SolverRegistry::instance().find("saga");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->name(), "SAGA");
}

}  // namespace
}  // namespace isasgd::solvers
