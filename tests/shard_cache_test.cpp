// ShardCache prefetch retry: a transient loader failure heals on the
// background lane without ever blocking a consumer; a persistent one still
// falls through to get()'s synchronous reload, which surfaces it unchanged.
// The retry budget is Options::prefetch_retries (0 = the legacy drop-on-
// first-failure behaviour) with util::Backoff pacing the attempts.
#include "data/shard_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace isasgd::data {
namespace {

ShardPtr make_shard(std::size_t s) {
  auto shard = std::make_shared<Shard>();
  shard->index = s;
  shard->row_begin = s;
  shard->matrix = std::make_shared<sparse::CsrMatrix>(
      /*dim=*/2, std::vector<std::size_t>{0, 1},
      std::vector<sparse::index_t>{0}, std::vector<sparse::value_t>{1.0},
      std::vector<sparse::value_t>{1.0});
  return shard;
}

/// Loader whose first `failures` calls per shard throw, then succeed.
struct FlakyLoader {
  explicit FlakyLoader(std::size_t failures) : failures_left(failures) {}
  std::atomic<std::size_t> failures_left;
  std::atomic<std::size_t> calls{0};

  ShardPtr operator()(std::size_t s) {
    ++calls;
    std::size_t left = failures_left.load();
    while (left > 0 && !failures_left.compare_exchange_weak(left, left - 1)) {
    }
    if (left > 0) throw std::runtime_error("transient shard read failure");
    return make_shard(s);
  }
};

ShardCache::Options fast_retry_options(std::size_t retries) {
  ShardCache::Options opt;
  opt.prefetch_retries = retries;
  opt.retry_backoff.initial_ms = 0.1;
  opt.retry_backoff.max_ms = 1.0;
  opt.retry_backoff.seed = 5;
  return opt;
}

TEST(ShardCachePrefetchRetry, TransientFailureHealsOnTheBackgroundLane) {
  util::ThreadPool pool;
  auto loader = std::make_shared<FlakyLoader>(2);
  ShardCache cache(
      4, fast_retry_options(/*retries=*/3),
      [loader](std::size_t s) { return (*loader)(s); }, &pool);
  cache.prefetch(1);
  pool.drain_background();
  const CacheStats after_prefetch = cache.stats();
  EXPECT_EQ(after_prefetch.prefetch_issued, 1u);
  EXPECT_EQ(after_prefetch.prefetch_retries, 2u);
  EXPECT_EQ(after_prefetch.resident_shards, 1u);
  // The consumer never notices: a plain hit on the healed prefetch.
  const ShardPtr shard = cache.get(1);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->index, 1u);
  const CacheStats after_get = cache.stats();
  EXPECT_EQ(after_get.misses, 0u);
  EXPECT_EQ(after_get.prefetch_hits, 1u);
  EXPECT_EQ(loader->calls.load(), 3u);
}

TEST(ShardCachePrefetchRetry, ZeroRetriesKeepsTheLegacyDrop) {
  util::ThreadPool pool;
  auto loader = std::make_shared<FlakyLoader>(1);
  ShardCache cache(
      4, fast_retry_options(/*retries=*/0),
      [loader](std::size_t s) { return (*loader)(s); }, &pool);
  cache.prefetch(1);
  pool.drain_background();
  const CacheStats after_prefetch = cache.stats();
  EXPECT_EQ(after_prefetch.prefetch_retries, 0u);
  EXPECT_EQ(after_prefetch.resident_shards, 0u);
  // The dropped claim leaves the demand path to reload (and succeed).
  const ShardPtr shard = cache.get(1);
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(loader->calls.load(), 2u);
}

TEST(ShardCachePrefetchRetry, PersistentFailureSurfacesThroughGet) {
  util::ThreadPool pool;
  // Fails far past the retry budget: the prefetch burns 1 + retries calls,
  // drops its claim, and get()'s synchronous reload rethrows.
  auto loader = std::make_shared<FlakyLoader>(100);
  ShardCache cache(
      4, fast_retry_options(/*retries=*/2),
      [loader](std::size_t s) { return (*loader)(s); }, &pool);
  cache.prefetch(1);
  pool.drain_background();
  EXPECT_EQ(cache.stats().prefetch_retries, 2u);
  EXPECT_EQ(loader->calls.load(), 3u);
  EXPECT_THROW((void)cache.get(1), std::runtime_error);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ShardCachePrefetchRetry, EpochDeltaCoversRetriesWithoutPerturbingDepth) {
  util::ThreadPool pool;
  auto loader = std::make_shared<FlakyLoader>(1);
  ShardCache cache(
      4, fast_retry_options(/*retries=*/1),
      [loader](std::size_t s) { return (*loader)(s); }, &pool);
  const std::size_t depth_before = cache.prefetch_depth();
  cache.prefetch(1);
  pool.drain_background();
  (void)cache.get(1);
  cache.end_epoch();
  // Retries feed observability only — a healed prefetch must not read as
  // cache trouble to the autotuner (no misses, no races: depth holds).
  EXPECT_EQ(cache.prefetch_depth(), depth_before);
  EXPECT_EQ(cache.stats().prefetch_retries, 1u);
}

}  // namespace
}  // namespace isasgd::data
