// Determinism guarantees:
//
//   1. Every serial solver is a pure function of (data, options): two runs
//      with the same seed produce bit-identical final models.
//   2. The streaming machinery never changes arithmetic: training from a
//      StreamingSource (with a budget smaller than the dataset, so shards
//      really are evicted and re-read) follows the same loss trajectory as
//      a chunked InMemorySource with the same shard geometry — and both
//      end within the acceptance gate (1e-6 relative) of the classic
//      in-memory path's final loss on the same seed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "io/binary.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "solvers/solver.hpp"
#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

struct TempFile {
  explicit TempFile(const std::string& tag) {
    path = (std::filesystem::temp_directory_path() /
            ("isasgd_det_" + tag + "_" + std::to_string(::getpid()) + ".bin"))
               .string();
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

sparse::CsrMatrix classification_dataset() {
  data::SyntheticSpec spec;
  spec.rows = 400;
  spec.dim = 120;
  spec.mean_row_nnz = 8;
  spec.seed = 7;
  return data::generate(spec);
}

TEST(SerialDeterminism, SameSeedGivesBitIdenticalFinalModels) {
  const auto data = classification_dataset();
  objectives::LogisticLoss loss;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .l2(1e-3)
                                    .eval_threads(1)
                                    .build();
  solvers::SolverOptions opt;
  opt.epochs = 4;
  opt.step_size = 0.3;
  opt.seed = 1234;
  opt.keep_final_model = true;

  const auto& registry = solvers::SolverRegistry::instance();
  std::size_t serial_solvers = 0;
  for (const std::string& name : registry.list()) {
    if (!registry.get(name).capabilities().serial()) continue;
    ++serial_solvers;
    const auto first = trainer.train(name, opt);
    const auto second = trainer.train(name, opt);
    ASSERT_EQ(first.final_model.size(), data.dim()) << name;
    ASSERT_EQ(first.points.size(), second.points.size()) << name;
    for (std::size_t j = 0; j < first.final_model.size(); ++j) {
      // Bit-identical, not approximately equal: EXPECT_EQ on doubles.
      ASSERT_EQ(first.final_model[j], second.final_model[j])
          << name << " coordinate " << j;
    }
    for (std::size_t e = 0; e < first.points.size(); ++e) {
      ASSERT_EQ(first.points[e].objective, second.points[e].objective)
          << name << " epoch " << e;
    }
  }
  EXPECT_GE(serial_solvers, 7u);  // SGD, IS-SGD, 3×SVRG/SAG/SAGA, prox pair
}

TEST(SimulatedDeterminism, DistAndSimSolversAreBitPureAcrossReruns) {
  // Every simulated_time solver is a discrete-event engine on a single
  // thread: two runs with the same seed must agree bit-for-bit — final
  // model, per-epoch objectives, *and* the simulated time axis. The
  // registry is enumerated at runtime so newly registered simulated solvers
  // are covered automatically.
  const auto data = classification_dataset();
  objectives::LogisticLoss loss;
  distributed::ClusterSpec cluster;
  cluster.nodes = 3;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .l2(1e-3)
                                    .eval_threads(1)
                                    .cluster(cluster)
                                    .build();
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.3;
  opt.seed = 20260728;
  opt.keep_final_model = true;
  // A stochastic delay law so the sim.delayed_* delay RNG stream is
  // genuinely exercised (kNone would leave it untouched).
  opt.delay_law = solvers::SolverOptions::DelayLaw::kUniform;
  opt.delay_tau = 16;

  const auto& registry = solvers::SolverRegistry::instance();
  std::size_t simulated_solvers = 0;
  for (const std::string& name : registry.list()) {
    if (!registry.get(name).capabilities().simulated_time) continue;
    ++simulated_solvers;
    const auto first = trainer.train(name, opt);
    const auto second = trainer.train(name, opt);
    EXPECT_TRUE(first.simulated_time) << name;
    ASSERT_EQ(first.final_model.size(), data.dim()) << name;
    ASSERT_EQ(first.points.size(), second.points.size()) << name;
    for (std::size_t j = 0; j < first.final_model.size(); ++j) {
      ASSERT_EQ(first.final_model[j], second.final_model[j])
          << name << " coordinate " << j;
    }
    for (std::size_t e = 0; e < first.points.size(); ++e) {
      ASSERT_EQ(first.points[e].objective, second.points[e].objective)
          << name << " epoch " << e;
      // The simulated clock is part of the contract, unlike host seconds.
      ASSERT_EQ(first.points[e].seconds, second.points[e].seconds)
          << name << " epoch " << e;
    }
    ASSERT_EQ(first.train_seconds, second.train_seconds) << name;
  }
  // dist.ps.{is_asgd,asgd}, dist.allreduce.sgd, sim.delayed_{sgd,is_sgd}.
  EXPECT_GE(simulated_solvers, 5u);
}

TEST(StreamingDeterminism, StreamingSgdIsBitPureAcrossRuns) {
  const auto data = classification_dataset();
  TempFile file("rerun");
  io::write_dataset_binary_file(file.path, data);
  data::StreamingOptions sopt;
  sopt.shard_rows = 64;
  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.3;
  opt.seed = 99;
  opt.keep_final_model = true;

  std::vector<double> first;
  for (int run = 0; run < 2; ++run) {
    const data::StreamingSource source(file.path, sopt);
    const core::Trainer trainer = core::TrainerBuilder()
                                      .source(source)
                                      .objective(loss)
                                      .l2(1e-3)
                                      .eval_threads(1)
                                      .build();
    const auto trace = trainer.train("SGD", opt);
    if (run == 0) {
      first = trace.final_model;
    } else {
      ASSERT_EQ(first.size(), trace.final_model.size());
      for (std::size_t j = 0; j < first.size(); ++j) {
        ASSERT_EQ(first[j], trace.final_model[j]) << "coordinate " << j;
      }
    }
  }
}

/// Strongly-convex least-squares problem on which the classic-vs-sharded
/// comparison can meet the 1e-6 relative gate: every path converges to the
/// unique optimum, so visit-order differences wash out.
sparse::CsrMatrix least_squares_dataset() {
  util::Rng rng(31415);
  sparse::CsrBuilder builder(24);
  std::vector<sparse::index_t> idx(24);
  std::vector<sparse::value_t> val(24);
  const double scale = 1.0 / std::sqrt(24.0);
  for (std::size_t i = 0; i < 768; ++i) {
    double margin = 0;
    for (std::size_t j = 0; j < 24; ++j) {
      idx[j] = static_cast<sparse::index_t>(j);
      val[j] = scale * (2.0 * util::uniform_double(rng) - 1.0) * 1.7;
      margin += val[j] * 0.5;
    }
    builder.add_row({idx.data(), idx.size()}, {val.data(), val.size()},
                    margin + 0.01 * (2.0 * util::uniform_double(rng) - 1.0));
  }
  return builder.build();
}

TEST(StreamingDeterminism, StreamingMatchesInMemoryTrajectoryAndFinalLoss) {
  const auto data = least_squares_dataset();
  TempFile file("parity");
  io::write_dataset_binary_file(file.path, data);

  constexpr std::size_t kShardRows = 96;  // 8 shards
  data::StreamingOptions sopt;
  sopt.shard_rows = kShardRows;
  // Budget ≈ 3 shards: far smaller than the dataset, so the cache must
  // evict and re-read shards every epoch — the out-of-core regime.
  sopt.memory_budget_bytes =
      3 * (kShardRows * 24 * (sizeof(sparse::index_t) + sizeof(double)));
  const data::StreamingSource streaming(file.path, sopt);
  const data::InMemorySource chunked(data, kShardRows);
  const data::InMemorySource classic(data);

  objectives::LeastSquaresLoss loss;
  solvers::SolverOptions opt;
  // Long anneal: a geometric step decay freezes SGD's noise floor at the
  // final step size, so meeting a 1e-6 *relative* final-loss gate needs
  // λ_final ≈ 1e-7 — 220 epochs of 0.93-decay from 0.5 (cheap here: d=24).
  opt.epochs = 220;
  opt.step_size = 0.5;
  opt.step_decay = 0.93;
  opt.seed = 271828;
  opt.keep_final_model = true;

  auto train = [&](const data::DataSource& source) {
    const core::Trainer trainer = core::TrainerBuilder()
                                      .source(source)
                                      .objective(loss)
                                      .l2(0.1)
                                      .eval_threads(1)
                                      .build();
    return trainer.train("SGD", opt);
  };

  const auto from_stream = train(streaming);
  const auto from_chunked = train(chunked);
  const auto from_classic = train(classic);

  // The dataset did not fit the budget: evictions actually happened.
  const auto stats = *streaming.cache_stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.resident_bytes, sopt.memory_budget_bytes + 1);

  // Same shard geometry ⇒ identical schedule ⇒ identical arithmetic: the
  // loss trajectory matches the in-memory reference to fp tolerance at
  // every epoch, no matter what the cache/prefetch machinery did.
  ASSERT_EQ(from_stream.points.size(), from_chunked.points.size());
  for (std::size_t e = 0; e < from_stream.points.size(); ++e) {
    EXPECT_NEAR(from_stream.points[e].objective,
                from_chunked.points[e].objective,
                1e-12 * std::max(1.0, from_chunked.points[e].objective))
        << "epoch " << e;
  }
  for (std::size_t j = 0; j < from_stream.final_model.size(); ++j) {
    ASSERT_EQ(from_stream.final_model[j], from_chunked.final_model[j]);
  }

  // Acceptance gate: the streaming run's final loss is within 1e-6 relative
  // of the in-memory path on the same seed (same schedule, RAM-served
  // shards) — in fact bit-identical, so the gate holds with 6 orders of
  // margin.
  const double f_stream = from_stream.points.back().objective;
  const double f_chunked = from_chunked.points.back().objective;
  EXPECT_NEAR(f_stream, f_chunked, 1e-6 * f_chunked);

  // Cross-policy sanity: the classic single-shard path samples *with*
  // replacement, so it anneals to a slightly different noise floor — the
  // two finals agree only to the floor's magnitude (~1e-5 relative here),
  // not to fp precision. Both sit on the same strongly-convex optimum.
  const double f_classic = from_classic.points.back().objective;
  EXPECT_NEAR(f_stream, f_classic, 5e-4 * f_classic);
}

TEST(StreamingDeterminism, SingleShardGeometryMatchesClassicPathExactly) {
  // shard_rows >= rows collapses any source to one shard; both backends
  // must then dispatch the classic in-memory kernel (SolverContext::
  // sharded() is false), so streaming-from-file and training-from-RAM are
  // bit-identical even at the degenerate geometry.
  const auto data = classification_dataset();
  TempFile file("oneshard");
  io::write_dataset_binary_file(file.path, data);
  data::StreamingOptions sopt;
  sopt.shard_rows = data.rows() * 2;
  const data::StreamingSource streaming(file.path, sopt);
  ASSERT_EQ(streaming.shard_count(), 1u);

  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.3;
  opt.seed = 17;
  opt.keep_final_model = true;
  auto train = [&](auto&& configure) {
    core::TrainerBuilder builder;
    configure(builder);
    return builder.objective(loss).l2(1e-3).eval_threads(1).build().train(
        "SGD", opt);
  };
  const auto classic =
      train([&](core::TrainerBuilder& b) { b.data(data); });
  const auto streamed =
      train([&](core::TrainerBuilder& b) { b.source(streaming); });
  ASSERT_EQ(classic.final_model.size(), streamed.final_model.size());
  for (std::size_t j = 0; j < classic.final_model.size(); ++j) {
    ASSERT_EQ(classic.final_model[j], streamed.final_model[j]);
  }
}

TEST(StreamingDeterminism, AsyncStreamingConvergesOutOfCore) {
  const auto data = classification_dataset();
  TempFile file("async");
  io::write_dataset_binary_file(file.path, data);
  data::StreamingOptions sopt;
  sopt.shard_rows = 64;
  sopt.memory_budget_bytes = 1;  // worst case: nothing is ever reused
  util::ThreadPool pool;
  const data::StreamingSource source(file.path, sopt, &pool);

  objectives::LogisticLoss loss;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .source(source)
                                    .objective(loss)
                                    .l2(1e-3)
                                    .eval_threads(1)
                                    .build();
  solvers::SolverOptions opt;
  opt.epochs = 6;
  opt.step_size = 0.3;
  opt.threads = 3;
  opt.seed = 5;
  const auto trace = trainer.train("ASGD", opt);
  EXPECT_LT(trace.points.back().objective, trace.points.front().objective);
  EXPECT_LT(trace.points.back().error_rate, 0.35);
}

}  // namespace
}  // namespace isasgd
