// Dataset transforms and their effect on the IS-governing quantities
// (ψ of Eq. 15, ρ of Eq. 20).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bounds.hpp"
#include "data/synthetic.hpp"
#include "data/transforms.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "partition/importance.hpp"
#include "solvers/sgd.hpp"
#include "sparse/csr_builder.hpp"

namespace isasgd::data {
namespace {

sparse::CsrMatrix make_data(std::size_t rows = 500, std::size_t dim = 300,
                            double psi = 0.8) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.dim = dim;
  spec.mean_row_nnz = 8;
  spec.target_psi = psi;
  spec.label_noise = 0.02;
  return generate(spec);
}

std::vector<double> lipschitz_of(const sparse::CsrMatrix& m) {
  objectives::LogisticLoss loss;
  return objectives::per_sample_lipschitz(m, loss,
                                          objectives::Regularization::none());
}

// ---------- l2_normalize_rows ----------

TEST(Normalize, AllRowNormsBecomeOne) {
  const auto m = l2_normalize_rows(make_data());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_NEAR(m.row(i).norm(), 1.0, 1e-9) << "row " << i;
  }
}

TEST(Normalize, PsiBecomesExactlyOneAndRhoZero) {
  // Normalisation deletes the IS mechanism: every L_i equal.
  const auto raw = make_data(500, 300, 0.7);
  const auto normalized = l2_normalize_rows(raw);
  const auto raw_psi = analysis::psi(lipschitz_of(raw));
  const auto norm_psi = analysis::psi(lipschitz_of(normalized));
  EXPECT_LT(raw_psi, 0.95);  // the generator really did spread L
  EXPECT_NEAR(norm_psi, 1.0, 1e-9);
  EXPECT_NEAR(partition::importance_variance(lipschitz_of(normalized)), 0.0,
              1e-12);
}

TEST(Normalize, PreservesStructureAndLabels) {
  const auto raw = make_data();
  const auto m = l2_normalize_rows(raw);
  ASSERT_EQ(m.rows(), raw.rows());
  ASSERT_EQ(m.dim(), raw.dim());
  ASSERT_EQ(m.nnz(), raw.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    EXPECT_EQ(m.label(i), raw.label(i));
    const auto a = m.row(i).indices();
    const auto b = raw.row(i).indices();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(Normalize, KeepsZeroNormRowsUntouched) {
  sparse::CsrBuilder builder(4);
  const std::vector<std::uint32_t> none{};
  const std::vector<double> empty{};
  builder.add_row(none, empty, 1.0);
  const std::vector<std::uint32_t> idx{1u};
  const std::vector<double> val{2.0};
  builder.add_row(idx, val, -1.0);
  const auto m = l2_normalize_rows(builder.build());
  EXPECT_EQ(m.row(0).indices().size(), 0u);
  EXPECT_NEAR(m.row(1).norm(), 1.0, 1e-12);
}

// ---------- scale_values ----------

TEST(Scale, PsiInvariantRhoQuartic) {
  const auto raw = make_data(400, 250, 0.8);
  const auto scaled = scale_values(raw, 3.0);
  const auto raw_l = lipschitz_of(raw);
  const auto scaled_l = lipschitz_of(scaled);
  EXPECT_NEAR(analysis::psi(raw_l), analysis::psi(scaled_l), 1e-9);
  const double raw_rho = partition::importance_variance(raw_l);
  const double scaled_rho = partition::importance_variance(scaled_l);
  // L_i scales by c² = 9 ⇒ ρ (a variance of L) scales by c⁴ = 81.
  EXPECT_NEAR(scaled_rho / raw_rho, 81.0, 81.0 * 1e-6);
}

TEST(Scale, RejectsDegenerateFactors) {
  const auto m = make_data(10, 20);
  EXPECT_THROW((void)scale_values(m, 0.0), std::invalid_argument);
  EXPECT_THROW((void)scale_values(m, std::nan("")), std::invalid_argument);
}

// ---------- hash_features ----------

TEST(Hash, ReducesDimensionKeepsRowsAndLabels) {
  const auto raw = make_data(300, 5000);
  const auto hashed = hash_features(raw, 256);
  EXPECT_EQ(hashed.dim(), 256u);
  ASSERT_EQ(hashed.rows(), raw.rows());
  for (std::size_t i = 0; i < raw.rows(); ++i) {
    EXPECT_EQ(hashed.label(i), raw.label(i));
    EXPECT_LE(hashed.row(i).indices().size(), raw.row(i).indices().size());
  }
}

TEST(Hash, ApproximatelyPreservesRowNorms) {
  // Signed hashing is norm-preserving in expectation; with nnz ≈ 8 rows in
  // 4096 buckets, collisions are rare and per-row norms stay close.
  const auto raw = make_data(300, 5000);
  const auto hashed = hash_features(raw, 4096);
  double worst = 0, mean = 0;
  for (std::size_t i = 0; i < raw.rows(); ++i) {
    const double r = raw.row(i).squared_norm();
    const double h = hashed.row(i).squared_norm();
    const double rel = std::abs(h - r) / std::max(r, 1e-12);
    worst = std::max(worst, rel);
    mean += rel;
  }
  mean /= static_cast<double>(raw.rows());
  // A within-row collision (prob ≈ nnz²/2/buckets per row) can cancel two
  // values and halve that row's norm; the typical row is untouched.
  EXPECT_LT(worst, 1.0);
  EXPECT_LT(mean, 0.02);
  const double psi_raw = analysis::psi(lipschitz_of(raw));
  const double psi_hashed = analysis::psi(lipschitz_of(hashed));
  EXPECT_NEAR(psi_raw, psi_hashed, 0.05);  // the IS story survives hashing
}

TEST(Hash, DeterministicInSeedAndSensitiveToIt) {
  const auto raw = make_data(50, 500);
  const auto a = hash_features(raw, 128, 1);
  const auto b = hash_features(raw, 128, 1);
  const auto c = hash_features(raw, 128, 2);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
  EXPECT_NE(a.col_idx(), c.col_idx());
}

TEST(Hash, RejectsZeroBuckets) {
  EXPECT_THROW((void)hash_features(make_data(5, 10), 0),
               std::invalid_argument);
}

TEST(Hash, TrainableAfterHashing) {
  // End-to-end: hashed features still support learning the planted labels.
  const auto raw = make_data(1500, 4000, 0.9);
  const auto hashed = hash_features(raw, 1024);
  objectives::LogisticLoss loss;
  metrics::Evaluator ev(hashed, loss, objectives::Regularization::none(), 4);
  solvers::SolverOptions opt;
  opt.epochs = 6;
  opt.step_size = 0.5;
  const auto t = solvers::run_sgd(hashed, loss, opt, ev.as_fn());
  EXPECT_LT(t.best_error_rate(), 0.2);
}

// ---------- subsample_rows ----------

TEST(Subsample, KeepsRoughlyTheRequestedFraction) {
  const auto raw = make_data(2000, 100);
  const auto half = subsample_rows(raw, 0.5, 9);
  EXPECT_GT(half.rows(), 800u);
  EXPECT_LT(half.rows(), 1200u);
  EXPECT_EQ(half.dim(), raw.dim());
}

TEST(Subsample, FullFractionKeepsEverything) {
  const auto raw = make_data(100, 50);
  const auto all = subsample_rows(raw, 1.0, 9);
  EXPECT_EQ(all.rows(), raw.rows());
  EXPECT_EQ(all.nnz(), raw.nnz());
}

TEST(Subsample, AlwaysKeepsAtLeastOneRow) {
  const auto raw = make_data(20, 50);
  const auto tiny = subsample_rows(raw, 1e-9, 9);
  EXPECT_GE(tiny.rows(), 1u);
}

TEST(Subsample, RejectsBadFractions) {
  const auto raw = make_data(10, 20);
  EXPECT_THROW((void)subsample_rows(raw, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)subsample_rows(raw, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace isasgd::data
