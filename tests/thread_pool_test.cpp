#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/model.hpp"
#include "solvers/observer.hpp"
#include "solvers/trace.hpp"

namespace isasgd::util {
namespace {

solvers::EvalFn null_eval() {
  return [](std::span<const double>) { return solvers::EvalResult{}; };
}

TEST(ThreadPool, RunsEveryTidExactlyOnce) {
  ThreadPool pool;
  std::vector<std::atomic<int>> hits(13);
  pool.run(13, [&](std::size_t tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TeamOfOneRunsInlineWithoutSpawning) {
  ThreadPool pool;
  bool ran = false;
  pool.run(1, [&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(pool.threads_spawned(), 0u);
  EXPECT_EQ(pool.jobs_dispatched(), 1u);
}

TEST(ThreadPool, ReusesWorkersAcrossJobs) {
  ThreadPool pool;
  const std::size_t team = 4;
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.run(team, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), static_cast<int>(team));
  }
  // The reuse contract: workers are spawned once, never per job.
  EXPECT_EQ(pool.threads_spawned(), team);
  EXPECT_EQ(pool.capacity(), team);
  EXPECT_EQ(pool.jobs_dispatched(), 20u);
}

TEST(ThreadPool, OversubscriptionClampBoundsOsThreads) {
  ThreadPool pool(0, {.max_workers = 2});
  EXPECT_EQ(pool.max_workers(), 2u);
  std::vector<std::atomic<int>> hits(16);
  std::mutex mu;
  std::set<std::thread::id> os_threads;
  pool.run(16, [&](std::size_t tid) {
    hits[tid].fetch_add(1);
    const std::lock_guard<std::mutex> lock(mu);
    os_threads.insert(std::this_thread::get_id());
  });
  // Every logical tid executed exactly once...
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // ...on a clamped number of OS threads.
  EXPECT_LE(os_threads.size(), 2u);
  EXPECT_LE(pool.threads_spawned(), 2u);
}

TEST(ThreadPool, GrowsOnDemandUpToLargerTeams) {
  ThreadPool pool;
  pool.run(2, [](std::size_t) {});
  EXPECT_EQ(pool.threads_spawned(), 2u);
  pool.run(5, [](std::size_t) {});
  EXPECT_EQ(pool.threads_spawned(), 5u);
  // Shrinking the team spawns nothing new.
  pool.run(3, [](std::size_t) {});
  EXPECT_EQ(pool.threads_spawned(), 5u);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool;
  EXPECT_THROW(
      pool.run(3,
               [&](std::size_t tid) {
                 if (tid == 1) throw std::runtime_error("boom");
               }),
      std::runtime_error);
  // The pool survives a throwing job and stays usable.
  std::atomic<int> count{0};
  pool.run(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool;
  std::atomic<int> inner_total{0};
  pool.run(2, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::on_worker_thread());
    // A nested dispatch from a worker serialises instead of deadlocking.
    pool.run(4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8);
}

TEST(ThreadPool, ConcurrentDriversSerialiseSafely) {
  // Two application threads sharing one pool (the documented
  // shared-ExecutionContext pattern): jobs must serialise on the dispatch
  // lock, never corrupt each other's team bookkeeping.
  ThreadPool pool;
  std::atomic<int> total{0};
  auto driver = [&] {
    for (int i = 0; i < 50; ++i) {
      pool.run(3, [&](std::size_t) { total.fetch_add(1); });
    }
  };
  std::thread a(driver);
  std::thread b(driver);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 50 * 3);
}

TEST(ThreadPool, ReservePreSpawnsWithoutDispatching) {
  ThreadPool pool;
  pool.reserve(4);
  EXPECT_EQ(pool.threads_spawned(), 4u);
  EXPECT_EQ(pool.jobs_dispatched(), 0u);
  pool.reserve(1);  // no-op
  pool.reserve(4);  // already satisfied
  EXPECT_EQ(pool.threads_spawned(), 4u);
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  ThreadPool& a = default_thread_pool();
  ThreadPool& b = default_thread_pool();
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------------------
// Epoch-fence driver on the pool
// ---------------------------------------------------------------------------

/// Observer that counts epochs and optionally stops after `stop_after`.
class FenceProbe : public solvers::TrainingObserver {
 public:
  explicit FenceProbe(std::vector<std::atomic<std::size_t>>* progress,
                      std::size_t stop_after = 0)
      : progress_(progress), stop_after_(stop_after) {}

  bool on_epoch(const solvers::TracePoint& p) override {
    if (progress_ && p.epoch > 0) {
      // Fence contract: when epoch e is recorded, EVERY worker has finished
      // exactly e epochs — no worker is mid-epoch or ahead.
      for (auto& done : *progress_) EXPECT_EQ(done.load(), p.epoch);
    }
    ++epochs_seen_;
    return stop_after_ == 0 || p.epoch < stop_after_;
  }

  std::size_t epochs_seen() const { return epochs_seen_; }

 private:
  std::vector<std::atomic<std::size_t>>* progress_;
  std::size_t stop_after_;
  std::size_t epochs_seen_ = 0;
};

TEST(EpochFence, OrderingAllWorkersQuiescentAtEveryFence) {
  ThreadPool pool;
  const std::size_t threads = 3, epochs = 6;
  solvers::SharedModel model(4);
  std::vector<std::atomic<std::size_t>> progress(threads);
  FenceProbe probe(&progress);
  solvers::TraceRecorder recorder("fence-test", threads, 0.1, null_eval(),
                                  &probe);
  const double seconds = solvers::detail::run_epoch_fenced(
      pool, model, recorder, epochs, threads,
      [&](std::size_t tid, std::size_t epoch) {
        EXPECT_EQ(progress[tid].load(), epoch - 1);  // release ordering
        progress[tid].fetch_add(1);
      });
  EXPECT_GE(seconds, 0.0);
  const auto trace = std::move(recorder).finish(seconds);
  EXPECT_EQ(trace.points.size(), epochs + 1);  // epoch 0 + each fence
  for (auto& done : progress) EXPECT_EQ(done.load(), epochs);
}

TEST(EpochFence, EarlyStopDrainsMidRunAndPoolStaysUsable) {
  ThreadPool pool;
  const std::size_t threads = 2, epochs = 10, stop_after = 3;
  solvers::SharedModel model(4);
  std::vector<std::atomic<std::size_t>> progress(threads);
  FenceProbe probe(&progress, stop_after);
  solvers::TraceRecorder recorder("stop-test", threads, 0.1, null_eval(),
                                  &probe);
  (void)solvers::detail::run_epoch_fenced(
      pool, model, recorder, epochs, threads,
      [&](std::size_t tid, std::size_t) { progress[tid].fetch_add(1); });
  // Drained exactly at the stop fence: no worker ran a single extra epoch.
  for (auto& done : progress) EXPECT_EQ(done.load(), stop_after);
  const auto trace = std::move(recorder).finish(0.0);
  EXPECT_EQ(trace.points.size(), stop_after + 1);
  // The pool is immediately reusable for the next run.
  std::atomic<int> count{0};
  pool.run(threads, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), static_cast<int>(threads));
}


TEST(ThreadPoolBackground, SubmitRunsTasksOffTheCallingThread) {
  ThreadPool pool;
  std::atomic<int> ran{0};
  std::atomic<bool> on_caller{false};
  const auto caller = std::this_thread::get_id();
  for (int i = 0; i < 32; ++i) {
    pool.submit([&, caller] {
      if (std::this_thread::get_id() == caller) on_caller = true;
      ran.fetch_add(1);
    });
  }
  pool.drain_background();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_FALSE(on_caller.load());
  EXPECT_GE(pool.background_threads(), 1u);
}

TEST(ThreadPoolBackground, LaneIsDisjointFromFencedWorkers) {
  ThreadPool pool;
  pool.run(4, [](std::size_t) {});
  const auto fenced = pool.threads_spawned();
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.drain_background();
  // Background work spawned no fenced workers and vice versa.
  EXPECT_EQ(pool.threads_spawned(), fenced);
  EXPECT_GE(pool.background_threads(), 1u);
  // The fenced lane still works while background tasks are queued.
  std::atomic<int> count{0};
  pool.submit([&] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  pool.run(4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
  pool.drain_background();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolBackground, ExceptionLandsInTheFutureNotTheProcess) {
  ThreadPool pool;
  auto future = pool.submit([] { throw std::runtime_error("background"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // A dropped future (prefetch-style fire-and-forget) must not terminate.
  pool.submit([] { throw std::runtime_error("dropped"); });
  pool.drain_background();
  // Still serviceable afterwards.
  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });
  pool.drain_background();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolBackground, SecondWorkerSpawnsWhileFirstIsBusy) {
  ThreadPoolOptions options;
  options.background_workers = 2;
  ThreadPool pool(0, options);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> second_ran{false};
  pool.submit([gate] { gate.wait(); });  // occupies worker 1
  pool.submit([&] { second_ran = true; });
  // Demand counts the executing task, so worker 2 spawns and runs the
  // second task while the first is still blocked.
  for (int spin = 0; spin < 2000 && !second_ran; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(second_ran.load());
  release.set_value();
  pool.drain_background();
  EXPECT_EQ(pool.background_threads(), 2u);
}

TEST(ThreadPoolBackground, DestructorRunsEveryEnqueuedTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool;
    for (int i = 0; i < 16; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      });
    }
    // No drain: destruction must execute the queued tasks, not drop them.
  }
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace isasgd::util
