#include "sparse/sparse_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isasgd::sparse {
namespace {

TEST(SparseVector, ConstructsFromSortedPairs) {
  SparseVector v({1, 5, 9}, {1.0, -2.0, 3.0});
  EXPECT_EQ(v.nnz(), 3u);
  EXPECT_EQ(v.indices()[1], 5u);
  EXPECT_DOUBLE_EQ(v.values()[2], 3.0);
}

TEST(SparseVector, RejectsSizeMismatch) {
  EXPECT_THROW(SparseVector({1, 2}, {1.0}), std::invalid_argument);
}

TEST(SparseVector, RejectsUnsortedIndices) {
  EXPECT_THROW(SparseVector({5, 1}, {1.0, 2.0}), std::invalid_argument);
}

TEST(SparseVector, RejectsDuplicateIndices) {
  EXPECT_THROW(SparseVector({3, 3}, {1.0, 2.0}), std::invalid_argument);
}

TEST(SparseVector, EmptyVectorIsValid) {
  SparseVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.norm(), 0.0);
}

TEST(SparseVector, FromUnsortedSortsIndices) {
  SparseVector v = SparseVector::from_unsorted({9, 1, 5}, {3.0, 1.0, 2.0});
  EXPECT_EQ(v.indices(), (std::vector<index_t>{1, 5, 9}));
  EXPECT_EQ(v.values(), (std::vector<value_t>{1.0, 2.0, 3.0}));
}

TEST(SparseVector, FromUnsortedMergesDuplicates) {
  SparseVector v = SparseVector::from_unsorted({4, 4, 2}, {1.0, 2.5, 7.0});
  EXPECT_EQ(v.indices(), (std::vector<index_t>{2, 4}));
  EXPECT_DOUBLE_EQ(v.values()[1], 3.5);
}

TEST(SparseVector, FromDenseCompresses) {
  std::vector<value_t> dense = {0.0, 1.5, 0.0, 0.0, -2.0};
  SparseVector v = SparseVector::from_dense(dense);
  EXPECT_EQ(v.indices(), (std::vector<index_t>{1, 4}));
  EXPECT_DOUBLE_EQ(v.values()[0], 1.5);
}

TEST(SparseVector, FromDenseRespectsTolerance) {
  std::vector<value_t> dense = {0.05, 1.0, -0.02};
  SparseVector v = SparseVector::from_dense(dense, 0.1);
  EXPECT_EQ(v.nnz(), 1u);
  EXPECT_EQ(v.indices()[0], 1u);
}

TEST(SparseVector, ToDenseRoundTrips) {
  SparseVector v({0, 3}, {2.0, -1.0});
  const auto dense = v.to_dense(5);
  EXPECT_EQ(dense, (std::vector<value_t>{2.0, 0.0, 0.0, -1.0, 0.0}));
  SparseVector back = SparseVector::from_dense(dense);
  EXPECT_EQ(back.indices(), v.indices());
  EXPECT_EQ(back.values(), v.values());
}

TEST(SparseVector, ToDenseRejectsSmallDim) {
  SparseVector v({0, 3}, {2.0, -1.0});
  EXPECT_THROW(v.to_dense(3), std::out_of_range);
}

TEST(SparseVector, NormsMatchDenseComputation) {
  SparseVector v({1, 2, 7}, {3.0, 4.0, 12.0});
  EXPECT_DOUBLE_EQ(v.squared_norm(), 9 + 16 + 144);
  EXPECT_DOUBLE_EQ(v.norm(), 13.0);
}

TEST(SparseDot, DisjointSupportsGiveZero) {
  SparseVector a({0, 2}, {1.0, 1.0});
  SparseVector b({1, 3}, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(dot(a.view(), b.view()), 0.0);
}

TEST(SparseDot, OverlappingSupportsAccumulate) {
  SparseVector a({0, 2, 5}, {1.0, 2.0, 3.0});
  SparseVector b({2, 5, 9}, {4.0, -1.0, 10.0});
  EXPECT_DOUBLE_EQ(dot(a.view(), b.view()), 2.0 * 4.0 + 3.0 * -1.0);
}

TEST(SparseDot, EmptyOperandGivesZero) {
  SparseVector a({1}, {2.0});
  SparseVector empty;
  EXPECT_DOUBLE_EQ(dot(a.view(), empty.view()), 0.0);
}

TEST(SparseDot, IsSymmetric) {
  SparseVector a({0, 3, 4}, {1.0, -2.0, 0.5});
  SparseVector b({0, 4, 8}, {3.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(dot(a.view(), b.view()), dot(b.view(), a.view()));
}

TEST(SparseVectorView, DefaultIsEmpty) {
  SparseVectorView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.nnz(), 0u);
}

}  // namespace
}  // namespace isasgd::sparse
