// Parameterised property sweeps over the extension modules: sampler
// agreement, delay-law moments, partition-strategy invariants, prox maps.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "objectives/prox.hpp"
#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "sampling/cdf_sampler.hpp"
#include "sampling/fenwick_sampler.hpp"
#include "simulate/delay_model.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

// ---------- sampler agreement across weight shapes ----------

enum class WeightShape { kUniform, kLinear, kLognormal, kOneHeavy, kManyZeros };

std::string shape_name(WeightShape s) {
  switch (s) {
    case WeightShape::kUniform: return "uniform";
    case WeightShape::kLinear: return "linear";
    case WeightShape::kLognormal: return "lognormal";
    case WeightShape::kOneHeavy: return "one_heavy";
    case WeightShape::kManyZeros: return "many_zeros";
  }
  return "?";
}

std::vector<double> make_weights(WeightShape shape, std::size_t n,
                                 std::uint64_t seed) {
  std::vector<double> w(n, 1.0);
  util::Rng rng(seed);
  switch (shape) {
    case WeightShape::kUniform:
      break;
    case WeightShape::kLinear:
      for (std::size_t i = 0; i < n; ++i) w[i] = double(i + 1);
      break;
    case WeightShape::kLognormal:
      for (auto& v : w) v = std::exp(2.0 * util::normal_double(rng));
      break;
    case WeightShape::kOneHeavy:
      for (auto& v : w) v = 1e-6;
      w[n / 2] = 1.0;
      break;
    case WeightShape::kManyZeros:
      for (std::size_t i = 0; i < n; ++i) w[i] = (i % 3 == 0) ? 1.0 : 0.0;
      break;
  }
  return w;
}

class SamplerAgreement
    : public ::testing::TestWithParam<std::tuple<WeightShape, std::size_t>> {};

TEST_P(SamplerAgreement, AllThreeSamplersMatchTheTrueDistribution) {
  const auto [shape, n] = GetParam();
  const auto weights = make_weights(shape, n, 17);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  sampling::AliasTable alias(weights);
  sampling::CdfSampler cdf(weights);
  sampling::FenwickSampler fenwick(weights);
  util::Rng r1(5), r2(5), r3(5);
  constexpr int kDraws = 120000;
  std::vector<int> c1(n), c2(n), c3(n);
  for (int i = 0; i < kDraws; ++i) {
    ++c1[alias.sample(r1)];
    ++c2[cdf.sample(r2)];
    ++c3[fenwick.sample(r3)];
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double p = weights[k] / total;
    // 5σ binomial band plus a discreteness floor (a single stray draw of a
    // near-zero-probability outcome is 1/kDraws, far above its σ band).
    const double tol = 5 * std::sqrt((p + 1e-9) / kDraws) + 3.0 / kDraws;
    EXPECT_NEAR(c1[k] / double(kDraws), p, tol) << "alias outcome " << k;
    EXPECT_NEAR(c2[k] / double(kDraws), p, tol) << "cdf outcome " << k;
    EXPECT_NEAR(c3[k] / double(kDraws), p, tol) << "fenwick outcome " << k;
    if (p == 0.0) {
      EXPECT_EQ(c1[k], 0);
      EXPECT_EQ(c2[k], 0);
      EXPECT_EQ(c3[k], 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesTimesSizes, SamplerAgreement,
    ::testing::Combine(::testing::Values(WeightShape::kUniform,
                                         WeightShape::kLinear,
                                         WeightShape::kLognormal,
                                         WeightShape::kOneHeavy,
                                         WeightShape::kManyZeros),
                       ::testing::Values(std::size_t{16}, std::size_t{257})),
    [](const auto& info) {
      return shape_name(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- delay-law moments ----------

class DelayMoments
    : public ::testing::TestWithParam<
          std::tuple<simulate::DelayKind, std::size_t>> {};

TEST_P(DelayMoments, EmpiricalMeanMatchesDeclaredMean) {
  const auto [kind, tau] = GetParam();
  const simulate::DelayModel model{kind, tau};
  util::Rng rng(23);
  constexpr int kDraws = 150000;
  double sum = 0;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(model.draw(rng));
  }
  const double mean = sum / kDraws;
  const double declared = model.mean();
  // Geometric has std ≈ mean; uniform std ≈ tau/√12 — 5σ/√N bands.
  const double spread =
      kind == simulate::DelayKind::kGeometric
          ? declared + 1.0
          : static_cast<double>(tau) / std::sqrt(12.0) + 1.0;
  EXPECT_NEAR(mean, declared, 5 * spread / std::sqrt(double(kDraws)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    KindsTimesTaus, DelayMoments,
    ::testing::Combine(::testing::Values(simulate::DelayKind::kNone,
                                         simulate::DelayKind::kFixed,
                                         simulate::DelayKind::kUniform,
                                         simulate::DelayKind::kGeometric),
                       ::testing::Values(std::size_t{0}, std::size_t{7},
                                         std::size_t{64})),
    [](const auto& info) {
      return simulate::delay_kind_name(std::get<0>(info.param)) + "_tau" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- partition-strategy invariants ----------

class StrategyInvariants
    : public ::testing::TestWithParam<
          std::tuple<partition::Strategy, std::size_t>> {};

TEST_P(StrategyInvariants, PlansConserveMassAndCoverEveryRow) {
  const auto [strategy, parts] = GetParam();
  std::vector<double> lipschitz(101);
  util::Rng rng(31);
  for (auto& v : lipschitz) v = std::exp(1.5 * util::normal_double(rng));
  const double total = std::accumulate(lipschitz.begin(), lipschitz.end(), 0.0);

  partition::PartitionOptions opt;
  opt.strategy = strategy;
  const partition::PartitionPlan plan(lipschitz, parts, opt);

  // Every row appears exactly once across the shards.
  std::vector<int> seen(lipschitz.size(), 0);
  double phi_total = 0;
  for (std::size_t a = 0; a < parts; ++a) {
    const auto shard = plan.shard(a);
    phi_total += shard.phi;
    double local_p = 0;
    for (std::size_t k = 0; k < shard.rows.size(); ++k) {
      ++seen[shard.rows[k]];
      EXPECT_DOUBLE_EQ(shard.lipschitz[k], lipschitz[shard.rows[k]]);
      local_p += shard.probabilities[k];
    }
    if (!shard.rows.empty()) {
      EXPECT_NEAR(local_p, 1.0, 1e-9) << "shard " << a;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 1) << "row " << i;
  }
  // Σ Φ_a equals the total importance mass.
  EXPECT_NEAR(phi_total, total, 1e-9 * total);
  EXPECT_GE(plan.imbalance(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesTimesParts, StrategyInvariants,
    ::testing::Combine(::testing::Values(partition::Strategy::kNone,
                                         partition::Strategy::kShuffle,
                                         partition::Strategy::kHeadTail,
                                         partition::Strategy::kGreedyLpt,
                                         partition::Strategy::kKarmarkarKarp,
                                         partition::Strategy::kAdaptive),
                       ::testing::Values(std::size_t{1}, std::size_t{3},
                                         std::size_t{8})),
    [](const auto& info) {
      return partition::strategy_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- prox maps ----------

class ProxProperties
    : public ::testing::TestWithParam<objectives::Regularization::Kind> {
 protected:
  objectives::Regularization reg() const {
    using K = objectives::Regularization::Kind;
    switch (GetParam()) {
      case K::kNone: return objectives::Regularization::none();
      case K::kL1: return objectives::Regularization::l1(0.7);
      case K::kL2: return objectives::Regularization::l2(0.7);
    }
    return objectives::Regularization::none();
  }
};

TEST_P(ProxProperties, NonExpansive) {
  // prox of a convex regularizer is 1-Lipschitz (firmly non-expansive).
  const auto r = reg();
  for (double step : {0.01, 0.5, 2.0}) {
    for (double a = -3.0; a <= 3.0; a += 0.37) {
      for (double b = -3.0; b <= 3.0; b += 0.41) {
        const double pa = objectives::prox(r, a, step);
        const double pb = objectives::prox(r, b, step);
        EXPECT_LE(std::abs(pa - pb), std::abs(a - b) + 1e-12)
            << "step=" << step << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(ProxProperties, ShrinksTowardZeroAndFixesZero) {
  const auto r = reg();
  EXPECT_DOUBLE_EQ(objectives::prox(r, 0.0, 0.5), 0.0);
  for (double v : {-2.0, -0.1, 0.3, 4.0}) {
    const double p = objectives::prox(r, v, 0.5);
    EXPECT_LE(std::abs(p), std::abs(v) + 1e-15);
    EXPECT_GE(p * v, 0.0);  // never crosses zero
  }
}

TEST_P(ProxProperties, ZeroStepIsIdentity) {
  const auto r = reg();
  for (double v : {-1.5, 0.0, 2.25}) {
    EXPECT_DOUBLE_EQ(objectives::prox(r, v, 0.0), v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ProxProperties,
    ::testing::Values(objectives::Regularization::Kind::kNone,
                      objectives::Regularization::Kind::kL1,
                      objectives::Regularization::Kind::kL2),
    [](const auto& info) {
      using K = objectives::Regularization::Kind;
      switch (info.param) {
        case K::kNone: return std::string("none");
        case K::kL1: return std::string("l1");
        case K::kL2: return std::string("l2");
      }
      return std::string("?");
    });

}  // namespace
}  // namespace isasgd
