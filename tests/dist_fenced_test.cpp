// Fenced round-robin simulator (Schedule::kFencedRoundRobin): determinism,
// convergence, and report semantics. These runs are the reference half of
// the bit-identity contract exercised end-to-end by dist_process_test.cpp —
// here we pin down the simulator itself.
#include <gtest/gtest.h>

#include <vector>

#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "distributed/fenced.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"

namespace isasgd::distributed {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator;

  explicit Fixture(std::size_t rows = 400, std::size_t dim = 80)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 6;
          spec.target_psi = 0.85;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 1) {}
};

solvers::SolverOptions base_options() {
  solvers::SolverOptions opt;
  opt.step_size = 0.3;
  opt.epochs = 4;
  opt.seed = 42;
  opt.keep_final_model = true;
  return opt;
}

ClusterSpec fenced_spec(std::size_t nodes = 3) {
  ClusterSpec spec;
  spec.nodes = nodes;
  spec.schedule = Schedule::kFencedRoundRobin;
  return spec;
}

TEST(FencedPs, SameSeedIsBitIdenticalAcrossRuns) {
  Fixture fx;
  const auto opt = base_options();
  const auto spec = fenced_spec();
  const solvers::Trace a = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  const solvers::Trace b = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  for (std::size_t j = 0; j < a.final_model.size(); ++j) {
    ASSERT_EQ(a.final_model[j], b.final_model[j]) << "coordinate " << j;
  }
}

TEST(FencedPs, DifferentSeedsDiverge) {
  Fixture fx;
  auto opt = base_options();
  const auto spec = fenced_spec();
  const solvers::Trace a = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, true, fx.evaluator.as_fn());
  opt.seed = 43;
  const solvers::Trace b = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, true, fx.evaluator.as_fn());
  EXPECT_NE(a.final_model, b.final_model);
}

TEST(FencedPs, ConvergesAndReportsZeroStaleness) {
  Fixture fx;
  auto opt = base_options();
  opt.epochs = 8;
  ParamServerReport report;
  const solvers::Trace trace = run_param_server_fenced(
      fx.data, fx.loss, opt, fenced_spec(), /*use_importance=*/true,
      fx.evaluator.as_fn(), &report);
  ASSERT_GE(trace.points.size(), 2u);
  EXPECT_LT(trace.points.back().objective, trace.points.front().objective);
  // Fenced semantics: every gradient is computed against the model it is
  // applied to.
  EXPECT_EQ(report.mean_staleness_updates, 0.0);
  // One push per drawn sample, k nodes × epochs × per-node quota = n·epochs.
  EXPECT_EQ(report.messages, opt.epochs * fx.data.rows());
  EXPECT_TRUE(trace.simulated_time);
}

TEST(FencedPs, ShardedSourceMatchesDeterministically) {
  Fixture fx;
  const data::InMemorySource chunked(fx.data, /*shard_rows=*/64);
  metrics::Evaluator ev(chunked, fx.loss, objectives::Regularization::none(),
                        1);
  const auto opt = base_options();
  const auto spec = fenced_spec();
  const solvers::Trace a = run_param_server_fenced_sharded(
      chunked, fx.loss, opt, spec, /*use_importance=*/true, ev.as_fn());
  const solvers::Trace b = run_param_server_fenced_sharded(
      chunked, fx.loss, opt, spec, /*use_importance=*/true, ev.as_fn());
  ASSERT_FALSE(a.final_model.empty());
  EXPECT_EQ(a.final_model, b.final_model);
}

TEST(FencedAllreduce, SameSeedIsBitIdenticalAndConverges) {
  Fixture fx;
  auto opt = base_options();
  opt.batch_size = 8;
  opt.epochs = 8;
  const auto spec = fenced_spec();
  AllreduceReport ra;
  const solvers::Trace a = run_allreduce_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn(), &ra);
  AllreduceReport rb;
  const solvers::Trace b = run_allreduce_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn(), &rb);
  EXPECT_EQ(a.final_model, b.final_model);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_GT(ra.rounds, 0u);
  EXPECT_LT(a.points.back().objective, a.points.front().objective);
}

TEST(FencedPs, RegistryDispatchesFencedScheduleThroughTrainer) {
  Fixture fx(200, 50);
  const auto spec = fenced_spec(2);
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(fx.data)
                                    .objective(fx.loss)
                                    .cluster(spec)
                                    .eval_threads(1)
                                    .build();
  auto opt = base_options();
  opt.epochs = 2;
  const solvers::Trace via_trainer = trainer.train("dist.ps.is_asgd", opt);
  metrics::Evaluator ev(fx.data, fx.loss, objectives::Regularization::none(),
                        1);
  const solvers::Trace direct = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true, ev.as_fn());
  EXPECT_EQ(via_trainer.final_model, direct.final_model);
}

}  // namespace
}  // namespace isasgd::distributed
