// NUMA placement layer: cpulist parsing, topology detection, stripe-map
// geometry, LPT shard→node balance, the striped SharedModel's bit identity
// with the flat one, and worker pinning through the ThreadPool.
//
// The logic is exercised against fake multi-node topologies — the machines
// this suite usually runs on have one node, where placement is by design
// inactive (and the pinning tests only assert best-effort behaviour).
#include "core/numa.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/model.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::core {
namespace {

/// A fake 2-node box: node0 owns CPUs {0,1}, node1 owns {2,3}.
NumaTopology fake_two_node() {
  NumaTopology topo;
  topo.nodes.push_back(NumaNode{0, {0, 1}});
  topo.nodes.push_back(NumaNode{1, {2, 3}});
  return topo;
}

TEST(Cpulist, ParsesRangesAndSingles) {
  EXPECT_EQ(parse_cpulist("0-3,8,10-11\n"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(parse_cpulist(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpulist("  2-2 , 0 \n"), (std::vector<int>{0, 2}));
  // Malformed chunks are skipped, valid ones kept, duplicates collapsed.
  EXPECT_EQ(parse_cpulist("garbage,3,3-4"), (std::vector<int>{3, 4}));
}

TEST(Topology, DetectFindsAtLeastOneNodeWithCpus) {
  const NumaTopology topo = NumaTopology::detect();
  ASSERT_GE(topo.node_count(), 1u);
  for (const NumaNode& node : topo.nodes) {
    EXPECT_FALSE(node.cpus.empty()) << "node" << node.id;
  }
  EXPECT_GE(topo.total_cpus(), 1u);
}

TEST(Topology, SingleNodeFallbackShape) {
  const NumaTopology topo = NumaTopology::single_node(4);
  ASSERT_EQ(topo.node_count(), 1u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Policy, AutoActivatesOnlyMultiNode) {
  const NumaPolicy auto_single{NumaOptions{}, NumaTopology::single_node(4)};
  EXPECT_FALSE(auto_single.active());
  const NumaPolicy auto_multi{NumaOptions{}, fake_two_node()};
  EXPECT_TRUE(auto_multi.active());
  const NumaPolicy off{NumaOptions{NumaOptions::Mode::kOff},
                       fake_two_node()};
  EXPECT_FALSE(off.active());
  const NumaPolicy on{NumaOptions{NumaOptions::Mode::kOn},
                      NumaTopology::single_node(1)};
  EXPECT_TRUE(on.active());
}

TEST(Stripes, CoverDimContiguouslyWithPageAlignedBoundaries) {
  for (const std::size_t dim : {std::size_t{1} << 20, std::size_t{100000},
                                std::size_t{513}, std::size_t{512},
                                std::size_t{7}}) {
    for (const std::size_t nodes : {1u, 2u, 3u, 8u}) {
      const StripeMap map = StripeMap::build(dim, nodes);
      ASSERT_EQ(map.stripes.size(), nodes);
      std::size_t expect_begin = 0;
      for (std::size_t n = 0; n < nodes; ++n) {
        const Stripe& s = map.stripes[n];
        EXPECT_EQ(s.begin, expect_begin) << dim << "/" << nodes;
        EXPECT_LE(s.begin, s.end);
        // Interior boundaries land on page quanta; only dim may truncate.
        if (s.end != dim) {
          EXPECT_EQ(s.end % kStripeAlign, 0u);
        }
        EXPECT_EQ(s.node, static_cast<int>(n));
        expect_begin = s.end;
      }
      EXPECT_EQ(map.stripes.back().end, dim);
      // node_of agrees with the stripe table at the boundaries.
      for (const Stripe& s : map.stripes) {
        if (s.begin < s.end) {
          EXPECT_EQ(map.node_of(s.begin), s.node);
          EXPECT_EQ(map.node_of(s.end - 1), s.node);
        }
      }
    }
  }
  EXPECT_EQ(StripeMap::build(0, 4).stripes.size(), 4u);
}

TEST(Lpt, BalancesKnownCase) {
  // Φ = {1,2,3,4} over two nodes: LPT yields loads {4+1, 3+2} = {5, 5}.
  const std::vector<double> phis = {1, 2, 3, 4};
  const std::vector<int> assign = assign_shards_to_nodes(phis, 2);
  ASSERT_EQ(assign.size(), 4u);
  std::vector<double> load(2, 0.0);
  for (std::size_t s = 0; s < phis.size(); ++s) {
    ASSERT_GE(assign[s], 0);
    ASSERT_LT(assign[s], 2);
    load[static_cast<std::size_t>(assign[s])] += phis[s];
  }
  EXPECT_DOUBLE_EQ(load[0], 5.0);
  EXPECT_DOUBLE_EQ(load[1], 5.0);
}

TEST(Lpt, SkewedMassStaysBounded) {
  util::Rng rng(42);
  std::vector<double> phis(64);
  for (auto& p : phis) p = 1.0 + 10.0 * util::uniform_double(rng);
  const std::size_t nodes = 4;
  const std::vector<int> assign = assign_shards_to_nodes(phis, nodes);
  std::vector<double> load(nodes, 0.0);
  for (std::size_t s = 0; s < phis.size(); ++s) {
    load[static_cast<std::size_t>(assign[s])] += phis[s];
  }
  const double total = std::accumulate(phis.begin(), phis.end(), 0.0);
  const double mean = total / static_cast<double>(nodes);
  // LPT guarantees ≤ 4/3·OPT; with 64 shards over 4 nodes it lands far
  // closer, but assert only the hard bound.
  for (const double l : load) EXPECT_LE(l, mean * 4.0 / 3.0 + 1e-9);
  EXPECT_EQ(assign_shards_to_nodes({}, 4), std::vector<int>{});
}

TEST(Placement, InactiveWithoutPolicyOrOnSingleNodeAuto) {
  EXPECT_FALSE(plan_placement(nullptr, {}, 100).active);
  const NumaPolicy single{NumaOptions{}, NumaTopology::single_node(2)};
  EXPECT_FALSE(plan_placement(&single, {}, 100).active);
  const NumaPolicy off{NumaOptions{NumaOptions::Mode::kOff}, fake_two_node()};
  EXPECT_FALSE(plan_placement(&off, {}, 100).active);
}

TEST(Placement, ActivePlanHasConsistentMaps) {
  const NumaPolicy policy{NumaOptions{}, fake_two_node()};
  const std::vector<double> phis = {3.0, 1.0, 2.0, 2.0};
  const NumaPlacement plan = plan_placement(&policy, phis, 4096);
  ASSERT_TRUE(plan.active);
  EXPECT_EQ(plan.stripes.dim, 4096u);
  EXPECT_EQ(plan.stripes.stripes.size(), 2u);
  ASSERT_EQ(plan.shard_nodes.size(), 4u);
  // Both nodes get work under this mass profile.
  EXPECT_NE(plan.shard_nodes[0], plan.shard_nodes[2]);
  EXPECT_FALSE(plan.describe().empty());
}

TEST(Placement, WorkerCpuPlanPinsToOwningNode) {
  const NumaPolicy policy{NumaOptions{}, fake_two_node()};
  const std::vector<double> phis = {1.0, 1.0, 1.0, 1.0};
  const NumaPlacement plan = plan_placement(&policy, phis, 1 << 14);
  const std::vector<int> cpus = worker_cpu_plan(plan, 4);
  ASSERT_EQ(cpus.size(), 4u);
  for (std::size_t t = 0; t < 4; ++t) {
    const auto node =
        static_cast<std::size_t>(plan.shard_nodes[t]);
    const auto& owned = plan.topology.nodes[node].cpus;
    EXPECT_NE(std::find(owned.begin(), owned.end(), cpus[t]), owned.end())
        << "worker " << t;
  }
  // Inactive plan: no pins.
  EXPECT_TRUE(worker_cpu_plan(NumaPlacement{}, 4).empty());
}

TEST(StripedModel, BitIdenticalToFlatModel) {
  const std::size_t dim = 3000;  // spans two stripes of the fake topology
  const NumaPolicy policy{NumaOptions{NumaOptions::Mode::kOn},
                          fake_two_node()};
  const NumaPlacement plan =
      plan_placement(&policy, std::vector<double>{1.0, 1.0}, dim);
  ASSERT_TRUE(plan.active);

  solvers::SharedModel flat(dim);
  solvers::SharedModel striped(dim, plan);
  ASSERT_EQ(striped.dim(), dim);
  // Both start zeroed.
  for (std::size_t j = 0; j < dim; ++j) {
    ASSERT_EQ(striped.load(j), 0.0) << j;
  }
  // Same update stream → same bytes, through every access path.
  util::Rng rng(7);
  for (int step = 0; step < 2000; ++step) {
    const std::size_t j = util::uniform_index(rng, dim);
    const double delta = util::normal_double(rng);
    flat.add(j, delta, solvers::UpdatePolicy::kWild);
    striped.add(j, delta, solvers::UpdatePolicy::kWild);
  }
  const auto a = flat.wild_view();
  const auto b = striped.wild_view();
  for (std::size_t j = 0; j < dim; ++j) EXPECT_EQ(a[j], b[j]) << j;
}

TEST(ThreadPoolPinning, SetWorkerCpusIsBestEffortAndQueryable) {
  util::ThreadPool pool(2);
  // CPU 0 always exists; -1 leaves the second worker unpinned.
  pool.set_worker_cpus({0, -1});
  EXPECT_EQ(pool.worker_cpus(), (std::vector<int>{0, -1}));
  // Pool still runs jobs normally after pinning, including late spawns.
  std::atomic<int> hits{0};
  pool.run(4, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
  pool.set_worker_cpus({});
  EXPECT_TRUE(pool.worker_cpus().empty());
}

TEST(Integration, TrainerWithForcedNumaMatchesDefaultRun) {
  // kOn forces the striped-model + pinning paths even on this (likely
  // single-node) host; the trace must be bit-identical to the default run
  // because placement never changes arithmetic.
  data::SyntheticSpec spec;
  spec.rows = 150;
  spec.dim = 64;
  spec.mean_row_nnz = 5;
  spec.seed = 3;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.step_size = 0.3;
  opt.seed = 17;
  opt.threads = 1;
  opt.keep_final_model = true;

  const auto plain = core::TrainerBuilder()
                         .data(data)
                         .objective(loss)
                         .eval_threads(1)
                         .build()
                         .train("is_asgd", opt);
  const auto placed = core::TrainerBuilder()
                          .data(data)
                          .objective(loss)
                          .eval_threads(1)
                          .numa(NumaOptions{NumaOptions::Mode::kOn})
                          .build()
                          .train("is_asgd", opt);
  ASSERT_EQ(plain.final_model.size(), placed.final_model.size());
  for (std::size_t j = 0; j < plain.final_model.size(); ++j) {
    EXPECT_EQ(plain.final_model[j], placed.final_model[j]) << j;
  }
}

TEST(Execution, ContextExposesAndUpdatesNumaPolicy) {
  ExecutionContext ctx(1);
  EXPECT_EQ(ctx.numa_policy().options().mode, NumaOptions::Mode::kAuto);
  ctx.set_numa(NumaOptions{NumaOptions::Mode::kOff});
  EXPECT_EQ(ctx.numa_policy().options().mode, NumaOptions::Mode::kOff);
  EXPECT_FALSE(ctx.numa_policy().active());
  EXPECT_GE(ctx.numa_policy().topology().node_count(), 1u);
  EXPECT_FALSE(ctx.numa_policy().describe().empty());
}

}  // namespace
}  // namespace isasgd::core
