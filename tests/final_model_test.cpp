// keep_final_model: every solver can hand back its trained weights so they
// can be persisted (io/binary) and re-scored.
#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "io/binary.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "core/trainer.hpp"

namespace isasgd {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  core::Trainer trainer;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 600;
          spec.dim = 120;
          spec.mean_row_nnz = 8;
          return data::generate(spec);
        }()),
        trainer(data, loss, objectives::Regularization::none(), 2) {}
};

class FinalModelSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(FinalModelSweep, FinalModelIsReturnedAndScoresLikeTheTrace) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.threads = 2;
  opt.step_size = 0.3;
  opt.keep_final_model = true;
  const auto trace = f.trainer.train(GetParam(), opt);
  ASSERT_EQ(trace.final_model.size(), f.data.dim());
  // Re-scoring the returned weights must reproduce the last trace point
  // exactly (the snapshot IS what the recorder scored).
  const auto r = f.trainer.evaluate(trace.final_model);
  EXPECT_NEAR(r.rmse, trace.points.back().rmse, 1e-12);
}

TEST_P(FinalModelSweep, ModelIsOmittedByDefault) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 1;
  opt.threads = 2;
  const auto trace = f.trainer.train(GetParam(), opt);
  EXPECT_TRUE(trace.final_model.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, FinalModelSweep,
    ::testing::Values("SGD", "IS-SGD", "ASGD", "IS-ASGD", "SVRG-SGD",
                      "SVRG-ASGD", "SAGA"),
    [](const auto& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FinalModel, RoundTripsThroughBinaryPersistence) {
  Fixture f;
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.keep_final_model = true;
  const auto trace = f.trainer.train("IS-ASGD", opt);
  std::stringstream buf;
  io::write_model_binary(buf, trace.final_model);
  const auto restored = io::read_model_binary(buf);
  EXPECT_EQ(restored, trace.final_model);
  const auto r = f.trainer.evaluate(restored);
  EXPECT_NEAR(r.rmse, trace.points.back().rmse, 1e-12);
}

}  // namespace
}  // namespace isasgd
