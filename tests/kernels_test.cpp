#include "sparse/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "objectives/objective.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/rng.hpp"

namespace isasgd::sparse {
namespace {

std::vector<value_t> random_vector(std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<value_t> v(d);
  for (auto& x : v) x = util::normal_double(rng);
  return v;
}

SparseVector random_row(std::size_t d, std::size_t nnz, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<index_t> idx;
  while (idx.size() < nnz) {
    const auto j = static_cast<index_t>(util::uniform_index(rng, d));
    bool dup = false;
    for (index_t existing : idx) dup |= existing == j;
    if (!dup) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end());
  std::vector<value_t> val(nnz);
  for (auto& v : val) v = util::normal_double(rng);
  return SparseVector(std::move(idx), std::move(val));
}

TEST(SparseKernels, SparseDotMatchesDense) {
  std::vector<value_t> w = {1, 2, 3, 4, 5};
  SparseVector x({0, 3}, {10.0, -1.0});
  EXPECT_DOUBLE_EQ(sparse_dot(w, x.view()), 1 * 10.0 + 4 * -1.0);
}

TEST(SparseKernels, SparseDotEmptyIsZero) {
  std::vector<value_t> w = {1, 2};
  SparseVector x;
  EXPECT_DOUBLE_EQ(sparse_dot(w, x.view()), 0.0);
}

TEST(SparseKernels, SparseAxpyTouchesOnlySupport) {
  std::vector<value_t> w = {1, 1, 1, 1};
  SparseVector x({1, 3}, {2.0, -4.0});
  sparse_axpy(w, 0.5, x.view());
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_DOUBLE_EQ(w[3], -1.0);
}

TEST(DenseKernels, DotAndNorm) {
  std::vector<value_t> a = {3, 4};
  std::vector<value_t> b = {1, 2};
  EXPECT_DOUBLE_EQ(dense_dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(dense_norm(a), 5.0);
}

TEST(DenseKernels, AxpyAccumulates) {
  std::vector<value_t> a = {1, 1};
  std::vector<value_t> b = {2, -2};
  dense_axpy(a, 3.0, b);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], -5.0);
}

TEST(DenseKernels, Scale) {
  std::vector<value_t> a = {2, -4};
  dense_scale(a, -0.5);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(DenseKernels, SquaredDistance) {
  std::vector<value_t> a = {0, 3};
  std::vector<value_t> b = {4, 0};
  EXPECT_DOUBLE_EQ(dense_squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dense_squared_distance(a, a), 0.0);
}

TEST(DenseKernels, L1Norm) {
  std::vector<value_t> a = {1.5, -2.5, 0};
  EXPECT_DOUBLE_EQ(dense_l1_norm(a), 4.0);
}

TEST(SparseKernels, AxpyThenDotIsConsistent) {
  // w += α·x, then w·x should change by α·‖x‖².
  std::vector<value_t> w(10, 0.5);
  SparseVector x({2, 4, 8}, {1.0, -2.0, 3.0});
  const double before = sparse_dot(w, x.view());
  sparse_axpy(w, 0.25, x.view());
  const double after = sparse_dot(w, x.view());
  EXPECT_NEAR(after - before, 0.25 * x.squared_norm(), 1e-12);
}

// ---------------------------------------------------------------------------
// Fused kernels: each must reproduce its unfused scalar decomposition
// bit for bit — that contract is what lets the solvers adopt them without
// perturbing the paper traces.
// ---------------------------------------------------------------------------

TEST(FusedKernels, DotPairMatchesTwoDotsBitwise) {
  const std::size_t d = 257;
  const auto w = random_vector(d, 1);
  const auto s = random_vector(d, 2);
  const auto x = random_row(d, 19, 3);
  value_t dot_w = 0, dot_s = 0;
  sparse_dot_pair(w, s, x.view(), dot_w, dot_s);
  EXPECT_EQ(dot_w, sparse_dot(w, x.view()));
  EXPECT_EQ(dot_s, sparse_dot(s, x.view()));
}

TEST(FusedKernels, ResidualAxpyMatchesSubgradientLoopBitwise) {
  const std::size_t d = 101;
  const auto x = random_row(d, 17, 5);
  const double step = 0.37, g = -1.25;
  for (const auto reg :
       {objectives::Regularization::none(), objectives::Regularization::l1(0.3),
        objectives::Regularization::l2(0.2)}) {
    auto w_fused = random_vector(d, 7);
    auto w_ref = w_fused;
    sparse_dot_residual_axpy(w_fused, x.view(), step, g, reg.eta_l1(),
                             reg.eta_l2());
    // The frozen pre-fusion loop.
    const auto idx = x.view().indices();
    const auto val = x.view().values();
    for (std::size_t k = 0; k < idx.size(); ++k) {
      const std::size_t c = idx[k];
      w_ref[c] -= step * (g * val[k] + reg.subgradient(w_ref[c]));
    }
    for (std::size_t j = 0; j < d; ++j) {
      EXPECT_EQ(w_fused[j], w_ref[j]) << reg.name() << " coordinate " << j;
    }
  }
}

TEST(FusedKernels, ScaleThenSparseAxpyMatchesTwoPassBitwise) {
  const std::size_t d = 149;
  const auto x = random_row(d, 23, 9);
  const auto mu = random_vector(d, 10);
  const double step = 0.11, corr_step = -0.53;
  for (const auto reg :
       {objectives::Regularization::none(), objectives::Regularization::l1(0.3),
        objectives::Regularization::l2(0.2)}) {
    auto w_fused = random_vector(d, 12);
    auto w_ref = w_fused;
    scale_then_sparse_axpy(w_fused, mu, step, reg.eta_l1(), reg.eta_l2(),
                           corr_step, x.view());
    // The frozen pre-fusion two-pass sequence: sparse correction, then the
    // dense variance-reduction pass.
    const auto idx = x.view().indices();
    const auto val = x.view().values();
    for (std::size_t k = 0; k < idx.size(); ++k) {
      w_ref[idx[k]] -= corr_step * val[k];
    }
    for (std::size_t j = 0; j < d; ++j) {
      w_ref[j] -= step * (mu[j] + reg.subgradient(w_ref[j]));
    }
    for (std::size_t j = 0; j < d; ++j) {
      EXPECT_EQ(w_fused[j], w_ref[j]) << reg.name() << " coordinate " << j;
    }
  }
}

TEST(FusedKernels, ScaleThenSparseAxpyEmptySupportIsDenseStep) {
  const std::size_t d = 33;
  const auto mu = random_vector(d, 14);
  auto w_fused = random_vector(d, 15);
  auto w_ref = w_fused;
  scale_then_sparse_axpy(w_fused, mu, 0.25, 0.0, 0.1, 99.0, {});
  for (std::size_t j = 0; j < d; ++j) {
    w_ref[j] -= 0.25 * (mu[j] + 0.1 * w_ref[j]);
  }
  for (std::size_t j = 0; j < d; ++j) EXPECT_EQ(w_fused[j], w_ref[j]);
}

TEST(FusedKernels, SupportAtVectorEdges) {
  // First and last coordinate in the support exercises the run-segmentation
  // boundaries of the fused dense pass.
  const std::size_t d = 16;
  SparseVector x({0, 15}, {2.0, -3.0});
  const std::vector<value_t> mu(d, 1.0);
  std::vector<value_t> w(d, 10.0);
  scale_then_sparse_axpy(w, mu, 0.5, 0.0, 0.0, 1.0, x.view());
  // supp: w0 = 10-2 = 8 then dense −0.5; w15 = 10+3 = 13 then dense −0.5.
  EXPECT_DOUBLE_EQ(w[0], 7.5);
  EXPECT_DOUBLE_EQ(w[15], 12.5);
  for (std::size_t j = 1; j < 15; ++j) EXPECT_DOUBLE_EQ(w[j], 9.5);
}

TEST(DenseKernels, UnrolledDotMatchesSequentialWithinTolerance) {
  // The 4-accumulator reduction reassociates the sum — equality is only
  // approximate by design (documented in docs/PERF.md).
  const std::size_t d = 1003;  // non-multiple of 4: remainder path covered
  const auto a = random_vector(d, 20);
  const auto b = random_vector(d, 21);
  double seq = 0;
  for (std::size_t j = 0; j < d; ++j) seq += a[j] * b[j];
  EXPECT_NEAR(dense_dot(a, b), seq, 1e-9 * d);
}

}  // namespace
}  // namespace isasgd::sparse
