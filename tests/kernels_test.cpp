#include "sparse/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/sparse_vector.hpp"

namespace isasgd::sparse {
namespace {

TEST(SparseKernels, SparseDotMatchesDense) {
  std::vector<value_t> w = {1, 2, 3, 4, 5};
  SparseVector x({0, 3}, {10.0, -1.0});
  EXPECT_DOUBLE_EQ(sparse_dot(w, x.view()), 1 * 10.0 + 4 * -1.0);
}

TEST(SparseKernels, SparseDotEmptyIsZero) {
  std::vector<value_t> w = {1, 2};
  SparseVector x;
  EXPECT_DOUBLE_EQ(sparse_dot(w, x.view()), 0.0);
}

TEST(SparseKernels, SparseAxpyTouchesOnlySupport) {
  std::vector<value_t> w = {1, 1, 1, 1};
  SparseVector x({1, 3}, {2.0, -4.0});
  sparse_axpy(w, 0.5, x.view());
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 2.0);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  EXPECT_DOUBLE_EQ(w[3], -1.0);
}

TEST(DenseKernels, DotAndNorm) {
  std::vector<value_t> a = {3, 4};
  std::vector<value_t> b = {1, 2};
  EXPECT_DOUBLE_EQ(dense_dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(dense_norm(a), 5.0);
}

TEST(DenseKernels, AxpyAccumulates) {
  std::vector<value_t> a = {1, 1};
  std::vector<value_t> b = {2, -2};
  dense_axpy(a, 3.0, b);
  EXPECT_DOUBLE_EQ(a[0], 7.0);
  EXPECT_DOUBLE_EQ(a[1], -5.0);
}

TEST(DenseKernels, Scale) {
  std::vector<value_t> a = {2, -4};
  dense_scale(a, -0.5);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(DenseKernels, SquaredDistance) {
  std::vector<value_t> a = {0, 3};
  std::vector<value_t> b = {4, 0};
  EXPECT_DOUBLE_EQ(dense_squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(dense_squared_distance(a, a), 0.0);
}

TEST(DenseKernels, L1Norm) {
  std::vector<value_t> a = {1.5, -2.5, 0};
  EXPECT_DOUBLE_EQ(dense_l1_norm(a), 4.0);
}

TEST(SparseKernels, AxpyThenDotIsConsistent) {
  // w += α·x, then w·x should change by α·‖x‖².
  std::vector<value_t> w(10, 0.5);
  SparseVector x({2, 4, 8}, {1.0, -2.0, 3.0});
  const double before = sparse_dot(w, x.view());
  sparse_axpy(w, 0.25, x.view());
  const double after = sparse_dot(w, x.view());
  EXPECT_NEAR(after - before, 0.25 * x.squared_norm(), 1e-12);
}

}  // namespace
}  // namespace isasgd::sparse
