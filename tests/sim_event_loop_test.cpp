// The shared discrete-event engine (src/sim/event_loop.hpp): ordering and
// determinism guarantees every simulated solver leans on.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"

namespace isasgd::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<double, int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesPopFifo) {
  // The tie-break every simulated solver's reproducibility rests on: two
  // events at the same instant fire in push order, whatever the heap does.
  EventQueue<double, int> q;
  for (int i = 0; i < 64; ++i) q.push(1.0, i);
  q.push(0.5, -1);
  EXPECT_EQ(q.pop().payload, -1);
  for (int i = 0; i < 64; ++i) {
    const auto e = q.pop();
    EXPECT_EQ(e.payload, i);
    EXPECT_DOUBLE_EQ(e.time, 1.0);
  }
}

TEST(EventQueue, IntegerTimeAxisWorks) {
  // The delay-injection engine keys events by global *step*, not seconds.
  EventQueue<std::size_t, std::string> q;
  q.push(7, "late");
  q.push(7, "later");  // same due step: FIFO
  q.push(2, "early");
  EXPECT_EQ(q.top().time, 2u);
  EXPECT_EQ(q.pop().payload, "early");
  EXPECT_EQ(q.pop().payload, "late");
  EXPECT_EQ(q.pop().payload, "later");
}

TEST(EventLoop, DrainAdvancesClockAndAllowsRescheduling) {
  EventLoop<int> loop;
  std::vector<std::pair<double, int>> fired;
  loop.schedule(1.0, 1);
  loop.schedule(3.0, 3);
  const double end = loop.drain([&](int payload) {
    fired.emplace_back(loop.now(), payload);
    // Handlers may schedule follow-up events; they join this drain.
    if (payload == 1) loop.schedule_after(1.0, 2);
  });
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], (std::pair<double, int>{1.0, 1}));
  EXPECT_EQ(fired[1], (std::pair<double, int>{2.0, 2}));
  EXPECT_EQ(fired[2], (std::pair<double, int>{3.0, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
}

TEST(EventLoop, ClockPersistsAcrossDrains) {
  // Epoch-fenced simulations drain once per epoch; the simulated clock must
  // carry over the fence.
  EventLoop<int> loop;
  loop.schedule(5.0, 0);
  (void)loop.drain([](int) {});
  EXPECT_DOUBLE_EQ(loop.now(), 5.0);
  EXPECT_FALSE(loop.pending());
  loop.schedule_after(2.5, 0);
  (void)loop.drain([](int) {});
  EXPECT_DOUBLE_EQ(loop.now(), 7.5);
}

TEST(EventLoop, EmptyDrainLeavesClockUntouched) {
  EventLoop<int> loop;
  EXPECT_DOUBLE_EQ(loop.drain([](int) { FAIL(); }), 0.0);
}

TEST(NodeClocks, BarrierTakesTheLaggardAndSyncsAll) {
  NodeClocks clocks(3);
  clocks.advance(0, 1.0);
  clocks.advance(1, 4.0);
  clocks.advance(2, 2.0);
  clocks.advance(2, 0.5);
  EXPECT_DOUBLE_EQ(clocks.at(2), 2.5);
  EXPECT_DOUBLE_EQ(clocks.barrier(), 4.0);
  for (std::size_t a = 0; a < clocks.nodes(); ++a) {
    EXPECT_DOUBLE_EQ(clocks.at(a), 4.0);
  }
  clocks.reset();
  EXPECT_DOUBLE_EQ(clocks.at(1), 0.0);
  EXPECT_DOUBLE_EQ(clocks.barrier(), 0.0);
}

}  // namespace
}  // namespace isasgd::sim
