#include "solvers/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isasgd::solvers {
namespace {

/// Fabricates a trace with the given (seconds, rmse, error) triples.
Trace make_trace(std::vector<std::array<double, 3>> rows,
                 double setup_seconds = 0) {
  Trace t;
  t.algorithm = "TEST";
  for (std::size_t e = 0; e < rows.size(); ++e) {
    t.points.push_back(TracePoint{.epoch = e,
                                  .seconds = rows[e][0],
                                  .rmse = rows[e][1],
                                  .error_rate = rows[e][2],
                                  .objective = rows[e][1] * rows[e][1]});
  }
  t.setup_seconds = setup_seconds;
  return t;
}

TEST(Trace, BestMetricsScanAllPoints) {
  const Trace t = make_trace({{0, 1.0, 0.5}, {1, 0.4, 0.2}, {2, 0.6, 0.3}});
  EXPECT_DOUBLE_EQ(t.best_rmse(), 0.4);
  EXPECT_DOUBLE_EQ(t.best_error_rate(), 0.2);
}

TEST(Trace, BestOfEmptyIsInfinite) {
  Trace t;
  EXPECT_TRUE(std::isinf(t.best_rmse()));
  EXPECT_TRUE(std::isinf(t.best_error_rate()));
}

TEST(Trace, TimeToErrorInterpolatesLinearly) {
  // error: 0.5 at t=0, 0.3 at t=10 → level 0.4 crossed at t=5.
  const Trace t = make_trace({{0, 1, 0.5}, {10, 1, 0.3}});
  EXPECT_NEAR(t.time_to_error(0.4, false), 5.0, 1e-9);
}

TEST(Trace, TimeToErrorExactAtPoint) {
  const Trace t = make_trace({{0, 1, 0.5}, {10, 1, 0.3}});
  EXPECT_NEAR(t.time_to_error(0.3, false), 10.0, 1e-9);
}

TEST(Trace, TimeToErrorAtFirstPoint) {
  const Trace t = make_trace({{0, 1, 0.5}, {10, 1, 0.3}});
  EXPECT_NEAR(t.time_to_error(0.6, false), 0.0, 1e-9);
}

TEST(Trace, TimeToErrorUnreachedIsNan) {
  const Trace t = make_trace({{0, 1, 0.5}, {10, 1, 0.3}});
  EXPECT_TRUE(std::isnan(t.time_to_error(0.1, false)));
}

TEST(Trace, SetupSecondsShiftTimes) {
  const Trace t = make_trace({{0, 1, 0.5}, {10, 1, 0.3}}, 2.0);
  EXPECT_NEAR(t.time_to_error(0.4, true), 7.0, 1e-9);
  EXPECT_NEAR(t.time_to_error(0.4, false), 5.0, 1e-9);
}

TEST(Trace, TimeToRmseWorksLikewise) {
  const Trace t = make_trace({{0, 0.8, 0.5}, {4, 0.4, 0.3}});
  EXPECT_NEAR(t.time_to_rmse(0.6, false), 2.0, 1e-9);
}

TEST(TraceRecorder, RecordsEvaluationsAndEnforcesMonotoneError) {
  // The evaluator reports a worsening error at the third call; the recorded
  // error must stay at the best seen (paper: "updated once a better result
  // is obtained").
  int call = 0;
  EvalFn eval = [&call](std::span<const double>) {
    const double errs[] = {0.5, 0.2, 0.4};
    const double rmses[] = {1.0, 0.6, 0.7};
    EvalResult r;
    r.error_rate = errs[call];
    r.rmse = rmses[call];
    r.objective = r.rmse * r.rmse;
    ++call;
    return r;
  };
  TraceRecorder rec("X", 4, 0.5, eval);
  std::vector<double> w(3, 0.0);
  rec.record(0, 0.0, w);
  rec.record(1, 1.0, w);
  rec.record(2, 2.0, w);
  rec.add_setup_seconds(0.25);
  const Trace t = std::move(rec).finish(2.0);
  ASSERT_EQ(t.points.size(), 3u);
  EXPECT_DOUBLE_EQ(t.points[1].error_rate, 0.2);
  EXPECT_DOUBLE_EQ(t.points[2].error_rate, 0.2);  // monotone
  EXPECT_DOUBLE_EQ(t.points[2].rmse, 0.7);        // rmse is NOT monotone
  EXPECT_DOUBLE_EQ(t.setup_seconds, 0.25);
  EXPECT_DOUBLE_EQ(t.train_seconds, 2.0);
  EXPECT_EQ(t.algorithm, "X");
  EXPECT_EQ(t.threads, 4u);
}

TEST(TraceRecorder, NullEvaluatorThrows) {
  EXPECT_THROW(TraceRecorder("X", 1, 0.5, EvalFn{}), std::invalid_argument);
}

TEST(Trace, TimeToErrorWithMonotonePlateau) {
  // Plateau then improvement: crossing must land in the improving segment.
  const Trace t =
      make_trace({{0, 1, 0.5}, {1, 1, 0.5}, {2, 1, 0.5}, {3, 1, 0.1}});
  const double tt = t.time_to_error(0.3, false);
  EXPECT_GT(tt, 2.0);
  EXPECT_LT(tt, 3.0);
}

}  // namespace
}  // namespace isasgd::solvers
