// BlockSequence bit-compatibility: the streamed block-refill sequences must
// reproduce the frozen pre-materialized reference classes bit for bit, for
// every SequenceMode and the adaptive rebuild path, across seeds and block
// sizes straddling n. This is the contract that lets the solvers stream
// O(block)-memory sequences without perturbing a single recorded trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sampling/sequence.hpp"
#include "util/rng.hpp"

namespace isasgd::sampling {
namespace {

std::vector<double> make_weights(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = util::uniform_double(rng) + 0.01;
  return w;
}

/// Drains one epoch through next(), which is how the solver hot loops
/// consume the stream.
std::vector<std::uint32_t> drain_next(BlockSequence& seq) {
  std::vector<std::uint32_t> out(seq.epoch_length());
  for (auto& v : out) v = seq.next();
  return out;
}

/// Drains one epoch through next_block(), the bulk consumer API.
std::vector<std::uint32_t> drain_blocks(BlockSequence& seq) {
  std::vector<std::uint32_t> out;
  for (auto block = seq.next_block(); !block.empty();
       block = seq.next_block()) {
    out.insert(out.end(), block.begin(), block.end());
  }
  return out;
}

const std::size_t kEpochs = 4;
const std::uint64_t kSeeds[] = {1, 42, 0x9e3779b97f4a7c15ULL};

/// Block sizes straddling n for n = 100: smaller than, dividing, one off
/// either side, equal, and larger than the epoch length.
std::vector<std::size_t> straddling_blocks(std::size_t n) {
  return {1, 3, n / 2, n - 1, n, n + 5, 4 * n};
}

TEST(BlockSequence, IidMatchesPreMaterializedSampleSequences) {
  const std::size_t n = 100;
  for (std::uint64_t seed : kSeeds) {
    const auto weights = make_weights(n, seed + 1);
    for (std::size_t block : straddling_blocks(n)) {
      BlockSequence seq(BlockSequence::Mode::kIid, weights, n, seed, block);
      for (std::size_t epoch = 1; epoch <= kEpochs; ++epoch) {
        const auto reference = SampleSequence::weighted(
            weights, n, util::derive_seed(seed, epoch - 1));
        seq.begin_epoch(epoch, util::derive_seed(seed, epoch - 1));
        const auto streamed =
            (epoch % 2 == 1) ? drain_next(seq) : drain_blocks(seq);
        ASSERT_EQ(streamed.size(), reference.size());
        for (std::size_t t = 0; t < n; ++t) {
          ASSERT_EQ(streamed[t], reference[t])
              << "seed=" << seed << " block=" << block << " epoch=" << epoch
              << " t=" << t;
        }
      }
    }
  }
}

TEST(BlockSequence, ReshuffleMatchesReshuffledSequence) {
  const std::size_t n = 100;
  for (std::uint64_t seed : kSeeds) {
    const auto weights = make_weights(n, seed + 7);
    for (std::size_t block : straddling_blocks(n)) {
      BlockSequence seq(BlockSequence::Mode::kReshuffle, weights, n, seed,
                        block);
      ReshuffledSequence reference(weights, n, seed);
      for (std::size_t epoch = 1; epoch <= kEpochs; ++epoch) {
        if (epoch > 1) reference.reshuffle();
        seq.begin_epoch(epoch);
        const auto streamed =
            (epoch % 2 == 1) ? drain_blocks(seq) : drain_next(seq);
        ASSERT_EQ(streamed.size(), reference.size());
        for (std::size_t t = 0; t < n; ++t) {
          ASSERT_EQ(streamed[t], reference[t])
              << "seed=" << seed << " block=" << block << " epoch=" << epoch;
        }
      }
    }
  }
}

TEST(BlockSequence, StratifiedMatchesStratifiedSequence) {
  const std::size_t n = 100;
  for (std::uint64_t seed : kSeeds) {
    // Skewed weights so the ≥1-visit floor binds and the epoch length
    // exceeds the requested one — the stream must follow.
    auto weights = make_weights(n, seed + 13);
    weights[0] = 50.0;
    weights[1] = 25.0;
    for (std::size_t block : straddling_blocks(n)) {
      BlockSequence seq(BlockSequence::Mode::kStratified, weights, n, seed,
                        block);
      StratifiedSequence reference(weights, n, seed);
      ASSERT_EQ(seq.epoch_length(), reference.size());
      for (std::size_t epoch = 1; epoch <= kEpochs; ++epoch) {
        if (epoch > 1) reference.reshuffle();
        seq.begin_epoch(epoch);
        const auto streamed = drain_next(seq);
        ASSERT_EQ(streamed.size(), reference.size());
        for (std::size_t t = 0; t < streamed.size(); ++t) {
          ASSERT_EQ(streamed[t], reference[t])
              << "seed=" << seed << " block=" << block << " epoch=" << epoch;
        }
      }
    }
  }
}

TEST(BlockSequence, AdaptiveRebuildMatchesRegeneratedSequences) {
  // The adaptive path: rebuild() with refreshed weights + a new stream
  // seed must equal a freshly materialized SampleSequence over the same
  // weights; replaying the same stream seed between refreshes must equal
  // replaying the materialized sequence.
  const std::size_t n = 64;
  for (std::uint64_t seed : kSeeds) {
    const auto w1 = make_weights(n, seed + 3);
    const auto w2 = make_weights(n, seed + 4);
    for (std::size_t block : {std::size_t{1}, std::size_t{17}, n, 3 * n}) {
      BlockSequence seq(BlockSequence::Mode::kIid, w1, n, seed, block);
      const std::uint64_t s1 = util::derive_seed(seed, 7001);
      const auto ref1 = SampleSequence::weighted(w1, n, s1);
      seq.begin_epoch(1, s1);
      EXPECT_EQ(drain_next(seq), std::vector<std::uint32_t>(
                                     ref1.view().begin(), ref1.view().end()));
      // Replay between refreshes: same seed, same table → same stream.
      seq.begin_epoch(2, s1);
      EXPECT_EQ(drain_blocks(seq), std::vector<std::uint32_t>(
                                       ref1.view().begin(), ref1.view().end()));
      // Refresh: new weights, new stream seed.
      seq.rebuild(w2);
      const std::uint64_t s2 = util::derive_seed(seed, 7003);
      const auto ref2 = SampleSequence::weighted(w2, n, s2);
      seq.begin_epoch(3, s2);
      EXPECT_EQ(drain_next(seq), std::vector<std::uint32_t>(
                                     ref2.view().begin(), ref2.view().end()));
    }
  }
}

TEST(BlockSequence, MixedNextAndBlockConsumptionNeverSkipsOrRepeats) {
  const std::size_t n = 101;  // prime-ish so blocks never align
  const auto weights = make_weights(n, 5);
  BlockSequence seq(BlockSequence::Mode::kIid, weights, n, 0, /*block=*/8);
  const auto reference = SampleSequence::weighted(weights, n, 77);
  seq.begin_epoch(1, 77);
  std::vector<std::uint32_t> streamed;
  bool use_next = true;
  while (streamed.size() < n) {
    if (use_next) {
      streamed.push_back(seq.next());
    } else {
      const auto block = seq.next_block();
      streamed.insert(streamed.end(), block.begin(), block.end());
    }
    use_next = !use_next;
  }
  ASSERT_EQ(streamed.size(), n);
  for (std::size_t t = 0; t < n; ++t) EXPECT_EQ(streamed[t], reference[t]);
}

TEST(BlockSequence, OverDrawAndDrawBeforeBeginEpochThrow) {
  const auto weights = make_weights(8, 21);
  BlockSequence fresh(BlockSequence::Mode::kIid, weights, 8, 1);
  EXPECT_THROW((void)fresh.next(), std::logic_error);  // before begin_epoch
  BlockSequence seq(BlockSequence::Mode::kIid, weights, 8, 1, /*block=*/3);
  seq.begin_epoch(1, 5);
  for (std::size_t t = 0; t < 8; ++t) (void)seq.next();
  EXPECT_THROW((void)seq.next(), std::logic_error);  // past epoch_length
  EXPECT_TRUE(seq.next_block().empty());  // bulk API reports exhaustion
  seq.begin_epoch(2, 6);  // recoverable: the next epoch streams normally
  EXPECT_EQ(drain_next(seq).size(), 8u);
}

TEST(BlockSequence, RebuildRejectsShuffledModes) {
  const auto weights = make_weights(16, 9);
  BlockSequence resh(BlockSequence::Mode::kReshuffle, weights, 16, 1);
  EXPECT_THROW(resh.rebuild(weights), std::logic_error);
  BlockSequence strat(BlockSequence::Mode::kStratified, weights, 16, 1);
  EXPECT_THROW(strat.rebuild(weights), std::logic_error);
}

TEST(BlockSequence, InvalidWeightsThrowLikeAliasTable) {
  EXPECT_THROW(
      BlockSequence(BlockSequence::Mode::kIid, std::vector<double>{}, 4, 1),
      std::invalid_argument);
  EXPECT_THROW(BlockSequence(BlockSequence::Mode::kIid,
                             std::vector<double>{-1.0}, 4, 1),
               std::invalid_argument);
  EXPECT_THROW(BlockSequence(BlockSequence::Mode::kStratified,
                             std::vector<double>{0.0, 0.0}, 4, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace isasgd::sampling
