#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace isasgd::util {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("isasgd_csv_test_" + std::to_string(::getpid()) + ".csv"))
                .string();
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    w.header({"a", "b"});
    w.row({"1", "2"});
    w.row_values(3.5, "x");
    EXPECT_EQ(w.rows_written(), 2u);
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(rows[2][0], "3.5");
  EXPECT_EQ(rows[2][1], "x");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.header({"text"});
    w.row({"has,comma"});
    w.row({"has\"quote"});
    w.row({"has\nnewline"});
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[1][0], "has,comma");
  EXPECT_EQ(rows[2][0], "has\"quote");
  EXPECT_EQ(rows[3][0], "has\nnewline");
}

TEST_F(CsvTest, RowBeforeHeaderThrows) {
  CsvWriter w(path_);
  EXPECT_THROW(w.row({"x"}), std::logic_error);
}

TEST_F(CsvTest, DoubleHeaderThrows) {
  CsvWriter w(path_);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST_F(CsvTest, WidthMismatchThrows) {
  CsvWriter w(path_);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, EmptyHeaderThrows) {
  CsvWriter w(path_);
  EXPECT_THROW(w.header({}), std::invalid_argument);
}

TEST_F(CsvTest, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), std::runtime_error);
  EXPECT_THROW(read_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST_F(CsvTest, ReadHandlesCrlfAndFinalLineWithoutNewline) {
  {
    std::ofstream out(path_);
    out << "a,b\r\n1,2\r\n3,4";  // CRLF endings, no trailing newline
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[2], (std::vector<std::string>{"3", "4"}));
}

TEST_F(CsvTest, RoundTripsNumericPrecision) {
  {
    CsvWriter w(path_);
    w.header({"v"});
    w.row_values(0.1234567890123);
  }
  const auto rows = read_csv(path_);
  EXPECT_NEAR(std::stod(rows[1][0]), 0.1234567890123, 1e-12);
}

}  // namespace
}  // namespace isasgd::util
