#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace isasgd::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutputIsStable) {
  // Regression pin: the seeding procedure must never silently change, or
  // every "deterministic" experiment in the repo changes with it.
  SplitMix64 g(0);
  const std::uint64_t first = g();
  SplitMix64 h(0);
  EXPECT_EQ(h(), first);
  EXPECT_NE(first, 0u);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, ReseedResetsStream) {
  Xoshiro256StarStar a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256StarStar a(7), b(7);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a());
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(from_a.count(b()));
}

TEST(UniformDouble, IsInHalfOpenUnitInterval) {
  Xoshiro256StarStar g(3);
  for (int i = 0; i < 100000; ++i) {
    const double u = uniform_double(g);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(UniformDouble, MeanIsOneHalf) {
  Xoshiro256StarStar g(4);
  double total = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) total += uniform_double(g);
  EXPECT_NEAR(total / kSamples, 0.5, 0.01);
}

TEST(UniformIndex, StaysInRange) {
  Xoshiro256StarStar g(5);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(uniform_index(g, n), n);
    }
  }
}

TEST(UniformIndex, SizeOneAlwaysZero) {
  Xoshiro256StarStar g(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(g, 1), 0u);
}

TEST(UniformIndex, IsApproximatelyUniform) {
  Xoshiro256StarStar g(8);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[uniform_index(g, kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kSamples / double(kBuckets),
                5 * std::sqrt(kSamples / double(kBuckets)));
  }
}

TEST(NormalDouble, MomentsMatchStandardNormal) {
  Xoshiro256StarStar g(9);
  double sum = 0, sum_sq = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double z = normal_double(g);
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(DeriveSeed, DistinctWorkersGetDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t w = 0; w < 1000; ++w) {
    seeds.insert(derive_seed(123, w));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeed, IsDeterministic) {
  EXPECT_EQ(derive_seed(9, 3), derive_seed(9, 3));
  EXPECT_NE(derive_seed(9, 3), derive_seed(10, 3));
}

}  // namespace
}  // namespace isasgd::util
