#include "objectives/objective.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "objectives/squared_hinge.hpp"
#include "sparse/csr_builder.hpp"

namespace isasgd::objectives {
namespace {

// ---------- Logistic ----------

TEST(Logistic, LossAtZeroMarginIsLogTwo) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.loss(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.loss(0.0, -1.0), std::log(2.0), 1e-12);
}

TEST(Logistic, LossDecreasesWithCorrectMargin) {
  LogisticLoss loss;
  EXPECT_LT(loss.loss(2.0, 1.0), loss.loss(1.0, 1.0));
  EXPECT_LT(loss.loss(-2.0, -1.0), loss.loss(-1.0, -1.0));
}

TEST(Logistic, IsNumericallyStableAtExtremeMargins) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.loss(1000.0, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(loss.loss(-1000.0, 1.0), 1000.0, 1e-9);
  EXPECT_TRUE(std::isfinite(loss.gradient_scale(1000.0, 1.0)));
  EXPECT_TRUE(std::isfinite(loss.gradient_scale(-1000.0, 1.0)));
}

TEST(Logistic, GradientBoundedByOne) {
  LogisticLoss loss;
  for (double m : {-50.0, -1.0, 0.0, 1.0, 50.0}) {
    EXPECT_LE(std::abs(loss.gradient_scale(m, 1.0)), 1.0);
    EXPECT_LE(std::abs(loss.gradient_scale(m, -1.0)), 1.0);
  }
}

// ---------- Squared hinge ----------

TEST(SquaredHinge, ZeroLossBeyondMargin) {
  SquaredHingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.loss(1.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.gradient_scale(1.5, 1.0), 0.0);
}

TEST(SquaredHinge, QuadraticInsideMargin) {
  SquaredHingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.loss(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loss.loss(-1.0, 1.0), 4.0);
}

TEST(SquaredHinge, Eq16BoundForL2) {
  SquaredHingeLoss loss;
  sparse::SparseVector x({0, 1}, {3.0, 4.0});  // ‖x‖ = 5
  const double lambda = 0.25;
  const double expected =
      2.0 * (1.0 + 5.0 / std::sqrt(lambda)) * 5.0 + std::sqrt(lambda);
  EXPECT_NEAR(loss.gradient_norm_bound(x.view(), 1.0, 1.0,
                                       Regularization::l2(lambda)),
              expected, 1e-12);
}

TEST(SquaredHinge, FallsBackToGenericBoundWithoutL2) {
  SquaredHingeLoss loss;
  sparse::SparseVector x({0}, {2.0});
  const double bound =
      loss.gradient_norm_bound(x.view(), 1.0, 1.0, Regularization::none());
  EXPECT_GT(bound, 0.0);
  EXPECT_TRUE(std::isfinite(bound));
}

// ---------- Least squares ----------

TEST(LeastSquares, LossAndGradient) {
  LeastSquaresLoss loss;
  EXPECT_DOUBLE_EQ(loss.loss(3.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(loss.gradient_scale(3.0, 1.0), 2.0);
  EXPECT_FALSE(loss.is_classification());
}

// ---------- Finite-difference gradient checks (parameterised) ----------

class GradientCheck : public ::testing::TestWithParam<const char*> {};

TEST_P(GradientCheck, GradientScaleMatchesFiniteDifference) {
  const auto objective = make_objective(GetParam());
  constexpr double kH = 1e-6;
  for (double y : {-1.0, 1.0}) {
    for (double m : {-2.0, -0.5, 0.0, 0.3, 1.2, 3.0}) {
      const double numeric =
          (objective->loss(m + kH, y) - objective->loss(m - kH, y)) / (2 * kH);
      EXPECT_NEAR(objective->gradient_scale(m, y), numeric, 1e-5)
          << GetParam() << " at m=" << m << " y=" << y;
    }
  }
}

TEST_P(GradientCheck, SmoothnessBoundsSecondDifference) {
  const auto objective = make_objective(GetParam());
  constexpr double kH = 1e-4;
  for (double y : {-1.0, 1.0}) {
    for (double m = -3.0; m <= 3.0; m += 0.25) {
      const double second =
          (objective->gradient_scale(m + kH, y) -
           objective->gradient_scale(m - kH, y)) /
          (2 * kH);
      EXPECT_LE(std::abs(second), objective->smoothness() + 1e-3)
          << GetParam() << " at m=" << m;
    }
  }
}

TEST_P(GradientCheck, LossIsNonNegative) {
  const auto objective = make_objective(GetParam());
  for (double y : {-1.0, 1.0}) {
    for (double m = -5.0; m <= 5.0; m += 0.5) {
      EXPECT_GE(objective->loss(m, y), 0.0);
    }
  }
}

TEST_P(GradientCheck, LossIsConvexInMargin) {
  const auto objective = make_objective(GetParam());
  for (double y : {-1.0, 1.0}) {
    for (double m = -3.0; m <= 3.0; m += 0.3) {
      const double mid = objective->loss(m, y);
      const double avg =
          0.5 * (objective->loss(m - 0.2, y) + objective->loss(m + 0.2, y));
      EXPECT_LE(mid, avg + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, GradientCheck,
                         ::testing::Values("logistic", "squared_hinge",
                                           "least_squares"));

// ---------- Regularization ----------

TEST(Regularization, NoneIsZero) {
  const Regularization reg = Regularization::none();
  std::vector<double> w = {1.0, -2.0};
  EXPECT_DOUBLE_EQ(reg.value(w), 0.0);
  EXPECT_DOUBLE_EQ(reg.subgradient(5.0), 0.0);
  EXPECT_DOUBLE_EQ(reg.lipschitz_term(), 0.0);
}

TEST(Regularization, L1ValueAndSubgradient) {
  const Regularization reg = Regularization::l1(0.1);
  std::vector<double> w = {1.0, -2.0, 0.0};
  EXPECT_NEAR(reg.value(w), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(reg.subgradient(2.0), 0.1);
  EXPECT_DOUBLE_EQ(reg.subgradient(-2.0), -0.1);
  EXPECT_DOUBLE_EQ(reg.subgradient(0.0), 0.0);
  EXPECT_DOUBLE_EQ(reg.lipschitz_term(), 0.0);
}

TEST(Regularization, L2ValueAndGradient) {
  const Regularization reg = Regularization::l2(0.5);
  std::vector<double> w = {2.0, -1.0};
  EXPECT_NEAR(reg.value(w), 0.5 * 0.5 * 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(reg.subgradient(3.0), 1.5);
  EXPECT_DOUBLE_EQ(reg.lipschitz_term(), 0.5);
}

// ---------- Per-sample Lipschitz ----------

TEST(PerSampleLipschitz, MatchesBetaTimesSquaredNorm) {
  sparse::CsrBuilder b(4);
  b.add_row(std::vector<sparse::index_t>{0, 1},
            std::vector<sparse::value_t>{3.0, 4.0}, 1.0);  // ‖x‖² = 25
  b.add_row(std::vector<sparse::index_t>{2},
            std::vector<sparse::value_t>{2.0}, -1.0);  // ‖x‖² = 4
  const auto data = b.build();
  LogisticLoss loss;
  const auto lip =
      per_sample_lipschitz(data, loss, Regularization::none());
  ASSERT_EQ(lip.size(), 2u);
  EXPECT_DOUBLE_EQ(lip[0], 0.25 * 25.0);
  EXPECT_DOUBLE_EQ(lip[1], 0.25 * 4.0);
}

TEST(PerSampleLipschitz, L2AddsEta) {
  sparse::CsrBuilder b(2);
  b.add_row(std::vector<sparse::index_t>{0},
            std::vector<sparse::value_t>{2.0}, 1.0);
  const auto data = b.build();
  SquaredHingeLoss loss;
  const auto lip = per_sample_lipschitz(data, loss, Regularization::l2(0.3));
  EXPECT_DOUBLE_EQ(lip[0], 2.0 * 4.0 + 0.3);
}

// ---------- Factory ----------

TEST(MakeObjective, ConstructsAllKnownNames) {
  EXPECT_EQ(make_objective("logistic")->name(), "logistic");
  EXPECT_EQ(make_objective("squared_hinge")->name(), "squared_hinge");
  EXPECT_EQ(make_objective("least_squares")->name(), "least_squares");
}

TEST(MakeObjective, RejectsUnknownName) {
  EXPECT_THROW(make_objective("hinge^3"), std::invalid_argument);
}

TEST(RegularizationName, NamesAreStable) {
  EXPECT_EQ(Regularization::none().name(), "none");
  EXPECT_EQ(Regularization::l1(1).name(), "l1");
  EXPECT_EQ(Regularization::l2(1).name(), "l2");
}

}  // namespace
}  // namespace isasgd::objectives
