// End-to-end tests through the public façade (core::Trainer +
// core::run_experiment): the paths the examples and benches exercise.
#include <gtest/gtest.h>

#include <any>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "data/paper_datasets.hpp"
#include "metrics/speedup.hpp"
#include "objectives/logistic.hpp"
#include "solvers/is_asgd.hpp"
#include "util/csv.hpp"

namespace isasgd::core {
namespace {

struct PaperFixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Trainer trainer;

  explicit PaperFixture(data::PaperDataset id, double scale = 0.03)
      : data(data::generate_paper_dataset(id, scale)),
        trainer(data, loss, objectives::Regularization::l1(1e-5), 4) {}
};

TEST(Trainer, TrainsEveryAlgorithmOnNews20Analog) {
  PaperFixture f(data::PaperDataset::kNews20);
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.threads = 4;
  opt.step_size = 0.5;
  for (const char* solver :
       {"SGD", "IS-SGD", "ASGD", "IS-ASGD", "SVRG-SGD", "SVRG-ASGD"}) {
    const auto trace = f.trainer.train(solver, opt);
    EXPECT_EQ(trace.points.size(), 4u) << solver;
    EXPECT_LT(trace.points.back().rmse, trace.points.front().rmse) << solver;
  }
}

TEST(Trainer, RegularizerIsAppliedConsistently) {
  PaperFixture f(data::PaperDataset::kNews20);
  // Trainer overrides options.reg with its own; passing a different reg in
  // options must not change scoring.
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.reg = objectives::Regularization::l2(123.0);  // would explode if used
  const auto trace = f.trainer.train("SGD", opt);
  EXPECT_LT(trace.points.back().rmse, 2.0);
}

TEST(Trainer, IsAsgdDiagnosticsArriveViaObserver) {
  PaperFixture f(data::PaperDataset::kNews20);
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.threads = 4;
  solvers::DiagnosticsCapture<solvers::IsAsgdReport> capture;
  (void)f.trainer.train("IS-ASGD", opt, &capture);
  ASSERT_TRUE(capture.has_value());
  EXPECT_GT(capture.value().rho, 0.0);
}

TEST(Trainer, EvaluateScoresSnapshots) {
  PaperFixture f(data::PaperDataset::kNews20);
  std::vector<double> zeros(f.data.dim(), 0.0);
  const auto r = f.trainer.evaluate(zeros);
  EXPECT_NEAR(r.error_rate, 0.5, 0.25);  // zero model ≈ chance
  EXPECT_GT(r.objective, 0.0);
}

TEST(Experiment, SweepProducesAllRuns) {
  PaperFixture f(data::PaperDataset::kNews20);
  ExperimentSpec spec;
  spec.dataset_name = "news20_analog";
  spec.solvers = {"SGD", "ASGD", "IS-ASGD"};
  spec.thread_counts = {2, 4};
  spec.base_options.epochs = 2;
  spec.base_options.step_size = 0.5;
  spec.verbose = false;
  const auto result = run_experiment(f.trainer, spec);
  // SGD once, ASGD ×2, IS-ASGD ×2.
  EXPECT_EQ(result.runs.size(), 5u);
  EXPECT_NE(result.find("SGD", 2), nullptr);
  EXPECT_NE(result.find("ASGD", 4), nullptr);
  EXPECT_EQ(result.find("ASGD", 16), nullptr);
  EXPECT_EQ(result.find("SVRG-ASGD", 2), nullptr);
}

TEST(Experiment, SerialAlgorithmsMatchAnyThreadLookup) {
  PaperFixture f(data::PaperDataset::kNews20);
  ExperimentSpec spec;
  spec.dataset_name = "x";
  spec.solvers = {"IS-SGD"};
  spec.thread_counts = {4, 8};
  spec.base_options.epochs = 1;
  spec.verbose = false;
  const auto result = run_experiment(f.trainer, spec);
  EXPECT_EQ(result.runs.size(), 1u);
  EXPECT_NE(result.find("is_sgd", 8), nullptr);
}

TEST(Experiment, TraceCsvRoundTrips) {
  PaperFixture f(data::PaperDataset::kNews20);
  ExperimentSpec spec;
  spec.dataset_name = "news20_analog";
  spec.solvers = {"SGD"};
  spec.thread_counts = {1};
  spec.base_options.epochs = 2;
  spec.verbose = false;
  const auto result = run_experiment(f.trainer, spec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "isasgd_integration.csv")
          .string();
  write_traces_csv(path, result);
  const auto rows = util::read_csv(path);
  std::remove(path.c_str());
  ASSERT_EQ(rows.size(), 4u);  // header + epochs 0..2
  EXPECT_EQ(rows[0][0], "dataset");
  EXPECT_EQ(rows[1][1], "SGD");
}

TEST(Experiment, SpeedupPipelineRunsEndToEnd) {
  // The full Fig-4→Fig-5 path: sweep, pick traces, derive speedups.
  PaperFixture f(data::PaperDataset::kNews20, 0.05);
  ExperimentSpec spec;
  spec.dataset_name = "news20_analog";
  spec.solvers = {"ASGD", "IS-ASGD"};
  spec.thread_counts = {4};
  spec.base_options.epochs = 4;
  spec.base_options.step_size = 0.5;
  spec.verbose = false;
  const auto result = run_experiment(f.trainer, spec);
  const auto* asgd = result.find("ASGD", 4);
  const auto* is = result.find("IS-ASGD", 4);
  ASSERT_NE(asgd, nullptr);
  ASSERT_NE(is, nullptr);
  const auto summary = metrics::compute_speedup(asgd->trace, is->trace);
  // A sane end-to-end result: some slices computed, speedups positive.
  EXPECT_FALSE(summary.slices.empty());
  for (const auto& p : summary.slices) EXPECT_GT(p.speedup, 0.0);
}

TEST(Experiment, UrlAnalogRunsAtTinyScale) {
  PaperFixture f(data::PaperDataset::kUrl, 0.01);
  ExperimentSpec spec;
  spec.dataset_name = "url_analog";
  spec.solvers = {"ASGD", "IS-ASGD"};
  spec.thread_counts = {2};
  spec.base_options.epochs = 2;
  spec.base_options.step_size = 0.05;
  spec.verbose = false;
  const auto result = run_experiment(f.trainer, spec);
  EXPECT_EQ(result.runs.size(), 2u);
  for (const auto& run : result.runs) {
    EXPECT_TRUE(std::isfinite(run.trace.points.back().rmse));
  }
}

TEST(Experiment, KddAnalogsRunAtTinyScale) {
  for (auto id :
       {data::PaperDataset::kKddAlgebra, data::PaperDataset::kKddBridge}) {
    PaperFixture f(id, 0.005);
    ExperimentSpec spec;
    spec.dataset_name = data::paper_dataset_config(id).name;
    spec.solvers = {"IS-ASGD"};
    spec.thread_counts = {2};
    spec.base_options.epochs = 2;
    spec.verbose = false;
    const auto result = run_experiment(f.trainer, spec);
    ASSERT_EQ(result.runs.size(), 1u);
    EXPECT_LT(result.runs[0].trace.points.back().rmse,
              result.runs[0].trace.points.front().rmse * 1.2);
  }
}

}  // namespace
}  // namespace isasgd::core
