// Deterministic checkpoint/resume: the io::checkpoint format and the
// per-solver bit-parity contract.
//
// The hard promise under test (ISSUE 6 acceptance): for every registry
// solver declaring capabilities().checkpointable, killing a run at *any*
// epoch fence and resuming from the checkpoint in a fresh run produces a
// final model bit-identical to the uninterrupted run. Nothing "close" —
// EXPECT_EQ on the raw double vectors.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "io/checkpoint.hpp"
#include "objectives/logistic.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/solver.hpp"

namespace isasgd {
namespace {

constexpr std::size_t kEpochs = 6;

/// Every checkpointable solver in the registry, by canonical name. The
/// RegistryAgreesWithThisList test keeps it honest: adding a checkpointable
/// solver without extending the parity sweep fails the suite.
const char* const kCheckpointable[] = {"SGD",      "IS-SGD",      "PROX-SGD",
                                       "IS-PROX-SGD", "SVRG-SGD", "SVRG-LAZY",
                                       "SAG",      "SAGA"};

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  core::Trainer trainer;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 240;
          spec.dim = 48;
          spec.mean_row_nnz = 6;
          return data::generate(spec);
        }()),
        trainer(data, loss, objectives::Regularization::l2(1e-4), 1) {}
};

solvers::SolverOptions options_for(bool adaptive = false) {
  solvers::SolverOptions opt;
  opt.epochs = kEpochs;
  opt.step_size = 0.2;
  opt.seed = 42;
  opt.keep_final_model = true;
  opt.adaptive_importance = adaptive;
  return opt;
}

/// Captures the state at one target fence and asks for an early stop right
/// after it — the in-process stand-in for `kill -9` at that fence.
class KillAtFence final : public solvers::SnapshotSink,
                          public solvers::TrainingObserver {
 public:
  explicit KillAtFence(std::size_t epoch) : epoch_(epoch) {}

  [[nodiscard]] bool wants(std::size_t epoch) const override {
    return epoch == epoch_;
  }
  void capture(solvers::SnapshotState state) override {
    state_ = std::move(state);
  }
  bool on_epoch(const solvers::TracePoint& point) override {
    return point.epoch < epoch_;
  }

  [[nodiscard]] const solvers::SnapshotState& state() const {
    EXPECT_TRUE(state_.has_value());
    return *state_;
  }

 private:
  std::size_t epoch_;
  std::optional<solvers::SnapshotState> state_;
};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Uninterrupted run → kill at `fence` (capture + stop) → round-trip the
/// state through the binary format → resume in a fresh run → compare.
void expect_bit_parity(const Fixture& f, const std::string& solver,
                       std::size_t fence, bool adaptive = false) {
  const solvers::SolverOptions opt = options_for(adaptive);
  const auto full = f.trainer.train(solver, opt);
  ASSERT_EQ(full.final_model.size(), f.data.dim());

  KillAtFence kill(fence);
  const auto killed = f.trainer.train(
      solver, opt, &kill, {.resume = nullptr, .sink = &kill});
  ASSERT_EQ(killed.points.back().epoch, fence) << "kill fence not honoured";

  solvers::SnapshotState state = kill.state();
  EXPECT_EQ(state.epoch, fence);
  EXPECT_EQ(state.solver, solvers::SolverRegistry::instance().get(solver).name());

  const std::string path = temp_path("parity_" + state.solver + "_" +
                                     std::to_string(fence) + ".ckpt");
  io::save_checkpoint(path, state);
  const solvers::SnapshotState restored = io::load_checkpoint(path);

  const auto resumed =
      f.trainer.train(solver, opt, nullptr, {.resume = &restored});
  ASSERT_EQ(resumed.final_model.size(), full.final_model.size());
  EXPECT_EQ(resumed.final_model, full.final_model)
      << solver << ": resume from fence " << fence
      << " diverged from the uninterrupted run";
  std::remove(path.c_str());
}

class ParitySweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ParitySweep, KillAtFirstFence) {
  Fixture f;
  expect_bit_parity(f, GetParam(), 1);
}

TEST_P(ParitySweep, KillAtMiddleFence) {
  Fixture f;
  expect_bit_parity(f, GetParam(), kEpochs / 2);
}

TEST_P(ParitySweep, KillAtLastFence) {
  // Resuming from the final fence runs zero epochs; the restored model must
  // pass through untouched.
  Fixture f;
  expect_bit_parity(f, GetParam(), kEpochs);
}

INSTANTIATE_TEST_SUITE_P(Checkpointable, ParitySweep,
                         ::testing::ValuesIn(kCheckpointable),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CheckpointParity, AdaptiveImportanceSgd) {
  // Adaptive IS-SGD carries the most state (last gradient norms, refreshed
  // importance, rebuilt sampler) — kill around a refresh boundary.
  Fixture f;
  expect_bit_parity(f, "IS-SGD", 3, /*adaptive=*/true);
}

TEST(CheckpointParity, RegistryAgreesWithThisList) {
  std::vector<std::string> expected(std::begin(kCheckpointable),
                                    std::end(kCheckpointable));
  for (const std::string& name : solvers::SolverRegistry::instance().list()) {
    const bool ck = solvers::SolverRegistry::instance()
                        .get(name)
                        .capabilities()
                        .checkpointable;
    const bool listed =
        std::find(expected.begin(), expected.end(), name) != expected.end();
    EXPECT_EQ(ck, listed) << name
                          << (ck ? " is checkpointable but missing from the "
                                   "parity sweep"
                                 : " is in the parity sweep but no longer "
                                   "checkpointable");
  }
}

TEST(CheckpointParity, NonCheckpointableSolverRejectsHooks) {
  Fixture f;
  KillAtFence sink(1);
  EXPECT_THROW(
      (void)f.trainer.train("ASGD", options_for(), nullptr, {.sink = &sink}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Format-level defect handling.

solvers::SnapshotState sample_state() {
  solvers::SnapshotState state;
  state.solver = "SGD";
  state.epoch = 3;
  state.seed = 42;
  state.epochs_budget = 6;
  state.dataset_fingerprint = 0xfeedfacecafebeefULL;
  state.model = {1.5, -2.25, 0.0, 3.0e-7};
  state.reals["svrg.anchor"] = {0.5, 0.25};
  state.words["rng"] = {1, 2, 3, 4};
  return state;
}

TEST(CheckpointFormat, RoundTripPreservesEverything) {
  const std::string path = temp_path("roundtrip.ckpt");
  const solvers::SnapshotState state = sample_state();
  io::save_checkpoint(path, state);
  const solvers::SnapshotState loaded = io::load_checkpoint(path);
  EXPECT_EQ(loaded.solver, state.solver);
  EXPECT_EQ(loaded.epoch, state.epoch);
  EXPECT_EQ(loaded.seed, state.seed);
  EXPECT_EQ(loaded.epochs_budget, state.epochs_budget);
  EXPECT_EQ(loaded.dataset_fingerprint, state.dataset_fingerprint);
  EXPECT_EQ(loaded.model, state.model);
  EXPECT_EQ(loaded.reals, state.reals);
  EXPECT_EQ(loaded.words, state.words);
  std::remove(path.c_str());
}

TEST(CheckpointFormat, MissingFileNamesThePath) {
  try {
    (void)io::load_checkpoint("/nonexistent/nowhere.ckpt");
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("nowhere.ckpt"), std::string::npos);
  }
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointFormat, FlippedPayloadByteReportsCrcMismatch) {
  const std::string path = temp_path("corrupt.ckpt");
  io::save_checkpoint(path, sample_state());
  std::vector<char> bytes = slurp(path);
  // Flip a byte deep in the payload region (past magic/version/header).
  bytes[bytes.size() - 12] ^= 0x40;
  spit(path, bytes);
  try {
    (void)io::load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, TruncationIsRejectedAtEveryLength) {
  const std::string path = temp_path("truncated.ckpt");
  io::save_checkpoint(path, sample_state());
  const std::vector<char> bytes = slurp(path);
  // A kill mid-write can leave any prefix; every one must be rejected (a
  // stride keeps the loop fast, the endpoints cover the degenerate cases).
  for (std::size_t keep = 0; keep < bytes.size();
       keep += (keep < 16 ? 1 : 13)) {
    spit(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_THROW((void)io::load_checkpoint(path), io::CheckpointError)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, FutureVersionIsRefused) {
  const std::string path = temp_path("version.ckpt");
  io::save_checkpoint(path, sample_state());
  std::vector<char> bytes = slurp(path);
  bytes[4] = 99;  // little-endian u32 version right after the magic
  spit(path, bytes);
  try {
    (void)io::load_checkpoint(path);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointFormat, WrongMagicIsRefused) {
  const std::string path = temp_path("magic.ckpt");
  io::save_checkpoint(path, sample_state());
  std::vector<char> bytes = slurp(path);
  bytes[0] = 'X';
  spit(path, bytes);
  EXPECT_THROW((void)io::load_checkpoint(path), io::CheckpointError);
  std::remove(path.c_str());
}

TEST(CheckpointResume, WrongSeedIsRefusedBySolver) {
  Fixture f;
  KillAtFence kill(2);
  (void)f.trainer.train("SGD", options_for(), &kill, {.sink = &kill});
  solvers::SnapshotState state = kill.state();
  state.seed ^= 1;
  solvers::SolverOptions opt = options_for();
  EXPECT_THROW((void)f.trainer.train("SGD", opt, nullptr, {.resume = &state}),
               std::invalid_argument);
}

TEST(CheckpointResume, WrongSolverIsRefused) {
  Fixture f;
  KillAtFence kill(2);
  (void)f.trainer.train("SGD", options_for(), &kill, {.sink = &kill});
  const solvers::SnapshotState& state = kill.state();
  EXPECT_THROW(
      (void)f.trainer.train("SAGA", options_for(), nullptr, {.resume = &state}),
      std::invalid_argument);
}

}  // namespace
}  // namespace isasgd
