// Tests for the locked update disciplines (kStriped / kLocked) and the
// Spinlock primitive they are built on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/asgd.hpp"
#include "solvers/model.hpp"
#include "util/spinlock.hpp"

namespace isasgd::solvers {
namespace {

TEST(Spinlock, MutualExclusionUnderContention) {
  util::Spinlock lock;
  long counter = 0;
  constexpr int kThreads = 8, kIters = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard guard(lock);
        ++counter;  // non-atomic: only correct if the lock excludes
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(counter, long(kThreads) * kIters);
}

TEST(Spinlock, TryLockReflectsState) {
  util::Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(UpdatePolicy, NamesRoundTrip) {
  for (UpdatePolicy p : {UpdatePolicy::kWild, UpdatePolicy::kAtomic,
                         UpdatePolicy::kStriped, UpdatePolicy::kLocked}) {
    EXPECT_EQ(update_policy_from_name(update_policy_name(p)), p);
  }
  EXPECT_THROW(update_policy_from_name("rcu"), std::invalid_argument);
}

TEST(SharedModel, StripeCountConfigurable) {
  SharedModel a(10);
  EXPECT_EQ(a.lock_stripes(), 1024u);
  SharedModel b(10, 64);
  EXPECT_EQ(b.lock_stripes(), 64u);
  SharedModel c(10, 0);  // degenerate request clamps to one stripe
  EXPECT_EQ(c.lock_stripes(), 1u);
}

/// Hammers one hot coordinate from many threads under `policy`; returns the
/// final value (each of the kThreads·kIters adds is +1).
double hammer(UpdatePolicy policy, std::size_t stripes = 16) {
  SharedModel model(4, stripes);
  constexpr int kThreads = 8, kIters = 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) model.add(1, 1.0, policy);
    });
  }
  for (auto& t : pool) t.join();
  return model.load(1);
}

TEST(SharedModel, LockedPoliciesNeverLoseUpdates) {
  constexpr double kExpected = 8.0 * 50000.0;
  EXPECT_DOUBLE_EQ(hammer(UpdatePolicy::kAtomic), kExpected);
  EXPECT_DOUBLE_EQ(hammer(UpdatePolicy::kStriped), kExpected);
  EXPECT_DOUBLE_EQ(hammer(UpdatePolicy::kLocked), kExpected);
  EXPECT_DOUBLE_EQ(hammer(UpdatePolicy::kStriped, 1), kExpected);
}

TEST(SharedModel, WildMayLoseButNeverInvents) {
  // Hogwild semantics: lost updates shrink the count; nothing can grow it.
  const double got = hammer(UpdatePolicy::kWild);
  EXPECT_LE(got, 8.0 * 50000.0);
  EXPECT_GT(got, 0.0);
}

TEST(Asgd, ConvergesUnderEveryPolicy) {
  data::SyntheticSpec spec;
  spec.rows = 1000;
  spec.dim = 200;
  spec.mean_row_nnz = 8;
  spec.label_noise = 0.02;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               4);
  for (UpdatePolicy policy : {UpdatePolicy::kWild, UpdatePolicy::kAtomic,
                              UpdatePolicy::kStriped, UpdatePolicy::kLocked}) {
    SolverOptions opt;
    opt.epochs = 6;
    opt.threads = 4;
    opt.seed = 5;
    opt.update_policy = policy;
    const Trace t = run_asgd(data, loss, opt, evaluator.as_fn());
    EXPECT_LT(t.points.back().rmse, 0.7 * t.points.front().rmse)
        << update_policy_name(policy);
  }
}

}  // namespace
}  // namespace isasgd::solvers
