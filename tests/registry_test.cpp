// SolverRegistry: every seed solver self-registers, names round-trip
// through lookup, capability flags agree with the legacy serial/async
// split, and runtime registration stays open for downstream solvers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/experiment.hpp"
#include "solvers/solver.hpp"

namespace isasgd::solvers {
namespace {

/// The nine solvers the legacy Algorithm enum listed.
constexpr const char* kEnumSolvers[] = {
    "SGD",      "IS-SGD",    "ASGD", "IS-ASGD", "SVRG-SGD",
    "SVRG-ASGD", "SAGA",     "SVRG-LAZY", "SAG",
};

/// The prox family, registered from its own TU — never in the enum.
constexpr const char* kProxSolvers[] = {
    "PROX-SGD", "IS-PROX-SGD", "PROX-ASGD", "IS-PROX-ASGD",
};

/// The simulated-time family: the distributed cluster engines and the
/// delay-injection serialisations, registered from src/distributed/ and
/// src/simulate/ — subsystems outside src/solvers/ entirely.
constexpr const char* kSimulatedSolvers[] = {
    "dist.ps.is_asgd", "dist.ps.asgd",       "dist.allreduce.sgd",
    "sim.delayed_sgd", "sim.delayed_is_sgd",
};

TEST(SolverRegistry, EverySeedSolverIsRegistered) {
  const auto names = SolverRegistry::instance().list();
  for (const char* expected : kEnumSolvers) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const char* expected : kProxSolvers) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  for (const char* expected : kSimulatedSolvers) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(SolverRegistry, ListedNamesRoundTripThroughLookup) {
  const auto& registry = SolverRegistry::instance();
  for (const std::string& name : registry.list()) {
    const Solver* solver = registry.find(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
    // get() on the same spelling resolves to the same instance.
    EXPECT_EQ(&registry.get(name), solver);
  }
}

TEST(SolverRegistry, NormalizationUnifiesSpellings) {
  const auto& registry = SolverRegistry::instance();
  const Solver* canonical = registry.find("IS-ASGD");
  ASSERT_NE(canonical, nullptr);
  for (const char* spelling : {"is_asgd", "is-asgd", "IS_ASGD", "Is-AsGd"}) {
    EXPECT_EQ(registry.find(spelling), canonical) << spelling;
  }
  EXPECT_EQ(SolverRegistry::normalize("IS-ASGD"), "is_asgd");
}

TEST(SolverRegistry, UnknownNameFindReturnsNullGetThrowsWithMenu) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_EQ(registry.find("adam"), nullptr);
  try {
    (void)registry.get("adam");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("adam"), std::string::npos);
    for (const char* name : kEnumSolvers) {
      EXPECT_NE(message.find(name), std::string::npos) << name;
    }
  }
}

TEST(SolverRegistry, CapabilitiesMatchLegacySerialSplit) {
  // The old core::is_serial(Algorithm) hard-wired SGD/IS-SGD/SVRG-SGD/SAGA
  // as serial; capabilities must agree, and additionally classify the
  // serial solvers the old list forgot (SAG, SVRG-LAZY).
  for (const char* name :
       {"SGD", "IS-SGD", "SVRG-SGD", "SAGA", "SAG", "SVRG-LAZY"}) {
    EXPECT_TRUE(SolverRegistry::instance().get(name).capabilities().serial())
        << name;
    EXPECT_TRUE(core::is_serial(name)) << name;
  }
  for (const char* name : {"ASGD", "IS-ASGD", "SVRG-ASGD"}) {
    EXPECT_TRUE(SolverRegistry::instance().get(name).capabilities().parallel)
        << name;
    EXPECT_FALSE(core::is_serial(name)) << name;
  }
}

TEST(SolverRegistry, CapabilityFlagsReflectAlgorithmFamilies) {
  const auto& registry = SolverRegistry::instance();
  EXPECT_TRUE(registry.get("IS-ASGD").capabilities().importance_sampling);
  EXPECT_FALSE(registry.get("ASGD").capabilities().importance_sampling);
  EXPECT_TRUE(registry.get("SVRG-SGD").capabilities().variance_reduced);
  EXPECT_TRUE(registry.get("SAGA").capabilities().variance_reduced);
  EXPECT_FALSE(registry.get("SGD").capabilities().variance_reduced);
  EXPECT_TRUE(registry.get("PROX-SGD").capabilities().proximal);
  EXPECT_TRUE(registry.get("IS-PROX-ASGD").capabilities().importance_sampling);
  EXPECT_FALSE(registry.get("IS-ASGD").capabilities().proximal);
}

TEST(SolverRegistry, SimulatedFamilyFlagsAndSpellings) {
  const auto& registry = SolverRegistry::instance();
  for (const char* name : kSimulatedSolvers) {
    const SolverCapabilities caps = registry.get(name).capabilities();
    EXPECT_TRUE(caps.simulated_time) << name;
    // spec.nodes (not options.threads) is the parallelism: one run covers
    // every requested thread count in a sweep.
    EXPECT_TRUE(caps.serial()) << name;
  }
  // No host-clock solver claims a simulated time axis.
  for (const char* name : kEnumSolvers) {
    EXPECT_FALSE(registry.get(name).capabilities().simulated_time) << name;
  }
  EXPECT_TRUE(registry.get("dist.ps.is_asgd").capabilities().importance_sampling);
  EXPECT_FALSE(registry.get("dist.ps.asgd").capabilities().importance_sampling);
  // The parameter-server pair trains shard-by-shard from a DataSource.
  EXPECT_TRUE(registry.get("dist.ps.is_asgd").capabilities().streaming);
  EXPECT_TRUE(registry.get("dist.ps.asgd").capabilities().streaming);
  // Dotted names normalize like every other: case-insensitive, '-' → '_'.
  EXPECT_EQ(registry.find("DIST.PS.IS-ASGD"), &registry.get("dist.ps.is_asgd"));
  EXPECT_EQ(SolverRegistry::normalize("DIST.PS.IS-ASGD"), "dist.ps.is_asgd");
}

TEST(SolverRegistry, RejectsDuplicateAndNullRegistration) {
  class Impostor final : public Solver {
   public:
    std::string_view name() const noexcept override { return "sgd"; }
    SolverCapabilities capabilities() const noexcept override { return {}; }

   protected:
    Trace run_impl(const SolverContext&) const override { return {}; }
  };
  // "sgd" normalizes onto the registered "SGD".
  EXPECT_THROW(SolverRegistry::instance().register_solver(
                   std::make_unique<Impostor>()),
               std::logic_error);
  EXPECT_THROW(SolverRegistry::instance().register_solver(nullptr),
               std::logic_error);
}

}  // namespace
}  // namespace isasgd::solvers
