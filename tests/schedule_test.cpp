#include <gtest/gtest.h>

#include <cmath>

#include "solvers/options.hpp"
#include "solvers/schedule.hpp"

namespace isasgd::solvers {
namespace {

TEST(Schedule, ConstantIsConstant) {
  SolverOptions opt;
  opt.step_size = 0.5;
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1), 0.5);
  EXPECT_DOUBLE_EQ(epoch_step(opt, 10), 0.5);
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1000), 0.5);
}

TEST(Schedule, EpochDecayMatchesLegacySemantics) {
  // The legacy in-loop `step *= decay` applied after each epoch: epoch 1
  // sees λ0, epoch e sees λ0·decay^(e−1). epoch_step must reproduce that.
  SolverOptions opt;
  opt.step_size = 1.0;
  opt.step_decay = 0.9;
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1), 1.0);
  EXPECT_NEAR(epoch_step(opt, 2), 0.9, 1e-15);
  EXPECT_NEAR(epoch_step(opt, 5), std::pow(0.9, 4), 1e-15);
}

TEST(Schedule, InvEpochDecaysHarmonically) {
  SolverOptions opt;
  opt.step_size = 1.0;
  opt.step_schedule = ScheduleKind::kInvEpoch;
  opt.schedule_offset = 1.0;
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1), 1.0);
  EXPECT_DOUBLE_EQ(epoch_step(opt, 2), 0.5);
  EXPECT_DOUBLE_EQ(epoch_step(opt, 5), 0.2);
}

TEST(Schedule, InvEpochOffsetSlowsDecay) {
  SolverOptions opt;
  opt.step_size = 1.0;
  opt.step_schedule = ScheduleKind::kInvEpoch;
  opt.schedule_offset = 10.0;
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1), 1.0);
  EXPECT_NEAR(epoch_step(opt, 11), 0.5, 1e-15);
}

TEST(Schedule, InvSqrtDecaysAsRoot) {
  SolverOptions opt;
  opt.step_size = 2.0;
  opt.step_schedule = ScheduleKind::kInvSqrtEpoch;
  opt.schedule_offset = 1.0;
  EXPECT_DOUBLE_EQ(epoch_step(opt, 1), 2.0);
  EXPECT_NEAR(epoch_step(opt, 4), 2.0 / std::sqrt(4.0), 1e-15);
  EXPECT_NEAR(epoch_step(opt, 100), 2.0 / std::sqrt(100.0), 1e-15);
}

TEST(Schedule, DecayComposesWithSchedule) {
  SolverOptions opt;
  opt.step_size = 1.0;
  opt.step_schedule = ScheduleKind::kInvEpoch;
  opt.step_decay = 0.5;
  EXPECT_NEAR(epoch_step(opt, 3), (1.0 / 3.0) * 0.25, 1e-15);
}

TEST(Schedule, MonotoneNonIncreasing) {
  for (ScheduleKind kind : {ScheduleKind::kConstant, ScheduleKind::kInvEpoch,
                            ScheduleKind::kInvSqrtEpoch}) {
    SolverOptions opt;
    opt.step_schedule = kind;
    opt.schedule_offset = 3.0;
    double prev = epoch_step(opt, 1);
    for (std::size_t e = 2; e <= 50; ++e) {
      const double cur = epoch_step(opt, e);
      EXPECT_LE(cur, prev + 1e-15) << schedule_name(kind) << " epoch " << e;
      EXPECT_GT(cur, 0.0);
      prev = cur;
    }
  }
}

TEST(Schedule, NamesRoundTrip) {
  for (ScheduleKind kind : {ScheduleKind::kConstant, ScheduleKind::kInvEpoch,
                            ScheduleKind::kInvSqrtEpoch}) {
    EXPECT_EQ(schedule_from_name(schedule_name(kind)), kind);
  }
  EXPECT_THROW(schedule_from_name("cosine"), std::invalid_argument);
}

TEST(TheoryStep, MatchesLemma2Formula) {
  // λ = εμ/(2εμ·supL + 2σ²).
  const double eps = 0.01, mu = 2.0, supL = 10.0, sigma2 = 0.5;
  const double expected =
      eps * mu / (2 * eps * mu * supL + 2 * sigma2);
  EXPECT_NEAR(theory_step_size(eps, mu, supL, sigma2), expected, 1e-15);
}

TEST(TheoryStep, ZeroResidualGivesHalfInverseSupL) {
  // σ² = 0 (interpolation regime): λ = 1/(2·supL), independent of ε and μ.
  EXPECT_NEAR(theory_step_size(0.1, 1.0, 4.0, 0.0), 1.0 / 8.0, 1e-15);
  EXPECT_NEAR(theory_step_size(7.0, 0.3, 4.0, 0.0), 1.0 / 8.0, 1e-15);
}

TEST(TheoryStep, TighterTargetShrinksStep) {
  const double a = theory_step_size(0.1, 1.0, 5.0, 1.0);
  const double b = theory_step_size(0.001, 1.0, 5.0, 1.0);
  EXPECT_LT(b, a);
}

TEST(TheoryStep, RejectsInvalidInputs) {
  EXPECT_THROW(theory_step_size(0.0, 1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(theory_step_size(1.0, -1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(theory_step_size(1.0, 1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(theory_step_size(1.0, 1.0, 1.0, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace isasgd::solvers
