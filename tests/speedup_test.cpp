#include "metrics/speedup.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace isasgd::metrics {
namespace {

/// Builds a trace whose error decays linearly from `start` to `end` over
/// `duration` seconds in `epochs` steps.
solvers::Trace linear_trace(double start, double end, double duration,
                            std::size_t epochs, double setup = 0) {
  solvers::Trace t;
  t.algorithm = "LIN";
  for (std::size_t e = 0; e <= epochs; ++e) {
    const double frac = static_cast<double>(e) / static_cast<double>(epochs);
    t.points.push_back(solvers::TracePoint{
        .epoch = e,
        .seconds = duration * frac,
        .rmse = start - frac * (start - end),
        .error_rate = start - frac * (start - end),
        .objective = 0,
    });
  }
  t.setup_seconds = setup;
  t.train_seconds = duration;
  return t;
}

TEST(Speedup, TwiceAsFastGivesTwo) {
  // Same error curve, half the wall-clock → speedup 2 at every slice.
  const auto slow = linear_trace(0.5, 0.1, 10.0, 10);
  const auto fast = linear_trace(0.5, 0.1, 5.0, 10);
  const auto s = compute_speedup(slow, fast, 8, false);
  ASSERT_FALSE(s.slices.empty());
  for (const auto& p : s.slices) {
    if (p.accelerated_seconds == 0) continue;  // degenerate top slice
    EXPECT_NEAR(p.speedup, 2.0, 1e-6) << "at error " << p.error_rate;
  }
  EXPECT_NEAR(s.optimum_speedup, 2.0, 1e-6);
  EXPECT_NEAR(s.optimum_error, 0.1, 1e-12);
}

TEST(Speedup, IdenticalTracesGiveOne) {
  const auto a = linear_trace(0.4, 0.05, 8.0, 16);
  const auto s = compute_speedup(a, a, 8, false);
  ASSERT_FALSE(s.slices.empty());
  EXPECT_NEAR(s.average_speedup, 1.0, 1e-6);
}

TEST(Speedup, SetupTimePenalisesAccelerated) {
  const auto slow = linear_trace(0.5, 0.1, 10.0, 10);
  const auto fast = linear_trace(0.5, 0.1, 5.0, 10, /*setup=*/5.0);
  const auto with_setup = compute_speedup(slow, fast, 8, true);
  const auto without = compute_speedup(slow, fast, 8, false);
  EXPECT_LT(with_setup.average_speedup, without.average_speedup);
}

TEST(Speedup, AcceleratedReachingLowerOptimumStillScoresAtBaselineBest) {
  const auto baseline = linear_trace(0.5, 0.2, 10.0, 10);
  const auto better = linear_trace(0.5, 0.05, 10.0, 10);
  const auto s = compute_speedup(baseline, better, 8, false);
  // Baseline best is 0.2; the accelerated curve reaches 0.2 at
  // t = 10·(0.3/0.45) ≈ 6.67 → speedup 1.5.
  EXPECT_NEAR(s.optimum_speedup, 10.0 / (10.0 * (0.3 / 0.45)), 1e-6);
}

TEST(Speedup, DisjointRangesYieldEmptySlices) {
  // Baseline never goes below 0.4; accelerated starts below 0.3 — no common
  // grid beyond the trivial top.
  const auto baseline = linear_trace(0.5, 0.45, 10.0, 4);
  const auto accelerated = linear_trace(0.25, 0.05, 10.0, 4);
  const auto s = compute_speedup(baseline, accelerated, 8, false);
  EXPECT_TRUE(s.slices.empty());
}

TEST(Speedup, EmptyTracesAreSafe) {
  solvers::Trace empty;
  const auto s = compute_speedup(empty, empty, 8, false);
  EXPECT_TRUE(s.slices.empty());
  EXPECT_DOUBLE_EQ(s.average_speedup, 0.0);
}

TEST(Speedup, MinMaxBracketAverage) {
  const auto slow = linear_trace(0.5, 0.1, 12.0, 6);
  const auto fast = linear_trace(0.45, 0.08, 5.0, 9);
  const auto s = compute_speedup(slow, fast, 12, false);
  ASSERT_FALSE(s.slices.empty());
  EXPECT_LE(s.min_speedup, s.average_speedup);
  EXPECT_GE(s.max_speedup, s.average_speedup);
}

TEST(SpeedupRmse, UsesRmseColumn) {
  // Make rmse and error disagree: rmse halves, error constant.
  auto mk = [](double duration) {
    solvers::Trace t;
    for (std::size_t e = 0; e <= 4; ++e) {
      const double frac = e / 4.0;
      t.points.push_back(solvers::TracePoint{
          .epoch = e,
          .seconds = duration * frac,
          .rmse = 1.0 - 0.5 * frac,
          .error_rate = 0.5,
          .objective = 0,
      });
    }
    return t;
  };
  const auto s = compute_rmse_speedup(mk(10.0), mk(2.0), 6, false);
  ASSERT_FALSE(s.slices.empty());
  for (const auto& p : s.slices) {
    if (p.accelerated_seconds == 0) continue;
    EXPECT_NEAR(p.speedup, 5.0, 1e-6);
  }
}

}  // namespace
}  // namespace isasgd::metrics
