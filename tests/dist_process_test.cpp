// Real-backend cross-validation: the process group (1 PS + k workers over a
// real transport) must produce the SAME BITS as the fenced simulator — per
// solver, per transport — and must actually train (closed-form optimum on an
// identity-design least-squares problem).
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/trainer.hpp"
#include "sparse/csr_builder.hpp"
#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "distributed/fenced.hpp"
#include "distributed/real_runtime.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"

namespace isasgd::distributed {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator;

  explicit Fixture(std::size_t rows = 300, std::size_t dim = 60)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 6;
          spec.target_psi = 0.85;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 1) {}
};

solvers::SolverOptions small_options() {
  solvers::SolverOptions opt;
  opt.step_size = 0.3;
  opt.epochs = 3;
  opt.seed = 1234;
  opt.keep_final_model = true;
  return opt;
}

ClusterSpec process_spec(const std::string& transport, std::size_t nodes = 2) {
  ClusterSpec spec;
  spec.nodes = nodes;
  spec.backend = Backend::kProcess;
  spec.schedule = Schedule::kFencedRoundRobin;
  spec.transport = transport;
  return spec;
}

void expect_bit_identical(const solvers::Trace& real,
                          const solvers::Trace& sim, const char* what) {
  ASSERT_EQ(real.final_model.size(), sim.final_model.size()) << what;
  for (std::size_t j = 0; j < real.final_model.size(); ++j) {
    ASSERT_EQ(real.final_model[j], sim.final_model[j])
        << what << ": coordinate " << j << " diverged";
  }
  ASSERT_EQ(real.points.size(), sim.points.size()) << what;
  for (std::size_t p = 0; p < real.points.size(); ++p) {
    // Same models at every fence ⇒ same metrics at every epoch (times
    // differ: wall vs simulated).
    ASSERT_EQ(real.points[p].objective, sim.points[p].objective)
        << what << ": epoch " << real.points[p].epoch;
  }
}

class PsProcessSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(PsProcessSuite, IsAsgdMatchesFencedSimulatorBitForBit) {
  Fixture fx;
  const auto opt = small_options();
  ClusterSpec spec = process_spec(GetParam());
  ParamServerReport real_report;
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn(), &real_report);
  spec.backend = Backend::kSimulate;
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  expect_bit_identical(real, sim, "ps_is_asgd");
  // 2 nodes × 3 epochs over 300 rows: every sample became one push.
  EXPECT_EQ(real_report.messages, 3u * fx.data.rows());
  EXPECT_EQ(real_report.mean_staleness_updates, 0.0);
}

TEST_P(PsProcessSuite, AsgdUniformMatchesFencedSimulatorBitForBit) {
  Fixture fx;
  const auto opt = small_options();
  ClusterSpec spec = process_spec(GetParam());
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn());
  spec.backend = Backend::kSimulate;
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn());
  expect_bit_identical(real, sim, "ps_asgd");
}

TEST_P(PsProcessSuite, AllreduceMatchesFencedSimulatorBitForBit) {
  Fixture fx;
  auto opt = small_options();
  opt.batch_size = 8;
  ClusterSpec spec = process_spec(GetParam());
  AllreduceReport real_report;
  const solvers::Trace real = run_allreduce_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn(), &real_report);
  spec.backend = Backend::kSimulate;
  AllreduceReport sim_report;
  const solvers::Trace sim = run_allreduce_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/false,
      fx.evaluator.as_fn(), &sim_report);
  expect_bit_identical(real, sim, "allreduce_sgd");
  EXPECT_EQ(real_report.rounds, sim_report.rounds);
}

TEST_P(PsProcessSuite, ThreeWorkersAlsoMatch) {
  Fixture fx;
  const auto opt = small_options();
  ClusterSpec spec = process_spec(GetParam(), /*nodes=*/3);
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  spec.backend = Backend::kSimulate;
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  expect_bit_identical(real, sim, "ps_is_asgd k=3");
}

INSTANTIATE_TEST_SUITE_P(Transports, PsProcessSuite,
                         ::testing::Values(std::string("shm"),
                                           std::string("tcp")),
                         [](const auto& info) { return info.param; });

TEST(PsProcess, TrainsIdentityLeastSquaresToClosedFormOptimum) {
  // Identity design: row i is e_{i mod d} with label y = target[i mod d].
  // The least-squares optimum is w* = target exactly, and each fenced PS
  // step contracts the owning coordinate toward it; 25 epochs at λ=0.5
  // leave an error below 1e-6 per coordinate. A real 1-server/2-worker
  // group must reach it — this is training doing work across processes,
  // not just echoing bytes.
  const std::size_t d = 8, reps = 4;
  std::vector<double> target(d);
  for (std::size_t c = 0; c < d; ++c) {
    target[c] = 0.5 + 0.25 * static_cast<double>(c);
  }
  sparse::CsrBuilder builder(d);
  for (std::size_t i = 0; i < d * reps; ++i) {
    const sparse::index_t c = static_cast<sparse::index_t>(i % d);
    const sparse::value_t one = 1.0;
    builder.add_row(std::span<const sparse::index_t>(&c, 1),
                    std::span<const sparse::value_t>(&one, 1), target[c]);
  }
  const sparse::CsrMatrix data = builder.build();
  objectives::LeastSquaresLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               1);
  solvers::SolverOptions opt;
  opt.step_size = 0.5;
  opt.epochs = 25;
  opt.seed = 7;
  opt.keep_final_model = true;
  const ClusterSpec spec = process_spec("shm");
  const solvers::Trace trace = run_param_server_process(
      data, loss, opt, spec, /*use_importance=*/false, evaluator.as_fn());
  ASSERT_EQ(trace.final_model.size(), d);
  for (std::size_t c = 0; c < d; ++c) {
    EXPECT_NEAR(trace.final_model[c], target[c], 1e-6) << "coordinate " << c;
  }
}

TEST(PsProcess, RegistryDispatchesProcessBackendThroughTrainer) {
  Fixture fx(120, 40);
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(fx.data)
                                    .objective(fx.loss)
                                    .cluster(process_spec("shm"))
                                    .build();
  auto opt = small_options();
  opt.epochs = 2;
  const solvers::Trace via_trainer = trainer.train("dist.ps.is_asgd", opt);
  ClusterSpec sim = process_spec("shm");
  sim.backend = Backend::kSimulate;
  const core::Trainer sim_trainer = core::TrainerBuilder()
                                        .data(fx.data)
                                        .objective(fx.loss)
                                        .cluster(sim)
                                        .build();
  const solvers::Trace via_sim = sim_trainer.train("dist.ps.is_asgd", opt);
  ASSERT_EQ(via_trainer.final_model.size(), via_sim.final_model.size());
  for (std::size_t j = 0; j < via_trainer.final_model.size(); ++j) {
    ASSERT_EQ(via_trainer.final_model[j], via_sim.final_model[j]);
  }
  // The process trace is real wall clock, the simulated one is not.
  EXPECT_FALSE(via_trainer.simulated_time);
  EXPECT_TRUE(via_sim.simulated_time);
}

TEST(PsProcess, EarlyStopPropagatesToTheGroup) {
  // An observer stopping at epoch 2 must wind the whole process group down
  // cleanly (no hangs, no zombie workers) with exactly 2 recorded epochs.
  struct StopAtTwo final : solvers::TrainingObserver {
    bool on_epoch(const solvers::TracePoint& point) override {
      return point.epoch < 2;
    }
  } stopper;
  Fixture fx(120, 40);
  auto opt = small_options();
  opt.epochs = 50;
  const solvers::Trace trace = run_param_server_process(
      fx.data, fx.loss, opt, process_spec("shm"), /*use_importance=*/true,
      fx.evaluator.as_fn(), nullptr, &stopper);
  ASSERT_FALSE(trace.points.empty());
  EXPECT_EQ(trace.points.back().epoch, 2u);
}

TEST(ProcessSpec, ValidationRejectsEventClockProcessAndBadTransport) {
  ClusterSpec spec = process_spec("shm");
  spec.schedule = Schedule::kEventClock;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = process_spec("shm");
  spec.transport = "carrier-pigeon";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = process_spec("shm");
  spec.bind_address = "tcp://127.0.0.1:0";  // scheme/transport mismatch
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = process_spec("tcp");
  spec.bind_address = "tcp://127.0.0.1:0";
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace isasgd::distributed
