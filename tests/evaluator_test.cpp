#include "metrics/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

#include "data/synthetic.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "sparse/csr_builder.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::metrics {
namespace {

sparse::CsrMatrix two_row_data() {
  sparse::CsrBuilder b(2);
  b.add_row(std::vector<sparse::index_t>{0}, std::vector<sparse::value_t>{1.0},
            1.0);
  b.add_row(std::vector<sparse::index_t>{1}, std::vector<sparse::value_t>{1.0},
            -1.0);
  return b.build();
}

TEST(Evaluator, ZeroModelScoresLogTwoAndChanceDependsOnSign) {
  const auto data = two_row_data();
  objectives::LogisticLoss loss;
  Evaluator ev(data, loss, objectives::Regularization::none());
  const auto r = ev.evaluate(std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(r.objective, std::log(2.0), 1e-12);
  EXPECT_NEAR(r.rmse, std::sqrt(std::log(2.0)), 1e-12);
  // margin 0 predicts +1: row0 correct, row1 wrong → 50 % error.
  EXPECT_DOUBLE_EQ(r.error_rate, 0.5);
}

TEST(Evaluator, PerfectModelHasZeroError) {
  const auto data = two_row_data();
  objectives::LogisticLoss loss;
  Evaluator ev(data, loss, objectives::Regularization::none());
  const auto r = ev.evaluate(std::vector<double>{10.0, -10.0});
  EXPECT_DOUBLE_EQ(r.error_rate, 0.0);
  EXPECT_LT(r.objective, 1e-4);
}

TEST(Evaluator, RegularizerEntersObjective) {
  const auto data = two_row_data();
  objectives::LogisticLoss loss;
  Evaluator plain(data, loss, objectives::Regularization::none());
  Evaluator l1(data, loss, objectives::Regularization::l1(0.1));
  const std::vector<double> w = {1.0, -1.0};
  EXPECT_NEAR(l1.evaluate(w).objective - plain.evaluate(w).objective,
              0.1 * 2.0, 1e-12);
}

TEST(Evaluator, RegressionErrorRateIsNan) {
  const auto data = two_row_data();
  objectives::LeastSquaresLoss loss;
  Evaluator ev(data, loss, objectives::Regularization::none());
  EXPECT_TRUE(std::isnan(ev.evaluate(std::vector<double>{0, 0}).error_rate));
}

TEST(Evaluator, ParallelMatchesSerial) {
  data::SyntheticSpec spec;
  spec.rows = 5000;
  spec.dim = 400;
  spec.mean_row_nnz = 12;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  Evaluator serial(data, loss, objectives::Regularization::l1(1e-4), 1);
  Evaluator parallel(data, loss, objectives::Regularization::l1(1e-4), 8);
  std::vector<double> w(data.dim());
  util::Rng rng(5);
  for (auto& v : w) v = util::normal_double(rng) * 0.1;
  const auto a = serial.evaluate(w);
  const auto b = parallel.evaluate(w);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
  EXPECT_DOUBLE_EQ(a.error_rate, b.error_rate);
}

TEST(Evaluator, PooledMatchesSerialAndPrivatePool) {
  // The ISSUE-2 parity contract: scoring on a shared ExecutionContext pool,
  // on a lazily-created private pool, and serially must all agree (the
  // chunked reduction is identical for a fixed thread count, so pooled vs
  // per-call-thread results are bit-equal; serial differs only by summation
  // order).
  data::SyntheticSpec spec;
  spec.rows = 3000;
  spec.dim = 300;
  spec.mean_row_nnz = 10;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const auto reg = objectives::Regularization::l2(1e-4);
  util::ThreadPool shared_pool;

  Evaluator serial(data, loss, reg, 1);
  Evaluator pooled(data, loss, reg, 4, &shared_pool);
  Evaluator private_pool(data, loss, reg, 4);  // lazily creates its own

  std::vector<double> w(data.dim());
  util::Rng rng(9);
  for (auto& v : w) v = util::normal_double(rng) * 0.1;

  const auto s = serial.evaluate(w);
  const auto a = pooled.evaluate(w);
  const auto b = private_pool.evaluate(w);
  EXPECT_EQ(a.objective, b.objective);  // same chunking → bit-equal
  EXPECT_EQ(a.error_rate, b.error_rate);
  EXPECT_NEAR(s.objective, a.objective, 1e-12);
  EXPECT_DOUBLE_EQ(s.error_rate, a.error_rate);

  // Repeated evaluations reuse the pool workers — no per-call spawning.
  const auto spawned = shared_pool.threads_spawned();
  for (int i = 0; i < 5; ++i) (void)pooled.evaluate(w);
  EXPECT_EQ(shared_pool.threads_spawned(), spawned);
}

TEST(Evaluator, MoreThreadsThanRowsIsSafe) {
  const auto data = two_row_data();
  objectives::LogisticLoss loss;
  Evaluator ev(data, loss, objectives::Regularization::none(), 16);
  const auto r = ev.evaluate(std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(r.objective, std::log(2.0), 1e-12);
}

TEST(Evaluator, AsFnBindsEvaluator) {
  const auto data = two_row_data();
  objectives::LogisticLoss loss;
  Evaluator ev(data, loss, objectives::Regularization::none());
  const solvers::EvalFn fn = ev.as_fn();
  EXPECT_NEAR(fn(std::vector<double>{0.0, 0.0}).objective, std::log(2.0),
              1e-12);
}

}  // namespace
}  // namespace isasgd::metrics
