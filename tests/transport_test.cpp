// Transport conformance suite: every property the distributed runtime relies
// on, asserted for BOTH backends (tcp and shm) through the same test body.
// Partial transfers, EINTR interruption, torn and oversized frames, typed
// timeouts, and byte-for-byte parity between the backends.
#include "net/transport.hpp"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace isasgd::net {
namespace {

std::string temp_prefix(const char* tag) {
  return "/tmp/isasgd_transport_test_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

/// A listener address per backend. tcp binds an ephemeral port; shm uses a
/// per-test, per-process file prefix.
std::string listen_address(const std::string& backend, const char* tag) {
  if (backend == "tcp") return "tcp://127.0.0.1:0";
  return "shm://" + temp_prefix(tag);
}

/// Connected endpoint pair over `backend`: .first is the accepted (server)
/// side, .second the connecting (client) side.
struct Pair {
  std::unique_ptr<Listener> listener;
  std::unique_ptr<Endpoint> server;
  std::unique_ptr<Endpoint> client;
};

Pair make_pair_over(const std::string& backend, const char* tag) {
  Pair pair;
  pair.listener = listen(listen_address(backend, tag));
  std::thread connector(
      [&] { pair.client = connect(pair.listener->address(), 5000); });
  pair.listener->set_accept_timeout(5000);
  pair.server = pair.listener->accept();
  connector.join();
  return pair;
}

std::string random_payload(std::size_t size, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::string payload(size, '\0');
  for (char& c : payload) c = static_cast<char>(rng() & 0xff);
  return payload;
}

class TransportSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(TransportSuite, FrameRoundTripPreservesTypeAndPayload) {
  Pair pair = make_pair_over(GetParam(), "roundtrip");
  const std::string payload = random_payload(4096, 1);
  std::thread sender([&] { write_frame(*pair.client, 7, payload); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.type, 7u);
  EXPECT_EQ(frame.payload, payload);
}

TEST_P(TransportSuite, EmptyPayloadFrame) {
  Pair pair = make_pair_over(GetParam(), "empty");
  std::thread sender([&] { write_frame(*pair.client, 42, {}); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.type, 42u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST_P(TransportSuite, MultiMegabytePayloadSurvivesPartialTransfers) {
  // 8 MB is far beyond any socket buffer or the 1 MB shm ring, so both
  // backends are forced through many partial send/recv iterations; any
  // offset bug scrambles the bytes.
  Pair pair = make_pair_over(GetParam(), "large");
  const std::string payload = random_payload(std::size_t{8} << 20, 2);
  std::thread sender([&] { write_frame(*pair.client, 3, payload); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.type, 3u);
  ASSERT_EQ(frame.payload.size(), payload.size());
  EXPECT_EQ(frame.payload, payload);
}

TEST_P(TransportSuite, ManySmallFramesKeepOrderAndBoundaries) {
  Pair pair = make_pair_over(GetParam(), "many");
  constexpr int kFrames = 500;
  std::thread sender([&] {
    for (int i = 0; i < kFrames; ++i) {
      write_frame(*pair.client, static_cast<std::uint32_t>(i),
                  std::to_string(i * 31));
    }
  });
  for (int i = 0; i < kFrames; ++i) {
    const Frame frame = read_frame(*pair.server);
    EXPECT_EQ(frame.type, static_cast<std::uint32_t>(i));
    EXPECT_EQ(frame.payload, std::to_string(i * 31));
  }
  sender.join();
}

TEST_P(TransportSuite, PeerCloseMidFrameIsTornFrameKClosed) {
  Pair pair = make_pair_over(GetParam(), "torn");
  // Send only the header + half the announced payload, then close.
  std::thread sender([&] {
    std::string wire(16, '\0');
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t type = 9;
    const std::uint64_t length = 1000;
    std::memcpy(wire.data(), &magic, 4);
    std::memcpy(wire.data() + 4, &type, 4);
    std::memcpy(wire.data() + 8, &length, 8);
    wire.append(500, 'x');
    pair.client->send_bytes(wire.data(), wire.size());
    pair.client->close();
  });
  try {
    (void)read_frame(*pair.server);
    FAIL() << "torn frame must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
    EXPECT_NE(std::string(e.what()).find("torn frame"), std::string::npos)
        << e.what();
  }
  sender.join();
}

TEST_P(TransportSuite, CleanCloseBeforeAnyFrameIsKClosed) {
  Pair pair = make_pair_over(GetParam(), "eof");
  pair.client->close();
  try {
    (void)read_frame(*pair.server);
    FAIL() << "EOF must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kClosed);
  }
}

TEST_P(TransportSuite, OversizedFrameHeaderIsKProtocolNotAllocation) {
  Pair pair = make_pair_over(GetParam(), "oversized");
  std::thread sender([&] {
    char header[16];
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t type = 1;
    const std::uint64_t length = std::uint64_t{1} << 40;  // 1 TB claim
    std::memcpy(header, &magic, 4);
    std::memcpy(header + 4, &type, 4);
    std::memcpy(header + 8, &length, 8);
    pair.client->send_bytes(header, sizeof(header));
  });
  try {
    (void)read_frame(*pair.server);
    FAIL() << "oversized frame must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kProtocol);
  }
  sender.join();
}

TEST_P(TransportSuite, BadMagicIsKProtocol) {
  Pair pair = make_pair_over(GetParam(), "magic");
  std::thread sender([&] {
    const char junk[16] = {'n', 'o', 't', 'a', 'f', 'r', 'a', 'm',
                           'e', 'a', 't', 'a', 'l', 'l', '!', '!'};
    pair.client->send_bytes(junk, sizeof(junk));
  });
  try {
    (void)read_frame(*pair.server);
    FAIL() << "bad magic must throw";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kProtocol);
  }
  sender.join();
}

TEST_P(TransportSuite, OversizedSendIsRejectedLocally) {
  Pair pair = make_pair_over(GetParam(), "sendcap");
  const std::string too_big(kMaxFramePayload + 1, 'x');
  try {
    write_frame(*pair.client, 1, too_big);
    FAIL() << "oversized payload must throw before sending";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kProtocol);
  }
}

TEST_P(TransportSuite, RecvTimeoutIsTypedKTimeout) {
  Pair pair = make_pair_over(GetParam(), "timeout");
  pair.server->set_io_timeout(100);
  char byte = 0;
  try {
    pair.server->recv_bytes(&byte, 1);
    FAIL() << "recv with no sender must time out";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
  }
  // The timeout must not poison the stream: clear it, send, receive fine.
  pair.server->set_io_timeout(-1);
  std::thread sender([&] { write_frame(*pair.client, 5, "after-timeout"); });
  const Frame frame = read_frame(*pair.server);
  sender.join();
  EXPECT_EQ(frame.payload, "after-timeout");
}

TEST_P(TransportSuite, AcceptTimeoutIsTypedKTimeout) {
  auto listener = listen(listen_address(GetParam(), "accept_to"));
  listener->set_accept_timeout(100);
  try {
    (void)listener->accept();
    FAIL() << "accept with no client must time out";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
  }
}

TEST_P(TransportSuite, ConnectToNobodyTimesOut) {
  const std::string address = GetParam() == "tcp"
                                  ? "tcp://127.0.0.1:1"  // reserved port
                                  : "shm://" + temp_prefix("nobody");
  try {
    (void)connect(address, 200);
    FAIL() << "connect with no listener must time out";
  } catch (const TransportError& e) {
    EXPECT_EQ(e.kind(), TransportError::Kind::kTimeout);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportSuite,
                         ::testing::Values(std::string("tcp"),
                                           std::string("shm")),
                         [](const auto& info) { return info.param; });

// ---- EINTR resilience (tcp only: the shm path makes no syscalls) -----------

std::atomic<int> g_sigusr1_count{0};
void count_signal(int) { g_sigusr1_count.fetch_add(1); }

TEST(TransportEintr, TcpTransferSurvivesSignalStorm) {
  // Install SIGUSR1 *without* SA_RESTART so every blocking syscall in the
  // receiver thread is genuinely interrupted with EINTR.
  struct sigaction sa {};
  sa.sa_handler = count_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  struct sigaction old {};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  auto listener = listen("tcp://127.0.0.1:0");
  std::unique_ptr<Endpoint> client;
  std::thread connector(
      [&] { client = connect(listener->address(), 5000); });
  listener->set_accept_timeout(5000);
  auto server = listener->accept();
  connector.join();

  const std::string payload = random_payload(std::size_t{4} << 20, 3);
  std::atomic<bool> done{false};
  Frame frame;
  std::thread receiver([&] {
    frame = read_frame(*server);
    done.store(true);
  });
  std::thread sender([&] {
    // Trickle the payload so the receiver spends real time blocked in
    // recv/poll while signals land.
    constexpr std::size_t kChunk = 64 << 10;
    std::string wire(16, '\0');
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t type = 11;
    const std::uint64_t length = payload.size();
    std::memcpy(wire.data(), &magic, 4);
    std::memcpy(wire.data() + 4, &type, 4);
    std::memcpy(wire.data() + 8, &length, 8);
    client->send_bytes(wire.data(), wire.size());
    for (std::size_t off = 0; off < payload.size(); off += kChunk) {
      client->send_bytes(payload.data() + off,
                         std::min(kChunk, payload.size() - off));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  while (!done.load()) {
    pthread_kill(receiver.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  receiver.join();
  sender.join();
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);

  EXPECT_GT(g_sigusr1_count.load(), 0);
  EXPECT_EQ(frame.type, 11u);
  EXPECT_EQ(frame.payload, payload);
}

// ---- Cross-backend parity ---------------------------------------------------

TEST(TransportParity, ShmAndTcpDeliverIdenticalBytes) {
  // The distributed runtime treats the transport as interchangeable: the
  // same frame sequence pushed through both backends must come out
  // byte-identical, or "bit-identical training over shm and tcp" is void.
  std::vector<Frame> sent;
  std::mt19937 rng(17);
  for (int i = 0; i < 64; ++i) {
    Frame f;
    f.type = rng() % 1000;
    f.payload = random_payload(rng() % 20000, rng());
    sent.push_back(std::move(f));
  }
  for (const std::string backend : {"tcp", "shm"}) {
    Pair pair = make_pair_over(backend, "parity");
    std::thread sender([&] {
      for (const Frame& f : sent) write_frame(*pair.client, f.type, f.payload);
    });
    for (const Frame& f : sent) {
      const Frame got = read_frame(*pair.server);
      ASSERT_EQ(got.type, f.type) << backend;
      ASSERT_EQ(got.payload, f.payload) << backend;
    }
    sender.join();
  }
}

}  // namespace
}  // namespace isasgd::net
