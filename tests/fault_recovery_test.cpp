// Fault/recovery conformance: the fault-tolerant PS runtime under injected
// wire faults and scripted crashes must still produce the SAME BITS as the
// fenced simulator — per transport — and must still train to the closed-form
// optimum. Wire faults retry against a fault-free sim twin (a single lost,
// duplicated or double-applied push would diverge the model bits, so
// bit-identity IS the exactly-once proof); scripted crashes compare against
// the crash-aware sim mirror running the same FaultScenario through the
// shared plan_assignment re-planning.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "distributed/fenced.hpp"
#include "distributed/param_server.hpp"
#include "distributed/real_runtime.hpp"
#include "distributed/recovery.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "sparse/csr_builder.hpp"

namespace isasgd::distributed {
namespace {

// ---- plan_assignment: the shared fence-time re-planning ---------------------

TEST(PlanAssignment, AllAliveIsIdentity) {
  EXPECT_EQ(plan_assignment(3, {1, 1, 1}, RecoveryPolicy::kReshard),
            identity_assignment(3));
  EXPECT_EQ(plan_assignment(3, {1, 1, 1}, RecoveryPolicy::kNone),
            identity_assignment(3));
}

TEST(PlanAssignment, OrphansGoFewestWalksFirstLowestRankOnTies) {
  const Assignment got =
      plan_assignment(4, {1, 0, 1, 0}, RecoveryPolicy::kReshard);
  // Walk 1 → rank 0 (tie on count, lowest rank); walk 3 → rank 2 (now the
  // fewest-loaded survivor).
  const Assignment want = {{0, 1}, {}, {2, 3}, {}};
  EXPECT_EQ(got, want);
}

TEST(PlanAssignment, SingleSurvivorAdoptsEverything) {
  const Assignment got =
      plan_assignment(3, {0, 1, 0}, RecoveryPolicy::kReshard);
  const Assignment want = {{}, {1, 0, 2}, {}};  // home walk first, then
  EXPECT_EQ(got, want);                         // orphans in walk order
}

TEST(PlanAssignment, PolicyNoneLeavesOrphansUnassigned) {
  const Assignment got = plan_assignment(4, {1, 0, 1, 0}, RecoveryPolicy::kNone);
  const Assignment want = {{0}, {}, {2}, {}};
  EXPECT_EQ(got, want);
}

TEST(PlanAssignment, IdempotentInAliveSet) {
  // Re-planning every fence must equal planning once per membership change.
  const std::vector<char> alive = {1, 0, 0, 1, 1};
  const Assignment once = plan_assignment(5, alive, RecoveryPolicy::kReshard);
  EXPECT_EQ(plan_assignment(5, alive, RecoveryPolicy::kReshard), once);
}

TEST(FaultScenario, ValidationNamesTheOffendingField) {
  const auto expect_throw = [](FaultScenario s, std::size_t nodes,
                               const char* field) {
    try {
      s.validate(nodes);
      FAIL() << field << " must be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  FaultScenario s;
  s.crash_epoch = 1;
  expect_throw(s, 1, "nodes");  // a 1-node group has no survivor
  s = {};
  s.crash_epoch = 1;
  s.crash_node = 2;
  expect_throw(s, 2, "crash_node");
  s = {};
  s.crash_epoch = 1;
  s.crash_fraction = 1.0;
  expect_throw(s, 2, "crash_fraction");
  s = {};
  s.crash_epoch = 3;
  s.rejoin_epoch = 3;
  expect_throw(s, 2, "rejoin_epoch");
}

TEST(ClusterSpecFaults, WireFaultsRequireTheProcessBackend) {
  ClusterSpec spec;
  spec.nodes = 2;
  spec.backend = Backend::kSimulate;
  spec.wire_faults.drop_rate = 0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.backend = Backend::kProcess;
  spec.schedule = Schedule::kFencedRoundRobin;
  EXPECT_NO_THROW(spec.validate());
}

TEST(ClusterSpecFaults, AllreduceEnginesRejectFaultInjection) {
  data::SyntheticSpec dspec;
  dspec.rows = 40;
  dspec.dim = 10;
  const sparse::CsrMatrix data = data::generate(dspec);
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               1);
  solvers::SolverOptions opt;
  opt.epochs = 1;
  ClusterSpec spec;
  spec.nodes = 2;
  spec.fault.crash_node = 0;
  spec.fault.crash_epoch = 1;
  EXPECT_THROW((void)run_allreduce_fenced(data, loss, opt, spec, false,
                                          evaluator.as_fn()),
               std::invalid_argument);
  EXPECT_THROW((void)run_allreduce_sgd(data, loss, opt, spec, false,
                                       evaluator.as_fn()),
               std::invalid_argument);
  spec.backend = Backend::kProcess;
  spec.schedule = Schedule::kFencedRoundRobin;
  EXPECT_THROW((void)run_allreduce_process(data, loss, opt, spec, false,
                                           evaluator.as_fn()),
               std::invalid_argument);
}

// ---- Real runtime vs sim mirror, per transport ------------------------------

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator;

  explicit Fixture(std::size_t rows = 120, std::size_t dim = 40)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = 6;
          spec.target_psi = 0.85;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 1) {}
};

solvers::SolverOptions small_options(std::size_t epochs) {
  solvers::SolverOptions opt;
  opt.step_size = 0.3;
  opt.epochs = epochs;
  opt.seed = 1234;
  opt.keep_final_model = true;
  return opt;
}

/// Process-backend spec with CI-friendly recovery deadlines (the defaults
/// are sized for production patience, not test wall clock).
ClusterSpec faulty_spec(const std::string& transport, std::size_t nodes = 2) {
  ClusterSpec spec;
  spec.nodes = nodes;
  spec.backend = Backend::kProcess;
  spec.schedule = Schedule::kFencedRoundRobin;
  spec.transport = transport;
  spec.recovery.reply_timeout_ms = 80;
  spec.recovery.liveness_timeout_ms = 500;
  spec.recovery.fence_reply_timeout_ms = 2000;
  spec.recovery.backoff_initial_ms = 1.0;
  spec.recovery.backoff_max_ms = 10.0;
  return spec;
}

/// The sim twin of `spec`: same scenario/policy, no wire faults (the sim has
/// no wire), simulate backend.
ClusterSpec sim_twin(ClusterSpec spec) {
  spec.backend = Backend::kSimulate;
  spec.wire_faults = net::FaultSpec{};
  return spec;
}

void expect_bit_identical(const solvers::Trace& real,
                          const solvers::Trace& sim, const char* what) {
  ASSERT_EQ(real.final_model.size(), sim.final_model.size()) << what;
  for (std::size_t j = 0; j < real.final_model.size(); ++j) {
    ASSERT_EQ(real.final_model[j], sim.final_model[j])
        << what << ": coordinate " << j << " diverged";
  }
  ASSERT_EQ(real.points.size(), sim.points.size()) << what;
  for (std::size_t p = 0; p < real.points.size(); ++p) {
    ASSERT_EQ(real.points[p].objective, sim.points[p].objective)
        << what << ": epoch " << real.points[p].epoch;
  }
}

class FaultRecoverySuite : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultRecoverySuite, WireFaultsRetryToTheFaultFreeBits) {
  // Drops, delays, torn writes and resets on every stream — yet the final
  // model must equal the fault-free simulator's bits exactly. Any lost or
  // twice-applied push breaks this, so passing proves the sequence-numbered
  // retry protocol delivers exactly-once application.
  Fixture fx;
  const auto opt = small_options(3);
  ClusterSpec spec = faulty_spec(GetParam());
  spec.wire_faults.seed = 2026;
  spec.wire_faults.drop_rate = 0.02;
  spec.wire_faults.delay_rate = 0.04;
  spec.wire_faults.torn_rate = 0.01;
  spec.wire_faults.reset_rate = 0.01;
  spec.wire_faults.max_delay_ms = 2;
  ParamServerReport report;
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn(), &report);
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, sim_twin(spec), /*use_importance=*/true,
      fx.evaluator.as_fn());
  expect_bit_identical(real, sim, "wire faults");
  EXPECT_GT(report.wire_retries, 0u)
      << "the schedule injected nothing — rates or seed are off";
}

TEST_P(FaultRecoverySuite, CleanCrashWithReshardMatchesTheSimMirror) {
  Fixture fx;
  const auto opt = small_options(4);
  ClusterSpec spec = faulty_spec(GetParam());
  spec.fault.crash_node = 1;
  spec.fault.crash_epoch = 2;
  spec.fault.crash_fraction = 0.5;
  spec.recovery.policy = RecoveryPolicy::kReshard;
  ParamServerReport real_report;
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn(), &real_report);
  ParamServerReport sim_report;
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, sim_twin(spec), /*use_importance=*/true,
      fx.evaluator.as_fn(), &sim_report);
  expect_bit_identical(real, sim, "crash+reshard");
  EXPECT_EQ(real_report.crash_events, 1u);
  EXPECT_EQ(real_report.rejoin_events, 0u);
  EXPECT_EQ(sim_report.crash_events, 1u);
}

TEST_P(FaultRecoverySuite, CrashThenRejoinMatchesTheSimMirror) {
  Fixture fx;
  const auto opt = small_options(5);
  ClusterSpec spec = faulty_spec(GetParam());
  spec.fault.crash_node = 1;
  spec.fault.crash_epoch = 2;
  spec.fault.crash_fraction = 0.25;
  spec.fault.rejoin_epoch = 4;
  spec.recovery.policy = RecoveryPolicy::kReshard;
  ParamServerReport real_report;
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn(), &real_report);
  ParamServerReport sim_report;
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, sim_twin(spec), /*use_importance=*/true,
      fx.evaluator.as_fn(), &sim_report);
  expect_bit_identical(real, sim, "crash+rejoin");
  EXPECT_EQ(real_report.crash_events, 1u);
  EXPECT_EQ(real_report.rejoin_events, 1u);
  EXPECT_EQ(sim_report.rejoin_events, 1u);
}

TEST_P(FaultRecoverySuite, PolicyNoneAlsoMatchesItsSimMirror) {
  // Without resharding the dead walk simply stops contributing — a worse
  // model, but still a deterministic one the sim reproduces exactly.
  Fixture fx;
  const auto opt = small_options(4);
  ClusterSpec spec = faulty_spec(GetParam());
  spec.fault.crash_node = 0;
  spec.fault.crash_epoch = 2;
  spec.recovery.policy = RecoveryPolicy::kNone;
  const solvers::Trace real = run_param_server_process(
      fx.data, fx.loss, opt, spec, /*use_importance=*/true,
      fx.evaluator.as_fn());
  const solvers::Trace sim = run_param_server_fenced(
      fx.data, fx.loss, opt, sim_twin(spec), /*use_importance=*/true,
      fx.evaluator.as_fn());
  expect_bit_identical(real, sim, "crash+none");
}

TEST_P(FaultRecoverySuite, CrashedGroupStillReachesClosedFormOptimum) {
  // Identity design: w* = target exactly (see dist_process_test). A group
  // that loses worker 1 halfway through epoch 3 and reshards must still
  // drive every coordinate to the optimum — recovery doing real work.
  const std::size_t d = 8, reps = 4;
  std::vector<double> target(d);
  for (std::size_t c = 0; c < d; ++c) {
    target[c] = 0.5 + 0.25 * static_cast<double>(c);
  }
  sparse::CsrBuilder builder(d);
  for (std::size_t i = 0; i < d * reps; ++i) {
    const sparse::index_t c = static_cast<sparse::index_t>(i % d);
    const sparse::value_t one = 1.0;
    builder.add_row(std::span<const sparse::index_t>(&c, 1),
                    std::span<const sparse::value_t>(&one, 1), target[c]);
  }
  const sparse::CsrMatrix data = builder.build();
  objectives::LeastSquaresLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               1);
  solvers::SolverOptions opt;
  opt.step_size = 0.5;
  opt.epochs = 20;
  opt.seed = 7;
  opt.keep_final_model = true;
  ClusterSpec spec = faulty_spec(GetParam());
  spec.fault.crash_node = 1;
  spec.fault.crash_epoch = 3;
  spec.recovery.policy = RecoveryPolicy::kReshard;
  const solvers::Trace trace = run_param_server_process(
      data, loss, opt, spec, /*use_importance=*/false, evaluator.as_fn());
  ASSERT_EQ(trace.final_model.size(), d);
  for (std::size_t c = 0; c < d; ++c) {
    EXPECT_NEAR(trace.final_model[c], target[c], 1e-2) << "coordinate " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, FaultRecoverySuite,
                         ::testing::Values(std::string("shm"),
                                           std::string("tcp")),
                         [](const auto& info) { return info.param; });

// ---- Event-clock mirror -----------------------------------------------------

TEST(EventClockFaults, CrashAndRejoinAreDeterministicAndReported) {
  Fixture fx;
  const auto opt = small_options(5);
  ClusterSpec spec;
  spec.nodes = 3;
  spec.fault.crash_node = 2;
  spec.fault.crash_epoch = 2;
  spec.fault.rejoin_epoch = 4;
  spec.recovery.policy = RecoveryPolicy::kReshard;
  ParamServerReport report;
  const solvers::Trace a = run_param_server(fx.data, fx.loss, opt, spec,
                                            /*use_importance=*/true,
                                            fx.evaluator.as_fn(), &report);
  EXPECT_EQ(report.crash_events, 1u);
  EXPECT_EQ(report.rejoin_events, 1u);
  ASSERT_GE(a.points.size(), 2u);
  EXPECT_LT(a.points.back().objective, a.points.front().objective);
  const solvers::Trace b = run_param_server(fx.data, fx.loss, opt, spec,
                                            /*use_importance=*/true,
                                            fx.evaluator.as_fn());
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  for (std::size_t j = 0; j < a.final_model.size(); ++j) {
    ASSERT_EQ(a.final_model[j], b.final_model[j]) << "coordinate " << j;
  }
}

TEST(EventClockFaults, NoFaultRunIsUntouchedByTheRefactor) {
  // The crash-aware executor/walk split must be invisible when no scenario
  // is active: crash/rejoin counters zero, objective still training.
  Fixture fx;
  const auto opt = small_options(3);
  ClusterSpec spec;
  spec.nodes = 4;
  ParamServerReport report;
  const solvers::Trace trace = run_param_server(fx.data, fx.loss, opt, spec,
                                                /*use_importance=*/true,
                                                fx.evaluator.as_fn(), &report);
  EXPECT_EQ(report.crash_events, 0u);
  EXPECT_EQ(report.rejoin_events, 0u);
  EXPECT_LT(trace.points.back().objective, trace.points.front().objective);
}

}  // namespace
}  // namespace isasgd::distributed
