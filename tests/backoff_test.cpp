// util::Backoff: the shared retry discipline of the PS wire client and the
// ShardCache prefetch path. Pinning determinism, the jitter bounds, and the
// reset contract (base rewinds, the jitter stream does not) — the wire
// client relies on all three for replayable retry schedules.
#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace isasgd::util {
namespace {

TEST(Backoff, SameSeedSameSchedule) {
  Backoff::Options opt;
  opt.seed = 1234;
  Backoff a(opt);
  Backoff b(opt);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(a.next_ms(), b.next_ms());
}

TEST(Backoff, DifferentSeedsDiverge) {
  Backoff::Options opt;
  opt.seed = 1;
  Backoff a(opt);
  opt.seed = 2;
  Backoff b(opt);
  bool diverged = false;
  for (int i = 0; i < 8 && !diverged; ++i) {
    diverged = a.next_ms() != b.next_ms();
  }
  EXPECT_TRUE(diverged);
}

TEST(Backoff, DelaysStayInsideJitterWindow) {
  // Attempt n draws from (base·(1−jitter), base] with
  // base = min(initial·multiplier^n, max): a hard upper bound (max_ms is
  // never exceeded) and a positive lower bound (never sleeps ~0).
  Backoff::Options opt;
  opt.initial_ms = 10;
  opt.max_ms = 100;
  opt.multiplier = 2;
  opt.jitter = 0.5;
  opt.seed = 7;
  Backoff backoff(opt);
  double base = opt.initial_ms;
  for (int i = 0; i < 40; ++i) {
    const double d = backoff.next_ms();
    EXPECT_GT(d, base * (1.0 - opt.jitter)) << "attempt " << i;
    EXPECT_LE(d, base) << "attempt " << i;
    base = std::min(base * opt.multiplier, opt.max_ms);
  }
}

TEST(Backoff, ZeroJitterIsExactExponential) {
  Backoff::Options opt;
  opt.initial_ms = 1;
  opt.max_ms = 8;
  opt.multiplier = 2;
  opt.jitter = 0;
  Backoff backoff(opt);
  const std::vector<double> want = {1, 2, 4, 8, 8, 8};
  for (const double w : want) EXPECT_DOUBLE_EQ(backoff.next_ms(), w);
}

TEST(Backoff, ResetRewindsBaseButNotTheJitterStream) {
  Backoff::Options opt;
  opt.jitter = 0.5;
  opt.seed = 99;
  Backoff backoff(opt);
  const double first = backoff.next_ms();
  (void)backoff.next_ms();
  backoff.reset();
  // Back to the initial base, but the draw is the stream's *third* sample —
  // almost surely a different jitter than the very first call.
  const double after_reset = backoff.next_ms();
  EXPECT_LE(after_reset, opt.initial_ms);
  EXPECT_GT(after_reset, opt.initial_ms * (1.0 - opt.jitter));
  EXPECT_NE(after_reset, first);
  // The whole schedule is still a pure function of (options, call history):
  // replaying the identical call sequence reproduces it exactly.
  Backoff replay(opt);
  (void)replay.next_ms();
  (void)replay.next_ms();
  replay.reset();
  EXPECT_DOUBLE_EQ(replay.next_ms(), after_reset);
}

TEST(Backoff, AttemptsCountAllCallsAcrossResets) {
  Backoff backoff({});
  EXPECT_EQ(backoff.attempts(), 0u);
  (void)backoff.next_ms();
  (void)backoff.next_ms();
  backoff.reset();
  (void)backoff.next_ms();
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(Backoff, ValidationNamesTheOffendingField) {
  const auto expect_throw = [](Backoff::Options opt, const char* field) {
    try {
      Backoff backoff(opt);
      FAIL() << field << " must be rejected";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  Backoff::Options opt;
  opt.initial_ms = 0;
  expect_throw(opt, "initial_ms");
  opt = {};
  opt.max_ms = opt.initial_ms / 2;
  expect_throw(opt, "max_ms");
  opt = {};
  opt.multiplier = 0.5;
  expect_throw(opt, "multiplier");
  opt = {};
  opt.jitter = 1.0;
  expect_throw(opt, "jitter");
  opt = {};
  opt.jitter = -0.1;
  expect_throw(opt, "jitter");
}

}  // namespace
}  // namespace isasgd::util
