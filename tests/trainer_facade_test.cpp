// The Trainer facade: every registered solver dispatches by name, produces a
// well-formed trace, and respects the Trainer's regularizer override; the
// TrainerBuilder wires the same Trainer fluently; the removed enum API's
// guarantees (spelling round-trips, IS-ASGD diagnostics) survive through
// the registry + observer path.
#include <gtest/gtest.h>

#include <any>
#include <cmath>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/is_asgd.hpp"

namespace isasgd::core {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 400;
          spec.dim = 120;
          spec.mean_row_nnz = 8;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()) {}
};

constexpr const char* kAll[] = {
    "SGD",      "IS-SGD",    "ASGD", "IS-ASGD", "SVRG-SGD",
    "SVRG-ASGD", "SAGA",     "SVRG-LAZY", "SAG",
};

TEST(TrainerFacade, EverySolverDispatchesByNameAndConverges) {
  Fixture f;
  // L2 (not L1): SVRG-LAZY rejects L1 by contract.
  Trainer trainer(f.data, f.loss, objectives::Regularization::l2(1e-5), 2);
  for (const char* solver : kAll) {
    solvers::SolverOptions opt;
    opt.epochs = 4;
    opt.threads = 2;
    opt.step_size = 0.2;
    opt.seed = 3;
    const solvers::Trace t = trainer.train(solver, opt);
    ASSERT_EQ(t.points.size(), 5u) << solver;
    EXPECT_EQ(t.algorithm, solver);
    EXPECT_LT(t.points.back().rmse, t.points.front().rmse) << solver;
    for (const auto& p : t.points) {
      EXPECT_TRUE(std::isfinite(p.rmse)) << solver;
    }
  }
}

TEST(TrainerFacade, NameLookupIsSpellingInsensitive) {
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::none(), 2);
  solvers::SolverOptions opt;
  opt.epochs = 1;
  opt.step_size = 0.2;
  for (const char* spelling : {"is_asgd", "IS-ASGD", "Is-Asgd", "IS_ASGD"}) {
    const solvers::Trace t = trainer.train(spelling, opt);
    EXPECT_EQ(t.algorithm, "IS-ASGD") << spelling;
  }
}

TEST(TrainerFacade, UnknownSolverThrowsListingRegisteredNames) {
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::none(), 2);
  solvers::SolverOptions opt;
  try {
    (void)trainer.train("adam", opt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("adam"), std::string::npos);
    // The error must enumerate the menu, not just reject.
    EXPECT_NE(message.find("IS-ASGD"), std::string::npos);
    EXPECT_NE(message.find("SGD"), std::string::npos);
  }
}

TEST(TrainerFacade, RegularizerOverridesOptions) {
  // The Trainer scores every run against its own regularizer; an options
  // regularizer must not leak into evaluation.
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::none(), 2);
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.step_size = 0.2;
  opt.reg = objectives::Regularization::l2(100.0);  // absurd; must be ignored
  const solvers::Trace t = trainer.train("SGD", opt);
  // With the huge L2 actually applied, the objective would dwarf log(2).
  EXPECT_LT(t.points.back().objective, 1.0);
}

TEST(TrainerFacade, BuilderProducesEquivalentTrainer) {
  Fixture f;
  const auto reg = objectives::Regularization::l2(1e-4);
  const Trainer direct(f.data, f.loss, reg, 2);
  const Trainer built = TrainerBuilder()
                            .data(f.data)
                            .objective(f.loss)
                            .regularization(reg)
                            .eval_threads(2)
                            .build();
  solvers::SolverOptions opt;
  opt.epochs = 3;
  opt.step_size = 0.2;
  opt.seed = 11;
  const auto a = direct.train("SGD", opt);
  const auto b = built.train("SGD", opt);
  ASSERT_EQ(a.points.size(), b.points.size());
  // Serial solver + same seed ⇒ bit-identical objective path.
  EXPECT_EQ(a.points.back().objective, b.points.back().objective);
}

TEST(TrainerFacade, BuilderShorthandsAndValidation) {
  Fixture f;
  const Trainer l1 = TrainerBuilder().data(f.data).objective(f.loss).l1(0.5).build();
  EXPECT_EQ(l1.regularization().kind, objectives::Regularization::Kind::kL1);
  const Trainer l2 = TrainerBuilder().data(f.data).objective(f.loss).l2(0.5).build();
  EXPECT_EQ(l2.regularization().kind, objectives::Regularization::Kind::kL2);
  EXPECT_THROW((void)TrainerBuilder().objective(f.loss).build(),
               std::logic_error);
  EXPECT_THROW((void)TrainerBuilder().data(f.data).build(), std::logic_error);
}

TEST(TrainerFacade, AccessorsExposeWiring) {
  Fixture f;
  const auto reg = objectives::Regularization::l1(1e-6);
  Trainer trainer(f.data, f.loss, reg, 2);
  EXPECT_EQ(&trainer.data(), &f.data);
  EXPECT_EQ(&trainer.objective(), &f.loss);
  EXPECT_EQ(trainer.regularization().kind, reg.kind);
  const auto eval = trainer.evaluate(std::vector<double>(f.data.dim(), 0.0));
  EXPECT_NEAR(eval.objective, std::log(2.0), 1e-9);
}

// ---- Post-shim-removal guarantees: the registry path carries everything
// the deprecated enum/report entry points used to provide. ----

TEST(TrainerFacade, EnumShimIsGone) {
  // The Algorithm enum's spellings keep working — as registry names.
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::l2(1e-5), 2);
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.threads = 1;  // single worker ⇒ deterministic for a fixed seed
  opt.step_size = 0.2;
  opt.seed = 5;
  for (const char* solver : kAll) {
    const auto by_canonical = trainer.train(solver, opt);
    const auto by_normalized =
        trainer.train(solvers::SolverRegistry::normalize(solver), opt);
    ASSERT_EQ(by_canonical.points.size(), by_normalized.points.size());
    EXPECT_EQ(by_canonical.algorithm, by_normalized.algorithm);
  }
}

TEST(TrainerFacade, IsAsgdReportArrivesViaObserver) {
  // The replacement for the removed train_is_asgd(..., IsAsgdReport*) shim.
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::none(), 2);
  solvers::SolverOptions opt;
  opt.epochs = 1;
  opt.threads = 2;
  solvers::DiagnosticsCapture<solvers::IsAsgdReport> capture;
  (void)trainer.train("IS-ASGD", opt, &capture);
  ASSERT_TRUE(capture.has_value());
  EXPECT_GT(capture.value().rho, 0.0);
}

}  // namespace
}  // namespace isasgd::core
