// The Trainer facade: every Algorithm enum value dispatches, produces a
// well-formed trace, and respects the Trainer's regularizer override.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"

namespace isasgd::core {
namespace {

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;

  Fixture()
      : data([] {
          data::SyntheticSpec spec;
          spec.rows = 400;
          spec.dim = 120;
          spec.mean_row_nnz = 8;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()) {}
};

constexpr solvers::Algorithm kAll[] = {
    solvers::Algorithm::kSgd,      solvers::Algorithm::kIsSgd,
    solvers::Algorithm::kAsgd,     solvers::Algorithm::kIsAsgd,
    solvers::Algorithm::kSvrgSgd,  solvers::Algorithm::kSvrgAsgd,
    solvers::Algorithm::kSaga,     solvers::Algorithm::kSvrgLazy,
    solvers::Algorithm::kSag,
};

TEST(TrainerFacade, EveryAlgorithmDispatchesAndConverges) {
  Fixture f;
  // L2 (not L1): kSvrgLazy rejects L1 by contract.
  Trainer trainer(f.data, f.loss, objectives::Regularization::l2(1e-5), 2);
  for (const auto algorithm : kAll) {
    solvers::SolverOptions opt;
    opt.epochs = 4;
    opt.threads = 2;
    opt.step_size = 0.2;
    opt.seed = 3;
    const solvers::Trace t = trainer.train(algorithm, opt);
    ASSERT_EQ(t.points.size(), 5u) << solvers::algorithm_name(algorithm);
    EXPECT_EQ(t.algorithm, solvers::algorithm_name(algorithm));
    EXPECT_LT(t.points.back().rmse, t.points.front().rmse)
        << solvers::algorithm_name(algorithm);
    for (const auto& p : t.points) {
      EXPECT_TRUE(std::isfinite(p.rmse)) << solvers::algorithm_name(algorithm);
    }
  }
}

TEST(TrainerFacade, RegularizerOverridesOptions) {
  // The Trainer scores every run against its own regularizer; an options
  // regularizer must not leak into evaluation.
  Fixture f;
  Trainer trainer(f.data, f.loss, objectives::Regularization::none(), 2);
  solvers::SolverOptions opt;
  opt.epochs = 2;
  opt.step_size = 0.2;
  opt.reg = objectives::Regularization::l2(100.0);  // absurd; must be ignored
  const solvers::Trace t = trainer.train(solvers::Algorithm::kSgd, opt);
  // With the huge L2 actually applied, the objective would dwarf log(2).
  EXPECT_LT(t.points.back().objective, 1.0);
}

TEST(TrainerFacade, NamesRoundTripForAllAlgorithms) {
  for (const auto algorithm : kAll) {
    EXPECT_EQ(solvers::algorithm_from_name(solvers::algorithm_name(algorithm)),
              algorithm);
  }
}

TEST(TrainerFacade, AccessorsExposeWiring) {
  Fixture f;
  const auto reg = objectives::Regularization::l1(1e-6);
  Trainer trainer(f.data, f.loss, reg, 2);
  EXPECT_EQ(&trainer.data(), &f.data);
  EXPECT_EQ(&trainer.objective(), &f.loss);
  EXPECT_EQ(trainer.regularization().kind, reg.kind);
  const auto eval = trainer.evaluate(std::vector<double>(f.data.dim(), 0.0));
  EXPECT_NEAR(eval.objective, std::log(2.0), 1e-9);
}

}  // namespace
}  // namespace isasgd::core
