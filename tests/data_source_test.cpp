// data::DataSource backends: in-memory geometry, streaming index/cache
// behaviour (LRU budget, prefetch, label normalisation), and the
// shard-content equivalence between every backend and the full matrix.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/execution.hpp"
#include "data/data_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "io/binary.hpp"
#include "io/libsvm.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::data {
namespace {

sparse::CsrMatrix small_dataset(std::size_t rows = 257) {
  SyntheticSpec spec;
  spec.rows = rows;
  spec.dim = 64;
  spec.mean_row_nnz = 6;
  spec.seed = 99;
  return generate(spec);
}

/// Unique temp path per test (no collisions under ctest -j).
std::string temp_path(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path();
  return (dir / ("isasgd_dstest_" + tag + "_" +
                 std::to_string(::getpid()) + ".dat"))
      .string();
}

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

void expect_rows_equal(const sparse::CsrMatrix& a, std::size_t ai,
                       const sparse::CsrMatrix& b, std::size_t bi) {
  ASSERT_EQ(a.row(ai).nnz(), b.row(bi).nnz());
  EXPECT_EQ(a.label(ai), b.label(bi));
  for (std::size_t k = 0; k < a.row(ai).nnz(); ++k) {
    EXPECT_EQ(a.row(ai).index(k), b.row(bi).index(k));
    EXPECT_EQ(a.row(ai).value(k), b.row(bi).value(k));
  }
}

/// Every backend must present identical rows at identical global ids.
void expect_source_matches_matrix(const DataSource& source,
                                  const sparse::CsrMatrix& full) {
  ASSERT_EQ(source.rows(), full.rows());
  ASSERT_EQ(source.dim(), full.dim());
  ASSERT_EQ(source.nnz(), full.nnz());
  std::size_t covered = 0;
  for (std::size_t s = 0; s < source.shard_count(); ++s) {
    const ShardPtr shard = source.shard(s);
    ASSERT_EQ(shard->index, s);
    ASSERT_EQ(shard->row_begin, source.shard_begin(s));
    ASSERT_EQ(shard->matrix->rows(), source.shard_rows(s));
    ASSERT_EQ(shard->matrix->dim(), full.dim());
    for (std::size_t r = 0; r < shard->matrix->rows(); ++r) {
      expect_rows_equal(*shard->matrix, r, full, shard->row_begin + r);
    }
    covered += shard->matrix->rows();
  }
  EXPECT_EQ(covered, full.rows());
}

TEST(InMemorySource, SingleShardAliasesTheMatrix) {
  const auto full = small_dataset();
  const InMemorySource source(full);
  EXPECT_TRUE(source.resident());
  EXPECT_EQ(source.shard_count(), 1u);
  // Zero-copy: the shard and materialize() both point at the original.
  EXPECT_EQ(source.shard(0)->matrix.get(), &full);
  EXPECT_EQ(&source.materialize(), &full);
  expect_source_matches_matrix(source, full);
}

TEST(InMemorySource, ChunkedGeometryCoversEveryRowOnce) {
  const auto full = small_dataset(257);
  const InMemorySource source(full, /*shard_rows=*/64);
  EXPECT_EQ(source.shard_count(), 5u);  // 64*4 + 1
  EXPECT_EQ(source.shard_rows(4), 1u);
  EXPECT_EQ(source.shard_begin(4), 256u);
  expect_source_matches_matrix(source, full);
  EXPECT_THROW((void)source.shard(5), std::out_of_range);
}

TEST(SliceRows, MatchesSelectRows) {
  const auto full = small_dataset(50);
  const auto slice = slice_rows(full, 10, 7);
  ASSERT_EQ(slice.rows(), 7u);
  EXPECT_EQ(slice.dim(), full.dim());
  for (std::size_t r = 0; r < 7; ++r) expect_rows_equal(slice, r, full, 10 + r);
  EXPECT_THROW((void)slice_rows(full, 48, 7), std::out_of_range);
}

class StreamingSourceTest : public ::testing::TestWithParam<bool> {};

TEST_P(StreamingSourceTest, MatchesFullMatrixAndMaterialize) {
  const bool binary = GetParam();
  const auto full = small_dataset(300);
  TempFile file(temp_path(binary ? "bin_match" : "svm_match"));
  if (binary) {
    io::write_dataset_binary_file(file.path, full);
  } else {
    io::write_libsvm_file(file.path, full);
  }
  StreamingOptions opt;
  opt.shard_rows = 77;
  const StreamingSource source(file.path, opt);
  EXPECT_FALSE(source.resident());
  EXPECT_EQ(source.shard_count(), 4u);  // 77*3 + 69
  expect_source_matches_matrix(source, full);

  const sparse::CsrMatrix& materialized = source.materialize();
  ASSERT_EQ(materialized.rows(), full.rows());
  for (std::size_t i = 0; i < full.rows(); ++i) {
    expect_rows_equal(materialized, i, full, i);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, StreamingSourceTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "binary" : "libsvm";
                         });

TEST(StreamingSource, LruCacheHonoursBudgetAndCountsEvictions) {
  const auto full = small_dataset(400);
  TempFile file(temp_path("budget"));
  io::write_dataset_binary_file(file.path, full);

  StreamingOptions opt;
  opt.shard_rows = 50;  // 8 shards
  opt.memory_budget_bytes = 1;  // degenerate: at most one resident shard
  const StreamingSource source(file.path, opt);
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t s = 0; s < source.shard_count(); ++s) {
      (void)source.shard(s);
    }
  }
  const auto stats = *source.cache_stats();
  EXPECT_EQ(stats.misses, 16u);  // no reuse possible under a 1-byte budget
  EXPECT_EQ(stats.loads, 16u);
  EXPECT_GE(stats.evictions, 15u);
  EXPECT_LE(stats.resident_shards, 1u);

  // A budget that fits everything: second pass is all hits.
  StreamingOptions big = opt;
  big.memory_budget_bytes = std::size_t{1} << 30;
  const StreamingSource cached(file.path, big);
  for (std::size_t pass = 0; pass < 2; ++pass) {
    for (std::size_t s = 0; s < cached.shard_count(); ++s) {
      (void)cached.shard(s);
    }
  }
  const auto cached_stats = *cached.cache_stats();
  EXPECT_EQ(cached_stats.misses, 8u);
  EXPECT_EQ(cached_stats.hits, 8u);
  EXPECT_EQ(cached_stats.evictions, 0u);
  EXPECT_EQ(cached_stats.resident_shards, 8u);
}

TEST(StreamingSource, PrefetchLoadsInBackgroundAndIsCounted) {
  const auto full = small_dataset(300);
  TempFile file(temp_path("prefetch"));
  io::write_libsvm_file(file.path, full);

  util::ThreadPool pool;
  StreamingOptions opt;
  opt.shard_rows = 60;
  const StreamingSource source(file.path, opt, &pool);
  source.prefetch(2);
  pool.drain_background();
  ASSERT_EQ(source.cache_stats()->prefetch_issued, 1u);
  ASSERT_EQ(source.cache_stats()->resident_shards, 1u);
  (void)source.shard(2);
  const auto stats = *source.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.prefetch_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  // Prefetching a resident or out-of-range shard is a silent no-op.
  source.prefetch(2);
  source.prefetch(999);
  EXPECT_EQ(source.cache_stats()->prefetch_issued, 1u);
}

TEST(StreamingSource, NormalisesBinaryLabelsFromTheWholeFile) {
  // Labels {0,1} arranged so the first shard is all-0 and the second all-1:
  // per-shard normalisation would map both classes onto the same value; the
  // global index must map 0→-1, 1→+1.
  TempFile file(temp_path("labels"));
  {
    std::ofstream out(file.path);
    for (int i = 0; i < 4; ++i) out << "0 1:1 2:" << i << "\n";
    for (int i = 0; i < 4; ++i) out << "1 1:2 2:" << i << "\n";
  }
  StreamingOptions opt;
  opt.shard_rows = 4;
  const StreamingSource source(file.path, opt);
  ASSERT_EQ(source.shard_count(), 2u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(source.shard(0)->matrix->label(r), -1.0);
    EXPECT_EQ(source.shard(1)->matrix->label(r), 1.0);
  }
  // materialize() agrees with the shard view.
  EXPECT_EQ(source.materialize().label(0), -1.0);
  EXPECT_EQ(source.materialize().label(7), 1.0);
}

TEST(StreamingSource, RejectsBadInputs) {
  EXPECT_THROW(StreamingSource("/nonexistent/path.libsvm", {}),
               std::runtime_error);
  const auto full = small_dataset(10);
  TempFile file(temp_path("badopt"));
  io::write_libsvm_file(file.path, full);
  StreamingOptions opt;
  opt.shard_rows = 0;
  EXPECT_THROW(StreamingSource(file.path, opt), std::invalid_argument);
}

TEST(ExecutionContext, OpenStreamingBindsThePool) {
  const auto full = small_dataset(120);
  TempFile file(temp_path("ctx"));
  io::write_dataset_binary_file(file.path, full);
  auto ctx = std::make_shared<core::ExecutionContext>(1);
  StreamingOptions opt;
  opt.shard_rows = 40;
  const auto source = ctx->open_streaming(file.path, opt);
  source->prefetch(1);
  ctx->pool().drain_background();
  EXPECT_EQ(source->cache_stats()->prefetch_issued, 1u);
  EXPECT_EQ(source->cache_stats()->resident_shards, 1u);
  expect_source_matches_matrix(*source, full);
}

}  // namespace
}  // namespace isasgd::data
