#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "sampling/alias_table.hpp"
#include "sampling/cdf_sampler.hpp"
#include "sampling/sequence.hpp"
#include "util/rng.hpp"

namespace isasgd::sampling {
namespace {

// ---------- AliasTable ----------

TEST(AliasTable, NormalizesProbabilities) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_NEAR(table.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(table.probability(3), 0.4, 1e-12);
  double sum = 0;
  for (double p : table.probabilities()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(
      AliasTable(std::vector<double>{std::numeric_limits<double>::infinity()}),
      std::invalid_argument);
  EXPECT_THROW(
      AliasTable(std::vector<double>{std::nan("")}),
      std::invalid_argument);
}

TEST(AliasTable, SingleOutcomeAlwaysSampled) {
  AliasTable table(std::vector<double>{3.0});
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightOutcomeNeverSampled) {
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0});
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  util::Rng rng(3);
  constexpr int kSamples = 400000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(rng)];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double expected = weights[k] / 10.0;
    const double got = counts[k] / double(kSamples);
    EXPECT_NEAR(got, expected, 4 * std::sqrt(expected / kSamples))
        << "outcome " << k;
  }
}

TEST(AliasTable, HandlesExtremeSkew) {
  std::vector<double> weights(100, 1e-9);
  weights[42] = 1.0;
  AliasTable table(weights);
  util::Rng rng(4);
  int hits = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (table.sample(rng) == 42u) ++hits;
  }
  EXPECT_GT(hits, kSamples * 99 / 100);
}

TEST(AliasTable, UniformWeightsSampleUniformly) {
  std::vector<double> weights(8, 5.0);
  AliasTable table(weights);
  util::Rng rng(5);
  std::vector<int> counts(8, 0);
  constexpr int kSamples = 160000;
  for (int i = 0; i < kSamples; ++i) ++counts[table.sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / 8.0, 5 * std::sqrt(kSamples / 8.0));
  }
}

// ---------- CdfSampler ----------

TEST(CdfSampler, IndexOfMapsQuantilesCorrectly) {
  CdfSampler sampler(std::vector<double>{1.0, 2.0, 1.0});  // cdf: .25 .75 1
  EXPECT_EQ(sampler.index_of(0.0), 0u);
  EXPECT_EQ(sampler.index_of(0.2), 0u);
  EXPECT_EQ(sampler.index_of(0.25), 1u);
  EXPECT_EQ(sampler.index_of(0.6), 1u);
  EXPECT_EQ(sampler.index_of(0.8), 2u);
  EXPECT_EQ(sampler.index_of(0.999999), 2u);
}

TEST(CdfSampler, ProbabilityRecoversWeights) {
  CdfSampler sampler(std::vector<double>{2.0, 6.0});
  EXPECT_NEAR(sampler.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.75, 1e-12);
}

TEST(CdfSampler, RejectsInvalidWeights) {
  EXPECT_THROW(CdfSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(CdfSampler(std::vector<double>{-1.0}), std::invalid_argument);
  EXPECT_THROW(CdfSampler(std::vector<double>{0.0}), std::invalid_argument);
}

TEST(CdfSampler, AgreesWithAliasTableStatistically) {
  const std::vector<double> weights = {0.5, 1.5, 3.0, 0.1, 2.9};
  AliasTable alias(weights);
  CdfSampler cdf(weights);
  util::Rng ra(6), rc(6);
  constexpr int kSamples = 200000;
  std::vector<double> fa(weights.size(), 0), fc(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) {
    fa[alias.sample(ra)] += 1.0 / kSamples;
    fc[cdf.sample(rc)] += 1.0 / kSamples;
  }
  for (std::size_t k = 0; k < weights.size(); ++k) {
    EXPECT_NEAR(fa[k], fc[k], 0.01) << "outcome " << k;
  }
}

// ---------- SampleSequence ----------

TEST(SampleSequence, WeightedSequenceMatchesDistribution) {
  const std::vector<double> weights = {1.0, 3.0};
  const auto seq = SampleSequence::weighted(weights, 100000, 7);
  EXPECT_EQ(seq.size(), 100000u);
  EXPECT_NEAR(seq.empirical_frequency(0), 0.25, 0.01);
  EXPECT_NEAR(seq.empirical_frequency(1), 0.75, 0.01);
}

TEST(SampleSequence, UniformSequenceCoversRange) {
  const auto seq = SampleSequence::uniform(10, 50000, 8);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(seq.empirical_frequency(i), 0.1, 0.02);
  }
  for (std::size_t t = 0; t < seq.size(); ++t) EXPECT_LT(seq[t], 10u);
}

TEST(SampleSequence, IsDeterministicPerSeed) {
  const std::vector<double> weights = {1.0, 2.0, 3.0};
  const auto a = SampleSequence::weighted(weights, 1000, 9);
  const auto b = SampleSequence::weighted(weights, 1000, 9);
  for (std::size_t t = 0; t < a.size(); ++t) EXPECT_EQ(a[t], b[t]);
  const auto c = SampleSequence::weighted(weights, 1000, 10);
  bool all_equal = true;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t] != c[t]) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(SampleSequence, PermutationContainsEachIndexOnce) {
  const auto seq = SampleSequence::permutation(100, 11);
  std::vector<bool> seen(100, false);
  for (std::size_t t = 0; t < seq.size(); ++t) {
    EXPECT_FALSE(seen[seq[t]]);
    seen[seq[t]] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(SampleSequence, PermutationIsShuffled) {
  const auto seq = SampleSequence::permutation(1000, 12);
  std::size_t fixed_points = 0;
  for (std::uint32_t t = 0; t < 1000; ++t) {
    if (seq[t] == t) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 20u);  // E[fixed points] = 1
}

// ---------- ReshuffledSequence ----------

TEST(ReshuffledSequence, ReshufflePreservesMultiset) {
  const std::vector<double> weights = {1.0, 5.0, 2.0};
  ReshuffledSequence seq(weights, 5000, 13);
  std::map<std::uint32_t, int> before;
  for (std::size_t t = 0; t < seq.size(); ++t) ++before[seq[t]];
  seq.reshuffle();
  std::map<std::uint32_t, int> after;
  for (std::size_t t = 0; t < seq.size(); ++t) ++after[seq[t]];
  EXPECT_EQ(before, after);
}

TEST(ReshuffledSequence, ReshuffleChangesOrder) {
  ReshuffledSequence seq(std::size_t{100}, std::size_t{5000}, 14);
  std::vector<std::uint32_t> before(seq.view().begin(), seq.view().end());
  seq.reshuffle();
  std::vector<std::uint32_t> after(seq.view().begin(), seq.view().end());
  EXPECT_NE(before, after);
}

// ---------- StratifiedSequence ----------

TEST(StratifiedSequence, CoversEverySampleEveryEpoch) {
  // The property the §4.2 reshuffle approximation lacks (EXPERIMENTS.md).
  util::Rng wrng(21);
  std::vector<double> weights(500);
  for (auto& w : weights) w = util::uniform_double(wrng) + 1e-3;
  StratifiedSequence seq(weights, weights.size(), 22);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    EXPECT_GE(seq.visit_count(i), 1u) << "sample " << i;
  }
}

TEST(StratifiedSequence, CountsAreBestIntegerApproximation) {
  // Without the floor binding: count_i ∈ {⌊m·p_i⌋, ⌈m·p_i⌉}.
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const std::size_t m = 1000;
  StratifiedSequence seq(weights, m, 23);
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = m * weights[i] / total;
    EXPECT_GE(seq.visit_count(i), static_cast<std::size_t>(expected) - 0);
    EXPECT_LE(seq.visit_count(i), static_cast<std::size_t>(expected) + 1);
  }
}

TEST(StratifiedSequence, LengthMatchesWhenFloorDoesNotBind) {
  const std::vector<double> weights = {1.0, 1.0, 1.0, 1.0};
  StratifiedSequence seq(weights, 400, 24);
  EXPECT_EQ(seq.size(), 400u);
}

TEST(StratifiedSequence, FloorExtendsLengthOnSkewedWeights) {
  // One tiny weight among large ones: it would round to 0 visits; the floor
  // forces 1 and the sequence grows by at most n extra slots.
  std::vector<double> weights(100, 1.0);
  weights[7] = 1e-9;
  StratifiedSequence seq(weights, 100, 25);
  EXPECT_GE(seq.visit_count(7), 1u);
  EXPECT_GE(seq.size(), 100u);
  EXPECT_LE(seq.size(), 201u);
}

TEST(StratifiedSequence, ReshufflePreservesCounts) {
  util::Rng wrng(26);
  std::vector<double> weights(64);
  for (auto& w : weights) w = util::uniform_double(wrng) + 0.01;
  StratifiedSequence seq(weights, 256, 27);
  std::map<std::uint32_t, int> before;
  for (std::size_t t = 0; t < seq.size(); ++t) ++before[seq[t]];
  seq.reshuffle();
  std::map<std::uint32_t, int> after;
  for (std::size_t t = 0; t < seq.size(); ++t) ++after[seq[t]];
  EXPECT_EQ(before, after);
}

TEST(StratifiedSequence, RejectsInvalidInputs) {
  EXPECT_THROW(StratifiedSequence(std::vector<double>{}, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(StratifiedSequence(std::vector<double>{-1.0}, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(StratifiedSequence(std::vector<double>{0.0}, 10, 1),
               std::invalid_argument);
  EXPECT_THROW(StratifiedSequence(std::vector<double>{1.0}, 0, 1),
               std::invalid_argument);
}

TEST(StratifiedSequence, ReshuffledMultisetMissesSamplesButStratifiedDoesNot) {
  // Direct head-to-head of the coverage property on equal weights.
  const std::size_t n = 1000;
  std::vector<double> weights(n, 1.0);
  ReshuffledSequence iid(weights, n, 31);
  StratifiedSequence strat(weights, n, 31);
  std::set<std::uint32_t> iid_seen(iid.view().begin(), iid.view().end());
  std::set<std::uint32_t> strat_seen(strat.view().begin(), strat.view().end());
  EXPECT_LT(iid_seen.size(), n);       // ~63% coverage
  EXPECT_EQ(strat_seen.size(), n);     // full coverage
}

TEST(ReshuffledSequence, WeightedInitialDrawMatchesDistribution) {
  const std::vector<double> weights = {1.0, 1.0, 2.0};
  ReshuffledSequence seq(weights, 100000, 15);
  std::size_t hits = 0;
  for (std::size_t t = 0; t < seq.size(); ++t) {
    if (seq[t] == 2u) ++hits;
  }
  EXPECT_NEAR(hits / double(seq.size()), 0.5, 0.01);
}


TEST(ShardedSequence, EachEpochVisitsEveryShardAndRowExactlyOnce) {
  ShardedSequence seq({5, 3, 7, 1}, 42);
  EXPECT_EQ(seq.shard_count(), 4u);
  EXPECT_EQ(seq.total_rows(), 16u);
  for (std::size_t epoch = 1; epoch <= 3; ++epoch) {
    seq.begin_epoch(epoch);
    const auto order = seq.shard_order();
    std::set<std::uint32_t> shards(order.begin(), order.end());
    EXPECT_EQ(shards.size(), 4u);  // a permutation of the shard ordinals
    const std::size_t expected_rows[] = {5, 3, 7, 1};
    for (std::uint32_t s : order) {
      const auto rows = seq.rows(s);
      std::set<std::uint32_t> seen(rows.begin(), rows.end());
      EXPECT_EQ(seen.size(), rows.size());  // without replacement
      EXPECT_EQ(rows.size(), expected_rows[s]);
    }
  }
}

TEST(ShardedSequence, ScheduleIsAPureFunctionOfSeedEpochShard) {
  ShardedSequence a({64, 64, 64, 17}, 7);
  ShardedSequence b({64, 64, 64, 17}, 7);
  for (std::size_t epoch : {1ul, 2ul, 9ul, 2ul}) {  // incl. out-of-order replay
    a.begin_epoch(epoch);
    b.begin_epoch(epoch);
    ASSERT_TRUE(std::equal(a.shard_order().begin(), a.shard_order().end(),
                           b.shard_order().begin()));
    // Row orders match regardless of the order shards are queried in.
    for (std::size_t s : {3ul, 0ul, 2ul, 1ul}) {
      const std::vector<std::uint32_t> from_a(a.rows(s).begin(),
                                              a.rows(s).end());
      const std::vector<std::uint32_t> from_b(b.rows(s).begin(),
                                              b.rows(s).end());
      ASSERT_EQ(from_a, from_b) << "epoch " << epoch << " shard " << s;
    }
  }
}

TEST(ShardedSequence, EpochsAndShardsDrawDistinctStreams) {
  ShardedSequence seq({50, 50}, 3);
  seq.begin_epoch(1);
  const std::vector<std::uint32_t> e1s0(seq.rows(0).begin(), seq.rows(0).end());
  const std::vector<std::uint32_t> e1s1(seq.rows(1).begin(), seq.rows(1).end());
  seq.begin_epoch(2);
  const std::vector<std::uint32_t> e2s0(seq.rows(0).begin(), seq.rows(0).end());
  EXPECT_NE(e1s0, e1s1);  // same epoch, different shards
  EXPECT_NE(e1s0, e2s0);  // same shard, different epochs
}

}  // namespace
}  // namespace isasgd::sampling
