#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "sampling/alias_table.hpp"
#include "sampling/fenwick_sampler.hpp"
#include "util/rng.hpp"

namespace isasgd::sampling {
namespace {

TEST(FenwickSampler, NormalizesProbabilities) {
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  FenwickSampler s(weights);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_NEAR(s.total(), 10.0, 1e-12);
  EXPECT_NEAR(s.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(s.probability(3), 0.4, 1e-12);
}

TEST(FenwickSampler, RejectsInvalidWeights) {
  EXPECT_THROW(FenwickSampler(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(FenwickSampler(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(FenwickSampler(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(FenwickSampler(std::vector<double>{
                   std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
  EXPECT_THROW(FenwickSampler(std::vector<double>{std::nan("")}),
               std::invalid_argument);
}

TEST(FenwickSampler, PrefixSumsMatchDirectAccumulation) {
  std::vector<double> weights = {0.5, 0.0, 2.5, 1.0, 3.0, 0.0, 1.5};
  FenwickSampler s(weights);
  double acc = 0;
  for (std::size_t i = 0; i <= weights.size(); ++i) {
    EXPECT_NEAR(s.prefix_sum(i), acc, 1e-12) << "prefix " << i;
    if (i < weights.size()) acc += weights[i];
  }
}

TEST(FenwickSampler, LocateFindsTheBracketingOutcome) {
  FenwickSampler s(std::vector<double>{1.0, 0.0, 1.0, 2.0});
  EXPECT_EQ(s.locate(0.0), 0u);
  EXPECT_EQ(s.locate(0.999), 0u);
  EXPECT_EQ(s.locate(1.0), 2u);   // zero-weight outcome 1 is skipped
  EXPECT_EQ(s.locate(1.999), 2u);
  EXPECT_EQ(s.locate(2.0), 3u);
  EXPECT_EQ(s.locate(3.999), 3u);
  // Roundup past the total clamps onto the last positive-weight outcome.
  EXPECT_EQ(s.locate(4.0), 3u);
}

TEST(FenwickSampler, LocateClampSkipsTrailingZeroWeights) {
  FenwickSampler s(std::vector<double>{1.0, 2.0, 0.0, 0.0});
  EXPECT_EQ(s.locate(3.0), 1u);
  EXPECT_EQ(s.locate(5.0), 1u);
}

TEST(FenwickSampler, ZeroWeightOutcomeNeverSampled) {
  FenwickSampler s(std::vector<double>{1.0, 0.0, 1.0});
  util::Rng rng(2);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(s.sample(rng), 1u);
}

TEST(FenwickSampler, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  FenwickSampler s(weights);
  util::Rng rng(3);
  constexpr int kSamples = 400000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) ++counts[s.sample(rng)];
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double expected = weights[k] / 10.0;
    const double got = counts[k] / double(kSamples);
    EXPECT_NEAR(got, expected, 4 * std::sqrt(expected / kSamples))
        << "outcome " << k;
  }
}

TEST(FenwickSampler, SetWeightUpdatesDistribution) {
  FenwickSampler s(std::vector<double>{1.0, 1.0, 1.0, 1.0});
  s.set_weight(2, 5.0);
  EXPECT_NEAR(s.total(), 8.0, 1e-12);
  EXPECT_NEAR(s.probability(2), 5.0 / 8.0, 1e-12);
  EXPECT_NEAR(s.prefix_sum(4), 8.0, 1e-12);
  EXPECT_NEAR(s.prefix_sum(3), 7.0, 1e-12);

  util::Rng rng(4);
  constexpr int kSamples = 200000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (s.sample(rng) == 2u) ++hits;
  }
  const double expected = 5.0 / 8.0;
  EXPECT_NEAR(hits / double(kSamples), expected,
              4 * std::sqrt(expected / kSamples));
}

TEST(FenwickSampler, SetWeightToZeroRemovesOutcome) {
  FenwickSampler s(std::vector<double>{1.0, 1.0, 1.0});
  s.set_weight(1, 0.0);
  util::Rng rng(5);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(s.sample(rng), 1u);
}

TEST(FenwickSampler, SetWeightRejectsInvalid) {
  FenwickSampler s(std::vector<double>{1.0, 1.0});
  EXPECT_THROW(s.set_weight(5, 1.0), std::out_of_range);
  EXPECT_THROW(s.set_weight(0, -1.0), std::invalid_argument);
  EXPECT_THROW(s.set_weight(0, std::nan("")), std::invalid_argument);
  s.set_weight(0, 0.0);
  EXPECT_THROW(s.set_weight(1, 0.0), std::invalid_argument);  // total → 0
}

TEST(FenwickSampler, ManyIncrementalUpdatesStayConsistent) {
  const std::size_t n = 257;  // deliberately not a power of two
  std::vector<double> weights(n, 1.0);
  FenwickSampler s(weights);
  util::Rng rng(6);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t i = util::uniform_index(rng, n);
    const double w = util::uniform_double(rng) * 10.0;
    s.set_weight(i, w);
    weights[i] = w;
  }
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(s.total(), total, 1e-9 * total);
  double acc = 0;
  for (std::size_t i = 0; i < n; i += 17) {
    acc = 0;
    for (std::size_t j = 0; j < i; ++j) acc += weights[j];
    EXPECT_NEAR(s.prefix_sum(i), acc, 1e-9 * (1.0 + acc));
  }
}

TEST(FenwickSampler, MatchesAliasTableDistribution) {
  // Same weights, two samplers: the empirical distributions must agree with
  // each other within Monte-Carlo error.
  std::vector<double> weights(64);
  util::Rng wrng(7);
  for (auto& w : weights) w = std::pow(util::uniform_double(wrng), 3.0);
  weights[10] = 0.0;
  FenwickSampler fen(weights);
  AliasTable alias(weights);
  util::Rng r1(8), r2(8);
  constexpr int kSamples = 300000;
  std::vector<int> c1(weights.size()), c2(weights.size());
  for (int i = 0; i < kSamples; ++i) {
    ++c1[fen.sample(r1)];
    ++c2[alias.sample(r2)];
  }
  for (std::size_t k = 0; k < weights.size(); ++k) {
    const double p = alias.probability(k);
    EXPECT_NEAR(c1[k] / double(kSamples), c2[k] / double(kSamples),
                5 * std::sqrt((p + 1e-6) / kSamples))
        << "outcome " << k;
  }
}

TEST(FenwickSampler, SingleOutcomeAlwaysSampled) {
  FenwickSampler s(std::vector<double>{3.0});
  util::Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

}  // namespace
}  // namespace isasgd::sampling
