#include "data/paper_datasets.hpp"

#include <gtest/gtest.h>

#include "analysis/bounds.hpp"
#include "objectives/logistic.hpp"
#include "partition/importance.hpp"

namespace isasgd::data {
namespace {

TEST(PaperDatasets, AllFourAreConfigured) {
  const auto all = all_paper_datasets();
  ASSERT_EQ(all.size(), 4u);
  for (PaperDataset id : all) {
    const auto cfg = paper_dataset_config(id);
    EXPECT_FALSE(cfg.name.empty());
    EXPECT_FALSE(cfg.paper_name.empty());
    EXPECT_GT(cfg.paper_dimension, 0u);
    EXPECT_GT(cfg.lambda, 0.0);
    EXPECT_GT(cfg.paper_epochs, 0u);
  }
}

TEST(PaperDatasets, CalibrationTargetsMatchTable1) {
  const auto news = paper_dataset_config(PaperDataset::kNews20);
  EXPECT_DOUBLE_EQ(news.spec.target_psi, 0.972);
  EXPECT_NEAR(rho_for(news.spec), 5e-4, 1e-10);
  const auto bridge = paper_dataset_config(PaperDataset::kKddBridge);
  EXPECT_DOUBLE_EQ(bridge.spec.target_psi, 0.877);
  EXPECT_NEAR(rho_for(bridge.spec), 2e-4, 1e-10);
}

TEST(PaperDatasets, SparsityOrderingMatchesTable1) {
  // News20 analog must be the densest; the KDD analogs the sparsest.
  auto density = [](PaperDataset id) {
    const auto spec = paper_dataset_config(id).spec;
    return spec.mean_row_nnz / static_cast<double>(spec.dim);
  };
  EXPECT_GT(density(PaperDataset::kNews20), density(PaperDataset::kUrl));
  EXPECT_GT(density(PaperDataset::kUrl), density(PaperDataset::kKddAlgebra));
  EXPECT_GE(density(PaperDataset::kKddAlgebra),
            density(PaperDataset::kKddBridge));
}

TEST(PaperDatasets, News20AnalogIsDenseRegime) {
  const auto spec = paper_dataset_config(PaperDataset::kNews20).spec;
  EXPECT_NEAR(spec.mean_row_nnz / static_cast<double>(spec.dim), 1e-3, 2e-4);
}

TEST(PaperDatasets, ScaledGenerationMatchesPsiRho) {
  const auto cfg = paper_dataset_config(PaperDataset::kNews20, 0.2);
  const auto m = generate(cfg.spec);
  objectives::LogisticLoss loss;
  const auto lip = objectives::per_sample_lipschitz(
      m, loss, objectives::Regularization::none());
  EXPECT_NEAR(analysis::psi(lip), 0.972, 0.02);
  EXPECT_NEAR(partition::importance_variance(lip), 5e-4, 2.5e-4);
}

TEST(PaperDatasets, ScaleShrinksRowsAndDim) {
  const auto full = paper_dataset_config(PaperDataset::kUrl, 1.0);
  const auto small = paper_dataset_config(PaperDataset::kUrl, 0.01);
  EXPECT_LT(small.spec.rows, full.spec.rows / 50);
  EXPECT_LT(small.spec.dim, full.spec.dim / 50);
}

TEST(PaperDatasets, ScaleFloorsAtMinimumSize) {
  const auto tiny = paper_dataset_config(PaperDataset::kNews20, 1e-9);
  EXPECT_GE(tiny.spec.rows, 64u);
  EXPECT_GE(tiny.spec.dim, 256u);
}

TEST(PaperDatasets, BadScaleThrows) {
  EXPECT_THROW(paper_dataset_config(PaperDataset::kNews20, 0.0),
               std::invalid_argument);
  EXPECT_THROW(paper_dataset_config(PaperDataset::kNews20, -1.0),
               std::invalid_argument);
}

TEST(PaperDatasets, GenerateProducesDataset) {
  const auto m = generate_paper_dataset(PaperDataset::kNews20, 0.05);
  EXPECT_GT(m.rows(), 100u);
  EXPECT_GT(m.nnz(), 1000u);
}

TEST(PaperDatasets, LookupByNames) {
  EXPECT_EQ(paper_dataset_from_name("news20"), PaperDataset::kNews20);
  EXPECT_EQ(paper_dataset_from_name("news20_analog"), PaperDataset::kNews20);
  EXPECT_EQ(paper_dataset_from_name("JMLR_News20"), PaperDataset::kNews20);
  EXPECT_EQ(paper_dataset_from_name("url"), PaperDataset::kUrl);
  EXPECT_EQ(paper_dataset_from_name("algebra"), PaperDataset::kKddAlgebra);
  EXPECT_EQ(paper_dataset_from_name("bridge"), PaperDataset::kKddBridge);
  EXPECT_EQ(paper_dataset_from_name("kdda"), PaperDataset::kKddAlgebra);
  EXPECT_EQ(paper_dataset_from_name("kddb"), PaperDataset::kKddBridge);
  EXPECT_THROW(paper_dataset_from_name("mnist"), std::invalid_argument);
}

TEST(PaperDatasets, LambdaMatchesPaperFigures) {
  EXPECT_DOUBLE_EQ(paper_dataset_config(PaperDataset::kNews20).lambda, 0.5);
  EXPECT_DOUBLE_EQ(paper_dataset_config(PaperDataset::kUrl).lambda, 0.05);
  EXPECT_DOUBLE_EQ(paper_dataset_config(PaperDataset::kKddAlgebra).lambda, 0.5);
  EXPECT_DOUBLE_EQ(paper_dataset_config(PaperDataset::kKddBridge).lambda, 0.5);
}

}  // namespace
}  // namespace isasgd::data
