// TrainingService: multi-tenant scheduling, admission control, lifecycle
// verbs, and the line protocol.
//
// The acceptance bar (ISSUE 6): several concurrent jobs sharing one
// 2-worker pool all reach the conformance closed-form optimum; an
// over-budget job is refused with a *typed* AdmissionError; cancel leaves
// the pool reusable for the next job.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/trainer.hpp"
#include "io/libsvm.hpp"
#include "objectives/least_squares.hpp"
#include "service/protocol.hpp"
#include "service/training_service.hpp"
#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

constexpr std::size_t kRows = 96;
constexpr std::size_t kDim = 8;
constexpr double kEta = 0.1;

/// The conformance problem (tests/conformance_test.cpp): dense rows with
/// ‖x‖² ≈ 1 and a strongly convex least-squares objective, so F has the
/// unique closed-form optimum w* = (XᵀX/n + ηI)⁻¹ Xᵀy/n.
sparse::CsrMatrix make_problem() {
  util::Rng rng(20260807);
  sparse::CsrBuilder builder(kDim);
  std::vector<double> teacher(kDim);
  for (auto& t : teacher) t = 2.0 * util::uniform_double(rng) - 1.0;
  std::vector<sparse::index_t> idx(kDim);
  std::vector<sparse::value_t> val(kDim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(kDim));
  for (std::size_t i = 0; i < kRows; ++i) {
    double margin = 0;
    for (std::size_t j = 0; j < kDim; ++j) {
      idx[j] = static_cast<sparse::index_t>(j);
      val[j] = scale * (2.0 * util::uniform_double(rng) - 1.0) * 1.7;
      margin += val[j] * teacher[j];
    }
    const double y = margin + 0.01 * (2.0 * util::uniform_double(rng) - 1.0);
    builder.add_row({idx.data(), idx.size()}, {val.data(), val.size()}, y);
  }
  return builder.build();
}

std::vector<double> closed_form_optimum(const sparse::CsrMatrix& data) {
  const std::size_t d = data.dim();
  const double n = static_cast<double>(data.rows());
  std::vector<std::vector<double>> a(d, std::vector<double>(d + 1, 0.0));
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto x = data.row(i);
    for (std::size_t p = 0; p < x.nnz(); ++p) {
      for (std::size_t q = 0; q < x.nnz(); ++q) {
        a[x.index(p)][x.index(q)] += x.value(p) * x.value(q) / n;
      }
      a[x.index(p)][d] += x.value(p) * data.label(i) / n;
    }
  }
  for (std::size_t j = 0; j < d; ++j) a[j][j] += kEta;
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col || a[r][col] == 0.0) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= d; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::vector<double> w(d);
  for (std::size_t j = 0; j < d; ++j) w[j] = a[j][d] / a[j][j];
  return w;
}

struct Fixture {
  std::shared_ptr<const sparse::CsrMatrix> matrix =
      std::make_shared<const sparse::CsrMatrix>(make_problem());
  std::vector<double> w_star = closed_form_optimum(*matrix);

  service::TrainingService::Options service_options() const {
    service::TrainingService::Options options;
    options.max_concurrent = 2;
    // A 2-worker shared pool: the jobs' epochs time-slice it.
    options.execution = std::make_shared<core::ExecutionContext>(
        /*eval_threads=*/1, util::ThreadPool::Options{.max_workers = 2});
    options.memory_budget_bytes = std::size_t{8} << 20;
    return options;
  }

  service::JobSpec job(const std::string& solver) const {
    service::JobSpec spec;
    spec.solver = solver;
    spec.matrix = matrix;
    spec.objective = "least_squares";
    spec.options.epochs = 120;
    spec.options.step_size = 0.5;
    spec.options.step_decay = 0.93;
    spec.options.threads = 2;
    spec.options.update_policy = solvers::UpdatePolicy::kAtomic;
    spec.options.reg = objectives::Regularization::l2(kEta);
    spec.options.seed = 4242;
    return spec;
  }

  /// F-gap of the service job's final objective vs the closed form.
  double gap(const service::JobStatus& status) const {
    objectives::LeastSquaresLoss loss;
    const core::Trainer trainer =
        core::TrainerBuilder().data(*matrix).objective(loss).l2(kEta).build();
    return status.objective_value -
           trainer.evaluate(w_star).objective;
  }
};

TEST(TrainingService, ConcurrentJobsAllReachTheClosedFormOptimum) {
  Fixture f;
  service::TrainingService svc(f.service_options());

  // Three jobs on two slice slots: at least one is always waiting its turn,
  // so completion proves the fence-level round-robin makes progress.
  const std::uint64_t a = svc.submit(f.job("sgd"));
  const std::uint64_t b = svc.submit(f.job("is_sgd"));
  const std::uint64_t c = svc.submit(f.job("saga"));
  svc.wait_all();

  for (const std::uint64_t id : {a, b, c}) {
    const service::JobStatus s = svc.status(id);
    EXPECT_EQ(s.state, service::JobState::kCompleted) << s.message;
    EXPECT_EQ(s.epoch, 120u);
    EXPECT_NE(s.model_hash, 0u);
    EXPECT_LT(f.gap(s), 2e-3) << "job " << id << " (" << s.solver << ")";
    EXPECT_GT(f.gap(s), -1e-10);
  }
  EXPECT_EQ(svc.execution().total_jobs(), 3u);
  EXPECT_EQ(svc.execution().active_jobs(), 0u);
  EXPECT_EQ(svc.governor().used(), 0u);
}

TEST(TrainingService, OverBudgetJobIsRefusedWithTypedError) {
  Fixture f;
  auto options = f.service_options();
  options.memory_budget_bytes = 1024;  // nothing real fits
  service::TrainingService svc(options);
  try {
    (void)svc.submit(f.job("sgd"));
    FAIL() << "expected AdmissionError";
  } catch (const service::AdmissionError& e) {
    EXPECT_GT(e.requested_bytes(), e.budget_bytes());
    EXPECT_EQ(e.budget_bytes(), 1024u);
    EXPECT_NE(std::string(e.what()).find("memory budget"), std::string::npos);
  }
  EXPECT_EQ(svc.governor().used(), 0u);
}

TEST(TrainingService, JobsThatFitTheBudgetButNotNowAreQueuedFifo) {
  Fixture f;
  // Probe what one conformance job actually reserves, then size the budget
  // to fit one job but not two — robust to estimator changes.
  std::size_t reserved = 0;
  {
    service::TrainingService probe(f.service_options());
    reserved = probe.status(probe.submit(f.job("sgd"))).reserved_bytes;
    probe.wait_all();
  }
  auto options = f.service_options();
  options.memory_budget_bytes = reserved + reserved / 2;
  service::TrainingService svc(options);

  service::JobSpec hog = f.job("sgd");
  hog.options.epochs = 200000;  // keeps its reservation held until cancel
  const std::uint64_t first = svc.submit(hog);
  const std::uint64_t second = svc.submit(f.job("is_sgd"));
  // The second job must be parked, not rejected and not running.
  EXPECT_EQ(svc.status(second).state, service::JobState::kQueued);

  // Freeing the first reservation must pump the queue.
  ASSERT_TRUE(svc.cancel(first));
  svc.wait_all();
  EXPECT_EQ(svc.status(first).state, service::JobState::kCancelled);
  EXPECT_EQ(svc.status(second).state, service::JobState::kCompleted)
      << svc.status(second).message;
  EXPECT_LT(f.gap(svc.status(second)), 2e-3);
}

TEST(TrainingService, CancelLeavesThePoolReusable) {
  Fixture f;
  service::TrainingService svc(f.service_options());

  service::JobSpec longer = f.job("sgd");
  longer.options.epochs = 100000;  // would run ~forever without the cancel
  const std::uint64_t doomed = svc.submit(longer);
  while (svc.status(doomed).epoch < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(svc.cancel(doomed));
  svc.wait(doomed);
  EXPECT_EQ(svc.status(doomed).state, service::JobState::kCancelled);
  EXPECT_FALSE(svc.cancel(doomed));  // already terminal

  // The shared pool and the freed budget must serve the next job normally.
  const std::uint64_t next = svc.submit(f.job("is_sgd"));
  svc.wait(next);
  EXPECT_EQ(svc.status(next).state, service::JobState::kCompleted);
  EXPECT_LT(f.gap(svc.status(next)), 2e-3);
}

TEST(TrainingService, PauseParksAtAFenceAndResumeContinues) {
  Fixture f;
  service::TrainingService svc(f.service_options());
  service::JobSpec spec = f.job("sgd");
  spec.options.epochs = 200000;  // long enough that the pause always lands
  const std::uint64_t id = svc.submit(spec);
  ASSERT_TRUE(svc.pause(id));
  // The job must reach kPaused (at its next fence) and then hold its epoch.
  while (svc.status(id).state != service::JobState::kPaused) {
    ASSERT_NE(svc.status(id).state, service::JobState::kCompleted)
        << "job finished before the pause took effect";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::size_t paused_at = svc.status(id).epoch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(svc.status(id).epoch, paused_at);

  ASSERT_TRUE(svc.resume(id));
  // Progress must restart; then cancel to wind the long job down.
  while (svc.status(id).epoch <= paused_at &&
         svc.status(id).state != service::JobState::kCompleted) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(svc.cancel(id));
  svc.wait(id);
  EXPECT_EQ(svc.status(id).state, service::JobState::kCancelled);
}

TEST(TrainingService, UnknownSolverAndBadSpecFailAtSubmit) {
  Fixture f;
  service::TrainingService svc(f.service_options());
  service::JobSpec spec = f.job("no_such_solver");
  EXPECT_THROW((void)svc.submit(spec), std::invalid_argument);

  spec = f.job("sgd");
  spec.matrix = nullptr;  // neither dataset nor matrix
  EXPECT_THROW((void)svc.submit(spec), std::invalid_argument);

  spec = f.job("asgd");  // not checkpointable
  spec.checkpoint_path = ::testing::TempDir() + "asgd.ckpt";
  EXPECT_THROW((void)svc.submit(spec), std::invalid_argument);
}

TEST(TrainingService, ServiceLevelCheckpointResumeIsBitIdentical) {
  Fixture f;
  const std::string ckpt = ::testing::TempDir() + "service_resume.ckpt";

  // Uninterrupted reference.
  std::uint64_t reference_hash = 0;
  {
    service::TrainingService svc(f.service_options());
    const std::uint64_t id = svc.submit(f.job("is_sgd"));
    svc.wait(id);
    reference_hash = svc.status(id).model_hash;
    ASSERT_NE(reference_hash, 0u);
  }

  // "Crashed" run: checkpoint every 40 fences, cancel mid-flight — the
  // checkpoint file survives the service teardown like a kill would leave
  // it on disk.
  {
    service::TrainingService svc(f.service_options());
    service::JobSpec spec = f.job("is_sgd");
    spec.checkpoint_path = ckpt;
    spec.checkpoint_every = 40;
    const std::uint64_t id = svc.submit(spec);
    while (svc.status(id).epoch < 45 &&
           svc.status(id).state == service::JobState::kRunning) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    (void)svc.cancel(id);
    svc.wait(id);
  }

  // Fresh process stand-in: a brand-new service resumes from the file and
  // must land on the exact model the uninterrupted run produced.
  {
    service::TrainingService svc(f.service_options());
    service::JobSpec spec = f.job("is_sgd");
    spec.checkpoint_path = ckpt;
    spec.resume_from = ckpt;
    const std::uint64_t id = svc.submit(spec);
    svc.wait(id);
    const service::JobStatus s = svc.status(id);
    EXPECT_EQ(s.state, service::JobState::kCompleted) << s.message;
    EXPECT_EQ(s.model_hash, reference_hash)
        << "resumed model diverged from the uninterrupted run";
  }
  std::remove(ckpt.c_str());
}

TEST(Protocol, RoundTripOverInMemoryHandler) {
  Fixture f;
  // The wire submit takes a dataset path: write the problem out as LibSVM.
  const std::string dataset = ::testing::TempDir() + "service_protocol.libsvm";
  io::write_libsvm_file(dataset, *f.matrix);

  service::TrainingService svc(f.service_options());
  service::ProtocolHandler handler(svc);

  EXPECT_EQ(handler.handle_line("ping"), "ok pong");
  EXPECT_EQ(handler.handle_line("list"), "ok jobs=0");

  // cache_mb bounds the streaming reservation so the job fits the
  // fixture's 8 MiB service budget.
  const std::string response = handler.handle_line(
      "submit solver=sgd data=" + dataset +
      " objective=least_squares epochs=10 step=0.3 seed=9 l2=0.1 cache_mb=1");
  ASSERT_EQ(response.rfind("ok id=", 0), 0u) << response;
  const std::string id = response.substr(6);

  EXPECT_EQ(handler.handle_line("wait id=" + id).rfind("ok id=" + id, 0), 0u);
  const std::string status = handler.handle_line("status id=" + id);
  EXPECT_NE(status.find("state=completed"), std::string::npos) << status;
  EXPECT_NE(status.find("epoch=10/10"), std::string::npos) << status;
  EXPECT_EQ(status.find("model=0000000000000000"), std::string::npos)
      << "completed job must report a nonzero model hash: " << status;
  EXPECT_NE(handler.handle_line("list").find(id + ":completed"),
            std::string::npos);

  // Errors come back as single err lines, never as exceptions.
  EXPECT_EQ(handler.handle_line("status id=999"),
            "err unknown job id 999");
  EXPECT_EQ(handler.handle_line("bogus").rfind("err unknown verb", 0), 0u);
  EXPECT_EQ(handler.handle_line("status id=abc").rfind("err bad integer", 0),
            0u);
  EXPECT_EQ(handler.handle_line("submit solver=sgd").rfind("err", 0), 0u);
  EXPECT_EQ(
      handler.handle_line("submit solver=sgd data=/missing/file.libsvm")
          .rfind("err", 0),
      0u);

  EXPECT_FALSE(handler.shutdown_requested());
  EXPECT_EQ(handler.handle_line("shutdown"), "ok bye");
  EXPECT_TRUE(handler.shutdown_requested());
  std::remove(dataset.c_str());
}

}  // namespace
}  // namespace isasgd
