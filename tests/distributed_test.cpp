#include <gtest/gtest.h>

#include <unistd.h>

#include <any>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "io/binary.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/cluster.hpp"
#include "distributed/param_server.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"

namespace isasgd::distributed {
namespace {

using metrics::Evaluator;

struct Fixture {
  sparse::CsrMatrix data;
  objectives::LogisticLoss loss;
  Evaluator evaluator;

  explicit Fixture(std::size_t rows = 1200, std::size_t dim = 400,
                   double nnz = 10, double psi = 0.9)
      : data([&] {
          data::SyntheticSpec spec;
          spec.rows = rows;
          spec.dim = dim;
          spec.mean_row_nnz = nnz;
          spec.target_psi = psi;
          spec.label_noise = 0.02;
          return data::generate(spec);
        }()),
        evaluator(data, loss, objectives::Regularization::none(), 4) {}
};

solvers::SolverOptions base_options(std::size_t epochs = 5,
                                    double lambda = 0.5) {
  solvers::SolverOptions opt;
  opt.step_size = lambda;
  opt.epochs = epochs;
  opt.seed = 99;
  return opt;
}

// ---------- ClusterSpec cost model ----------

TEST(ClusterSpec, ValidatesParameters) {
  ClusterSpec bad;
  bad.nodes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ClusterSpec{};
  bad.bandwidth_bytes_per_second = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ClusterSpec{};
  bad.bytes_per_nnz = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ClusterSpec{}.validate());
}

TEST(ClusterSpec, ValidationNamesTheOffendingField) {
  // One validation implementation, and its message points at the field —
  // the operator should never have to bisect a spec by hand.
  auto message_for = [](auto&& mutate) {
    ClusterSpec spec;
    mutate(spec);
    try {
      spec.validate();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("(no throw)");
  };
  EXPECT_NE(message_for([](ClusterSpec& s) { s.nodes = 0; }).find("nodes"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.latency_seconds = -1; })
                .find("latency_seconds"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) {
              s.bandwidth_bytes_per_second = 0;
            }).find("bandwidth_bytes_per_second"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.compute_seconds_per_nnz = 0; })
                .find("compute_seconds_per_nnz"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.apply_seconds_per_nnz = -1; })
                .find("apply_seconds_per_nnz"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.bytes_per_nnz = 0; })
                .find("bytes_per_nnz"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.bytes_per_dense_coord = 0; })
                .find("bytes_per_dense_coord"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.max_outstanding_pushes = 0; })
                .find("max_outstanding_pushes"),
            std::string::npos);
  EXPECT_NE(message_for([](ClusterSpec& s) { s.node_speed = {1.0}; })
                .find("node_speed"),
            std::string::npos);
  // NaN rates are as nonsensical as non-positive ones.
  EXPECT_NE(message_for([](ClusterSpec& s) {
              s.compute_seconds_per_nnz = std::nan("");
            }).find("compute_seconds_per_nnz"),
            std::string::npos);
}

TEST(ClusterSpec, BuilderValidatesAtConfigurationTime) {
  // TrainerBuilder::cluster is the single configuration checkpoint: a bad
  // spec is rejected at build(), long before any solver runs.
  Fixture f(100, 40, 5);
  ClusterSpec bad;
  bad.nodes = 0;
  try {
    (void)core::TrainerBuilder()
        .data(f.data)
        .objective(f.loss)
        .cluster(bad)
        .build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nodes"), std::string::npos);
  }
}

TEST(ClusterSpec, MessageCostIsLatencyPlusBytes) {
  ClusterSpec spec;
  spec.latency_seconds = 1e-4;
  spec.bandwidth_bytes_per_second = 1e6;
  EXPECT_NEAR(spec.message_seconds(1000), 1e-4 + 1e-3, 1e-12);
  EXPECT_NEAR(spec.sparse_push_seconds(10),
              1e-4 + 10.0 * spec.bytes_per_nnz / 1e6, 1e-12);
}

TEST(ClusterSpec, SparsePushIsOrdersCheaperThanDenseAllreduce) {
  // The §1.2 argument at cluster scale: an index-compressed push of ~10 nnz
  // vs a ring all-reduce of a d = 1e6 dense vector.
  ClusterSpec spec;
  spec.nodes = 8;
  const double push = spec.sparse_push_seconds(10);
  const double reduce = spec.ring_allreduce_seconds(1'000'000);
  EXPECT_GT(reduce / push, 100.0);
}

TEST(ClusterSpec, RingAllreduceScalesWithDimension) {
  ClusterSpec spec;
  spec.nodes = 4;
  spec.latency_seconds = 0;  // isolate the bandwidth term
  const double small = spec.ring_allreduce_seconds(1000);
  const double large = spec.ring_allreduce_seconds(100000);
  EXPECT_NEAR(large / small, 100.0, 1e-6);
  ClusterSpec single;
  single.nodes = 1;
  EXPECT_DOUBLE_EQ(single.ring_allreduce_seconds(5000), 0.0);
}

TEST(ClusterSpec, ComputeCostLinearInNnz) {
  ClusterSpec spec;
  EXPECT_NEAR(spec.compute_seconds(50), 50 * spec.compute_seconds_per_nnz,
              1e-18);
}

// ---------- Parameter server ----------

TEST(ParamServer, ConvergesOnClassification) {
  Fixture f;
  ClusterSpec spec;
  spec.nodes = 4;
  const solvers::Trace t = run_param_server(
      f.data, f.loss, base_options(8), spec, true, f.evaluator.as_fn());
  ASSERT_EQ(t.points.size(), 9u);
  EXPECT_LT(t.points.back().rmse, 0.62 * t.points.front().rmse);
  EXPECT_LT(t.best_error_rate(), 0.15);
  EXPECT_EQ(t.algorithm, "ps_is_asgd");
}

TEST(ParamServer, UniformVariantConvergesToo) {
  Fixture f;
  ClusterSpec spec;
  spec.nodes = 4;
  const solvers::Trace t = run_param_server(
      f.data, f.loss, base_options(8), spec, false, f.evaluator.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.62 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "ps_asgd");
}

TEST(ParamServer, AppliesEveryUpdateEachEpoch) {
  Fixture f(600, 200, 8);
  ClusterSpec spec;
  spec.nodes = 3;
  ParamServerReport report;
  (void)run_param_server(f.data, f.loss, base_options(4), spec, true,
                         f.evaluator.as_fn(), &report);
  EXPECT_EQ(report.messages, 4u * 600u);
  EXPECT_GT(report.bytes_sent, 0u);
  EXPECT_GT(report.simulated_seconds, 0.0);
}

TEST(ParamServer, StalenessGrowsWithNodeCount) {
  // The emergent τ tracks the concurrency, the paper's "τ is linearly
  // related to the concurrency" assumption — now measured, not assumed.
  Fixture f(1000, 300, 10);
  std::vector<double> staleness;
  for (std::size_t nodes : {2u, 4u, 8u}) {
    ClusterSpec spec;
    spec.nodes = nodes;
    ParamServerReport report;
    (void)run_param_server(f.data, f.loss, base_options(2), spec, true,
                           f.evaluator.as_fn(), &report);
    staleness.push_back(report.mean_staleness_updates);
  }
  EXPECT_LT(staleness[0], staleness[1]);
  EXPECT_LT(staleness[1], staleness[2]);
}

TEST(ParamServer, SlowNetworkStretchesSimTimeNotStaleness) {
  // With flow control, staleness in *update counts* is pinned by the send
  // window (≈ nodes × window) whatever the latency; the latency shows up in
  // simulated seconds instead. Both facets pinned here.
  Fixture f(800, 300, 10);
  ClusterSpec fast;
  fast.nodes = 4;
  ClusterSpec slow = fast;
  slow.latency_seconds = 100 * fast.latency_seconds;
  ParamServerReport fast_report, slow_report;
  (void)run_param_server(f.data, f.loss, base_options(2), fast, true,
                         f.evaluator.as_fn(), &fast_report);
  (void)run_param_server(f.data, f.loss, base_options(2), slow, true,
                         f.evaluator.as_fn(), &slow_report);
  EXPECT_GT(slow_report.simulated_seconds, 10 * fast_report.simulated_seconds);
  const double window_bound =
      static_cast<double>(fast.nodes * fast.max_outstanding_pushes);
  EXPECT_LE(fast_report.mean_staleness_updates, window_bound);
  EXPECT_LE(slow_report.mean_staleness_updates, window_bound);
}

TEST(ParamServer, WiderSendWindowRaisesStaleness) {
  Fixture f(800, 300, 10);
  ClusterSpec narrow;
  narrow.nodes = 4;
  narrow.max_outstanding_pushes = 1;
  ClusterSpec wide = narrow;
  wide.max_outstanding_pushes = 32;
  ParamServerReport narrow_report, wide_report;
  (void)run_param_server(f.data, f.loss, base_options(2), narrow, true,
                         f.evaluator.as_fn(), &narrow_report);
  (void)run_param_server(f.data, f.loss, base_options(2), wide, true,
                         f.evaluator.as_fn(), &wide_report);
  EXPECT_GT(wide_report.mean_staleness_updates,
            2 * narrow_report.mean_staleness_updates);
  // The wider pipeline hides latency: more throughput, less simulated time.
  EXPECT_LT(wide_report.simulated_seconds, narrow_report.simulated_seconds);
}

TEST(ParamServer, MoreNodesFinishSoonerInSimTime) {
  // Near-linear speedup regime: compute dominates at default prices.
  Fixture f(2000, 500, 12);
  double prev = 1e100;
  for (std::size_t nodes : {1u, 4u, 16u}) {
    ClusterSpec spec;
    spec.nodes = nodes;
    ParamServerReport report;
    (void)run_param_server(f.data, f.loss, base_options(2), spec, true,
                           f.evaluator.as_fn(), &report);
    EXPECT_LT(report.simulated_seconds, prev) << nodes << " nodes";
    prev = report.simulated_seconds;
  }
}

TEST(ParamServer, ImportanceBalancingEqualizesNodePhis) {
  // High-ρ data: the balanced partition's Φ spread must be far tighter than
  // a raw shuffle's (the §2.3/2.4 story at node granularity).
  data::SyntheticSpec spec;
  spec.rows = 400;
  spec.dim = 200;
  spec.mean_row_nnz = 8;
  spec.target_psi = 0.6;  // wide Lipschitz spread
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  Evaluator evaluator(data, loss, objectives::Regularization::none(), 2);
  ClusterSpec cluster;
  cluster.nodes = 8;

  auto opt = base_options(1);
  opt.partition.strategy = partition::Strategy::kGreedyLpt;
  ParamServerReport balanced;
  (void)run_param_server(data, loss, opt, cluster, true, evaluator.as_fn(),
                         &balanced);
  opt.partition.strategy = partition::Strategy::kNone;
  ParamServerReport raw;
  (void)run_param_server(data, loss, opt, cluster, true, evaluator.as_fn(),
                         &raw);
  EXPECT_EQ(balanced.applied_strategy, partition::Strategy::kGreedyLpt);
  EXPECT_LT(balanced.phi_imbalance, 0.5 * raw.phi_imbalance);
  EXPECT_LT(balanced.phi_imbalance, 0.05);
}

TEST(ParamServer, DeterministicForFixedSeed) {
  Fixture f(500, 150, 8);
  ClusterSpec spec;
  spec.nodes = 4;
  auto opt = base_options(3);
  opt.keep_final_model = true;
  const solvers::Trace a =
      run_param_server(f.data, f.loss, opt, spec, true, f.evaluator.as_fn());
  const solvers::Trace b =
      run_param_server(f.data, f.loss, opt, spec, true, f.evaluator.as_fn());
  ASSERT_EQ(a.final_model.size(), b.final_model.size());
  for (std::size_t j = 0; j < a.final_model.size(); ++j) {
    ASSERT_EQ(a.final_model[j], b.final_model[j]);
  }
  EXPECT_DOUBLE_EQ(a.train_seconds, b.train_seconds);
}

// ---------- All-reduce ----------

TEST(Allreduce, ConvergesOnClassification) {
  Fixture f;
  ClusterSpec spec;
  spec.nodes = 4;
  // A round averages k·b gradients into one λ step, so per-sample progress
  // is b·k× slower than sequential SGD; keep the batch small and run longer.
  auto opt = base_options(10, 1.0);
  opt.batch_size = 2;
  const solvers::Trace t =
      run_allreduce_sgd(f.data, f.loss, opt, spec, false, f.evaluator.as_fn());
  EXPECT_LT(t.points.back().rmse, 0.75 * t.points.front().rmse);
  EXPECT_EQ(t.algorithm, "allreduce_sgd");
}

TEST(Allreduce, RoundCountMatchesQuota) {
  Fixture f(600, 100, 8);
  ClusterSpec spec;
  spec.nodes = 4;
  auto opt = base_options(3);
  opt.batch_size = 5;  // 4 nodes × 5 = 20 samples/round → 30 rounds/epoch
  AllreduceReport report;
  (void)run_allreduce_sgd(f.data, f.loss, opt, spec, false,
                          f.evaluator.as_fn(), &report);
  EXPECT_EQ(report.rounds, 3u * 30u);
  EXPECT_GT(report.comm_fraction, 0.0);
  EXPECT_LT(report.comm_fraction, 1.0);
}

TEST(Allreduce, CommunicationShareGrowsWithDimension) {
  // The dense collective's cost is Θ(d) while compute is Θ(nnz): as d rises
  // at fixed nnz the simulated run becomes communication-bound.
  ClusterSpec spec;
  spec.nodes = 4;
  std::vector<double> frac;
  for (std::size_t dim : {200u, 20000u}) {
    Fixture f(400, dim, 8);
    AllreduceReport report;
    (void)run_allreduce_sgd(f.data, f.loss, base_options(1), spec, false,
                            f.evaluator.as_fn(), &report);
    frac.push_back(report.comm_fraction);
  }
  EXPECT_GT(frac[1], frac[0]);
}

// ---------- heterogeneous node speeds (stragglers) ----------

TEST(ClusterSpec, ValidatesNodeSpeeds) {
  ClusterSpec spec;
  spec.nodes = 3;
  spec.node_speed = {1.0, 2.0};  // wrong arity
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.node_speed = {1.0, 0.0, 1.0};  // non-positive
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.node_speed = {1.0, 2.0, 0.5};
  EXPECT_NO_THROW(spec.validate());
  EXPECT_DOUBLE_EQ(spec.speed(2), 0.5);
  EXPECT_DOUBLE_EQ(spec.node_compute_seconds(2, 10),
                   2.0 * spec.compute_seconds(10));
  spec.node_speed.clear();
  EXPECT_DOUBLE_EQ(spec.speed(2), 1.0);
}

TEST(Straggler, NetworkBoundRegimeHidesComputeStragglers) {
  // Under the default prices a gradient costs ~20 ns while a round trip is
  // ~100 µs: every worker spends its life stalled on the flow-control
  // window, so a 4x compute slowdown on one node is *invisible* — the
  // network, not the CPU, sets the pace. Pin that insensitivity.
  Fixture f(1200, 5000, 10);
  ClusterSpec uniform;
  uniform.nodes = 4;
  ClusterSpec straggler = uniform;
  straggler.node_speed = {1.0, 1.0, 1.0, 0.25};
  ParamServerReport ps_uniform, ps_straggler;
  (void)run_param_server(f.data, f.loss, base_options(2), uniform, true,
                         f.evaluator.as_fn(), &ps_uniform);
  (void)run_param_server(f.data, f.loss, base_options(2), straggler, true,
                         f.evaluator.as_fn(), &ps_straggler);
  EXPECT_NEAR(ps_straggler.simulated_seconds / ps_uniform.simulated_seconds,
              1.0, 0.1);
}

/// Compute-bound prices: gradients cost microseconds, messages ~nothing.
ClusterSpec compute_bound_cluster() {
  ClusterSpec spec;
  spec.nodes = 4;
  spec.latency_seconds = 1e-7;
  spec.compute_seconds_per_nnz = 1e-6;  // 10 nnz → 10 µs per gradient
  return spec;
}

TEST(Straggler, ComputeBoundRegimeIsStragglerBoundInBothSolvers) {
  // With equal static shards the epoch cannot end before the slow node
  // finishes its quota — *neither* solver escapes a 4x compute straggler
  // (asynchrony reorders work, it does not rebalance it). This measurement
  // is what motivates speed-weighted sharding.
  Fixture f(1200, 5000, 10);
  const ClusterSpec uniform = compute_bound_cluster();
  ClusterSpec straggler = uniform;
  straggler.node_speed = {1.0, 1.0, 1.0, 0.25};

  ParamServerReport ps_uniform, ps_straggler;
  (void)run_param_server(f.data, f.loss, base_options(2), uniform, true,
                         f.evaluator.as_fn(), &ps_uniform);
  (void)run_param_server(f.data, f.loss, base_options(2), straggler, true,
                         f.evaluator.as_fn(), &ps_straggler);
  const double ps_ratio =
      ps_straggler.simulated_seconds / ps_uniform.simulated_seconds;
  EXPECT_GT(ps_ratio, 2.5);
  EXPECT_LT(ps_ratio, 4.5);

  auto opt = base_options(2);
  opt.batch_size = 4;
  AllreduceReport ar_uniform, ar_straggler;
  (void)run_allreduce_sgd(f.data, f.loss, opt, uniform, false,
                          f.evaluator.as_fn(), &ar_uniform);
  (void)run_allreduce_sgd(f.data, f.loss, opt, straggler, false,
                          f.evaluator.as_fn(), &ar_straggler);
  EXPECT_GT(ar_straggler.simulated_seconds,
            2.0 * ar_uniform.simulated_seconds);
}

TEST(Straggler, StragglerSerialisesTheEpochTail) {
  // Counter-intuitive but correct: the straggler *lowers* mean staleness.
  // Its own updates are staler (many fast updates land during each slow
  // compute), but once the fast nodes exhaust their equal-share quotas the
  // slow node runs the rest of the epoch alone — zero concurrency, zero
  // staleness — and that serialised tail dominates the mean. Asynchrony's
  // parallelism collapses exactly where the wall-clock is lost; both
  // symptoms (lower staleness, longer epoch) share the static-sharding
  // cause.
  Fixture f(1000, 400, 10);
  const ClusterSpec uniform = compute_bound_cluster();
  ClusterSpec straggler = uniform;
  straggler.node_speed = {1.0, 1.0, 1.0, 0.1};
  ParamServerReport uniform_report, straggler_report;
  (void)run_param_server(f.data, f.loss, base_options(1), uniform, true,
                         f.evaluator.as_fn(), &uniform_report);
  (void)run_param_server(f.data, f.loss, base_options(1), straggler, true,
                         f.evaluator.as_fn(), &straggler_report);
  EXPECT_LT(straggler_report.mean_staleness_updates,
            uniform_report.mean_staleness_updates);
  EXPECT_GT(straggler_report.simulated_seconds,
            3.0 * uniform_report.simulated_seconds);
}

// ---------- Registry integration: the dist.* solvers ----------

TEST(DistRegistry, TrainerPathReproducesEngineBitForBit) {
  // The acceptance bar for the fold-in: dispatching through TrainerBuilder
  // → SolverRegistry ("dist.ps.is_asgd", cluster spec on the builder) must
  // reproduce the engine-level free function exactly — same final model,
  // same simulated clock, bit for bit.
  Fixture f(500, 150, 8);
  ClusterSpec spec;
  spec.nodes = 4;
  auto opt = base_options(3);
  opt.keep_final_model = true;

  metrics::Evaluator engine_eval(f.data, f.loss,
                                 objectives::Regularization::none(), 1);
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(f.data)
                                    .objective(f.loss)
                                    .cluster(spec)
                                    .eval_threads(1)
                                    .build();
  const struct {
    const char* registry_name;
    bool use_importance;
  } cases[] = {{"dist.ps.is_asgd", true}, {"dist.ps.asgd", false}};
  for (const auto& c : cases) {
    const solvers::Trace direct = run_param_server(
        f.data, f.loss, opt, spec, c.use_importance, engine_eval.as_fn());
    const solvers::Trace via_registry = trainer.train(c.registry_name, opt);
    EXPECT_TRUE(via_registry.simulated_time);
    EXPECT_EQ(via_registry.algorithm, direct.algorithm) << c.registry_name;
    ASSERT_EQ(via_registry.final_model.size(), direct.final_model.size());
    for (std::size_t j = 0; j < direct.final_model.size(); ++j) {
      ASSERT_EQ(via_registry.final_model[j], direct.final_model[j])
          << c.registry_name << " coordinate " << j;
    }
    ASSERT_EQ(via_registry.points.size(), direct.points.size());
    for (std::size_t e = 0; e < direct.points.size(); ++e) {
      ASSERT_EQ(via_registry.points[e].seconds, direct.points[e].seconds)
          << c.registry_name << " epoch " << e;
      ASSERT_EQ(via_registry.points[e].objective, direct.points[e].objective)
          << c.registry_name << " epoch " << e;
    }
  }
  // Same contract for the synchronous baseline.
  auto ar_opt = opt;
  ar_opt.batch_size = 2;
  const solvers::Trace direct = run_allreduce_sgd(f.data, f.loss, ar_opt, spec,
                                                  false, engine_eval.as_fn());
  const solvers::Trace via_registry =
      trainer.train("dist.allreduce.sgd", ar_opt);
  ASSERT_EQ(via_registry.final_model.size(), direct.final_model.size());
  for (std::size_t j = 0; j < direct.final_model.size(); ++j) {
    ASSERT_EQ(via_registry.final_model[j], direct.final_model[j]);
  }
  ASSERT_EQ(via_registry.train_seconds, direct.train_seconds);
}

TEST(DistRegistry, ObserverReceivesParamServerReportAndCanStopEarly) {
  Fixture f(400, 120, 8);
  ClusterSpec spec;
  spec.nodes = 3;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(f.data)
                                    .objective(f.loss)
                                    .cluster(spec)
                                    .eval_threads(1)
                                    .build();
  struct Capture : solvers::TrainingObserver {
    ParamServerReport report;
    bool have_report = false;
    std::size_t epochs_seen = 0;
    void on_diagnostics(const std::any& d) override {
      if (const auto* r = std::any_cast<ParamServerReport>(&d)) {
        report = *r;
        have_report = true;
      }
    }
    bool on_epoch(const solvers::TracePoint& p) override {
      ++epochs_seen;
      return p.epoch < 2;  // stop after epoch 2's fence
    }
  } capture;
  const auto trace = trainer.train("dist.ps.is_asgd", base_options(6), &capture);
  EXPECT_TRUE(capture.have_report);
  EXPECT_GT(capture.report.messages, 0u);
  EXPECT_GT(capture.report.simulated_seconds, 0.0);
  // Early stop honoured at the epoch fence: epochs 0 (initial), 1, 2.
  EXPECT_EQ(trace.points.size(), 3u);
}

TEST(DistRegistry, ContextClusterIsSharedFallbackAndBuilderOverridesIt) {
  // ExecutionContext::set_cluster prices every Trainer sharing the context
  // (the sweep pattern); TrainerBuilder::cluster stays private to its own
  // Trainer and wins over the context — building one Trainer never changes
  // what a sibling prices against.
  Fixture f(400, 120, 8);
  auto context = std::make_shared<core::ExecutionContext>(1);
  ClusterSpec shared;
  shared.nodes = 2;
  context->set_cluster(shared);

  const core::Trainer from_context = core::TrainerBuilder()
                                         .data(f.data)
                                         .objective(f.loss)
                                         .execution(context)
                                         .build();
  ClusterSpec own = shared;
  own.nodes = 5;
  const core::Trainer overriding = core::TrainerBuilder()
                                       .data(f.data)
                                       .objective(f.loss)
                                       .execution(context)
                                       .cluster(own)
                                       .build();
  // Trace::threads records the node count the run actually priced against.
  EXPECT_EQ(from_context.train("dist.ps.asgd", base_options(1)).threads, 2u);
  EXPECT_EQ(overriding.train("dist.ps.asgd", base_options(1)).threads, 5u);
  // The override never leaked into the shared context or its sibling.
  ASSERT_NE(context->cluster(), nullptr);
  EXPECT_EQ(context->cluster()->nodes, 2u);
  EXPECT_EQ(from_context.train("dist.ps.asgd", base_options(1)).threads, 2u);
  // set_cluster validates like the builder does, naming the field.
  ClusterSpec bad;
  bad.latency_seconds = -1;
  try {
    context->set_cluster(bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("latency_seconds"),
              std::string::npos);
  }
}

TEST(DistRegistry, DefaultClusterSpecAppliesWhenNoneConfigured) {
  // Without TrainerBuilder::cluster the dist.* solvers run under the
  // documented default (4-node 10 GbE) instead of failing.
  Fixture f(300, 80, 6);
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(f.data)
                                    .objective(f.loss)
                                    .eval_threads(1)
                                    .build();
  const auto trace = trainer.train("dist.ps.asgd", base_options(2));
  EXPECT_EQ(trace.points.size(), 3u);
  EXPECT_EQ(trace.threads, ClusterSpec{}.nodes);
  EXPECT_LT(trace.points.back().rmse, trace.points.front().rmse);
}

// ---------- Shard-major path: DataSource partitions as node shards ----------

TEST(ParamServerSharded, ChunkedSourceConvergesAndRerunsBitPure) {
  Fixture f(900, 300, 10);
  const data::InMemorySource chunked(f.data, /*shard_rows=*/128);  // 8 shards
  ASSERT_GT(chunked.shard_count(), 1u);
  ClusterSpec spec;
  spec.nodes = 3;
  auto opt = base_options(6);
  opt.keep_final_model = true;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .source(chunked)
                                    .objective(f.loss)
                                    .cluster(spec)
                                    .eval_threads(1)
                                    .build();
  const auto first = trainer.train("dist.ps.is_asgd", opt);
  EXPECT_LT(first.points.back().rmse, 0.7 * first.points.front().rmse);
  EXPECT_EQ(first.threads, 3u);
  const auto second = trainer.train("dist.ps.is_asgd", opt);
  ASSERT_EQ(first.final_model.size(), second.final_model.size());
  for (std::size_t j = 0; j < first.final_model.size(); ++j) {
    ASSERT_EQ(first.final_model[j], second.final_model[j]);
  }
  ASSERT_EQ(first.train_seconds, second.train_seconds);
}

TEST(ParamServerSharded, StreamingSourceMatchesChunkedBitForBit) {
  // The tentpole claim end-to-end: an out-of-core StreamingSource (budget
  // far below the dataset, so shards really are evicted and re-read) feeds
  // the simulated cluster shard-by-shard and reproduces the chunked
  // in-memory reference with the same shard geometry bit for bit — the
  // sampling schedule and arithmetic are pure functions of the seed and
  // geometry, never of what the cache did.
  Fixture f(640, 200, 8);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("isasgd_dist_stream_" + std::to_string(::getpid()) + ".bin"))
          .string();
  io::write_dataset_binary_file(path, f.data);

  constexpr std::size_t kShardRows = 80;  // 8 shards
  data::StreamingOptions sopt;
  sopt.shard_rows = kShardRows;
  // ~2 shards of budget: far below the dataset plus the per-node pinned
  // shards, so eviction pressure is real.
  sopt.memory_budget_bytes =
      2 * kShardRows * 8 * (sizeof(sparse::index_t) + sizeof(double));
  const data::StreamingSource streaming(path, sopt);
  const data::InMemorySource chunked(f.data, kShardRows);
  ASSERT_EQ(streaming.shard_count(), chunked.shard_count());

  ClusterSpec cluster;
  cluster.nodes = 3;
  auto opt = base_options(4);
  opt.keep_final_model = true;
  auto train = [&](const data::DataSource& source) {
    const core::Trainer trainer = core::TrainerBuilder()
                                      .source(source)
                                      .objective(f.loss)
                                      .cluster(cluster)
                                      .eval_threads(1)
                                      .build();
    return trainer.train("dist.ps.is_asgd", opt);
  };
  const auto from_stream = train(streaming);
  const auto from_chunked = train(chunked);

  ASSERT_EQ(from_stream.final_model.size(), from_chunked.final_model.size());
  for (std::size_t j = 0; j < from_stream.final_model.size(); ++j) {
    ASSERT_EQ(from_stream.final_model[j], from_chunked.final_model[j])
        << "coordinate " << j;
  }
  ASSERT_EQ(from_stream.points.size(), from_chunked.points.size());
  for (std::size_t e = 0; e < from_stream.points.size(); ++e) {
    ASSERT_EQ(from_stream.points[e].seconds, from_chunked.points[e].seconds);
    ASSERT_EQ(from_stream.points[e].objective,
              from_chunked.points[e].objective);
  }
  EXPECT_LT(from_stream.points.back().rmse, from_stream.points.front().rmse);
  std::remove(path.c_str());
}

TEST(ParamServerSharded, ShardBalancingTightensNodePhiSpread) {
  // The Algorithm-4 story at shard granularity: dealing shards to nodes by
  // importance totals (greedy LPT over shard Φ) must beat an arbitrary
  // shard order on skewed data.
  data::SyntheticSpec spec;
  spec.rows = 1024;
  spec.dim = 400;
  spec.mean_row_nnz = 8;
  spec.target_psi = 0.6;  // wide Lipschitz spread
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const data::InMemorySource chunked(data, /*shard_rows=*/64);  // 16 shards
  metrics::Evaluator ev(chunked, loss, objectives::Regularization::none(), 1);
  ClusterSpec cluster;
  cluster.nodes = 4;

  auto run_with = [&](partition::Strategy strategy) {
    auto opt = base_options(1);
    opt.partition.strategy = strategy;
    ParamServerReport report;
    (void)run_param_server_sharded(chunked, loss, opt, cluster, true,
                                   ev.as_fn(), &report);
    return report;
  };
  const ParamServerReport balanced = run_with(partition::Strategy::kGreedyLpt);
  const ParamServerReport raw = run_with(partition::Strategy::kNone);
  EXPECT_EQ(balanced.applied_strategy, partition::Strategy::kGreedyLpt);
  EXPECT_LE(balanced.phi_imbalance, raw.phi_imbalance);
  EXPECT_LT(balanced.phi_imbalance, 0.1);
}

TEST(Allreduce, AsyncSparsePushBeatsDenseAllreduceOnSparseHighDim) {
  // The headline distributed claim: same data, same epochs, simulated
  // seconds — the sparse async server finishes far sooner when d ≫ nnz.
  Fixture f(800, 20000, 8);
  ClusterSpec spec;
  spec.nodes = 4;
  ParamServerReport ps;
  AllreduceReport ar;
  (void)run_param_server(f.data, f.loss, base_options(2), spec, true,
                         f.evaluator.as_fn(), &ps);
  (void)run_allreduce_sgd(f.data, f.loss, base_options(2), spec, false,
                          f.evaluator.as_fn(), &ar);
  EXPECT_LT(ps.simulated_seconds * 5, ar.simulated_seconds);
}

}  // namespace
}  // namespace isasgd::distributed
