// Solver conformance suite: every solver registered in SolverRegistry —
// including ones this file has never heard of — must drive a small
// strongly-convex least-squares problem to its closed-form optimum, end to
// end through the TrainerBuilder → Trainer → registry path. A newly
// registered solver is picked up and exercised automatically; a solver that
// cannot optimise the easiest problem in the suite's repertoire fails here
// long before it pollutes any experiment.
//
//   F(w) = (1/n) Σ ½(x_iᵀw − y_i)² + ½η‖w‖²,
//   w*  solves (XᵀX/n + ηI) w = Xᵀy/n  (unique: F is η-strongly convex).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/trainer.hpp"
#include "objectives/least_squares.hpp"
#include "solvers/solver.hpp"
#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd {
namespace {

constexpr std::size_t kRows = 96;
constexpr std::size_t kDim = 8;
constexpr double kEta = 0.1;  // strong convexity; also keeps ‖w*‖ modest

/// Dense rows scaled to ‖x‖² ≈ 1 keep every per-sample Lipschitz constant
/// near 1, so one step size suits all solvers (incl. the IS family, whose
/// importance weights degenerate gracefully to near-uniform here).
sparse::CsrMatrix conformance_problem() {
  util::Rng rng(20260728);
  sparse::CsrBuilder builder(kDim);
  std::vector<double> teacher(kDim);
  for (auto& t : teacher) t = 2.0 * util::uniform_double(rng) - 1.0;
  std::vector<sparse::index_t> idx(kDim);
  std::vector<sparse::value_t> val(kDim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(kDim));
  for (std::size_t i = 0; i < kRows; ++i) {
    double margin = 0;
    for (std::size_t j = 0; j < kDim; ++j) {
      idx[j] = static_cast<sparse::index_t>(j);
      val[j] = scale * (2.0 * util::uniform_double(rng) - 1.0) * 1.7;
      margin += val[j] * teacher[j];
    }
    const double y = margin + 0.01 * (2.0 * util::uniform_double(rng) - 1.0);
    builder.add_row({idx.data(), idx.size()}, {val.data(), val.size()}, y);
  }
  return builder.build();
}

/// Solves the d×d normal equations by Gaussian elimination with partial
/// pivoting — d = 8, so this is the ground truth, not an approximation.
std::vector<double> closed_form_optimum(const sparse::CsrMatrix& data) {
  const std::size_t d = data.dim();
  const double n = static_cast<double>(data.rows());
  std::vector<std::vector<double>> a(d, std::vector<double>(d + 1, 0.0));
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto x = data.row(i);
    for (std::size_t p = 0; p < x.nnz(); ++p) {
      for (std::size_t q = 0; q < x.nnz(); ++q) {
        a[x.index(p)][x.index(q)] += x.value(p) * x.value(q) / n;
      }
      a[x.index(p)][d] += x.value(p) * data.label(i) / n;
    }
  }
  for (std::size_t j = 0; j < d; ++j) a[j][j] += kEta;

  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col || a[r][col] == 0.0) continue;
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c <= d; ++c) a[r][c] -= f * a[col][c];
    }
  }
  std::vector<double> w(d);
  for (std::size_t j = 0; j < d; ++j) w[j] = a[j][d] / a[j][j];
  return w;
}

double objective_at(const core::Trainer& trainer, std::span<const double> w) {
  return trainer.evaluate(w).objective;
}

/// Epochs/step tolerance tiers by capability: serial variance-reduced
/// solvers converge linearly (tight gate); plain stochastic solvers carry a
/// decayed-step noise floor; the async ones add bounded race noise on top,
/// and the simulated-time solvers (dist.*/sim.*) add emergent staleness and
/// round-averaged steps — deterministic, but the loosest tier.
struct Budget {
  double gap_tol;
};

Budget budget_for(const solvers::SolverCapabilities& caps) {
  if (caps.simulated_time) return {1e-2};
  if (caps.variance_reduced && !caps.parallel) return {1e-8};
  if (!caps.parallel) return {2e-3};
  return {5e-3};
}

class Conformance : public ::testing::TestWithParam<std::string> {};

TEST_P(Conformance, ReachesClosedFormOptimum) {
  const std::string name = GetParam();
  const auto& registry = solvers::SolverRegistry::instance();
  const solvers::Solver* solver = registry.find(name);
  ASSERT_NE(solver, nullptr);

  static const sparse::CsrMatrix data = conformance_problem();
  static const std::vector<double> w_star = closed_form_optimum(data);
  objectives::LeastSquaresLoss loss;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .l2(kEta)
                                    .eval_threads(1)
                                    .build();
  const double f_star = objective_at(trainer, w_star);

  solvers::SolverOptions opt;
  opt.epochs = 120;
  opt.step_size = 0.5;
  opt.step_decay = 0.93;  // anneals the noise floor without stalling early
  opt.threads = 2;
  opt.update_policy = solvers::UpdatePolicy::kAtomic;
  opt.seed = 4242;
  opt.keep_final_model = true;

  const solvers::Trace trace = trainer.train(name, opt);
  ASSERT_FALSE(trace.final_model.empty()) << name;
  const double f_final = objective_at(trainer, trace.final_model);
  const double gap = f_final - f_star;
  const Budget budget = budget_for(solver->capabilities());

  // The optimum really is the optimum: no solver may beat it by more than
  // fp noise (a negative gap beyond noise means the closed form is wrong).
  EXPECT_GT(gap, -1e-10) << name;
  EXPECT_LT(gap, budget.gap_tol)
      << name << ": F(final)=" << f_final << " F(w*)=" << f_star;
}

/// The suite enumerates the registry at test-registration time, so solvers
/// registered from any linked TU — including future ones — are covered
/// without editing this file.
INSTANTIATE_TEST_SUITE_P(
    AllRegisteredSolvers, Conformance,
    ::testing::ValuesIn(solvers::SolverRegistry::instance().list()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      // gtest names admit [A-Za-z0-9_] only: normalize, then flatten the
      // dotted family prefixes ("dist.ps.is_asgd" → "dist_ps_is_asgd").
      std::string name = solvers::SolverRegistry::normalize(info.param);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(ConformanceSuite, CoversEveryRegisteredSolver) {
  // Guard against an empty registry silently skipping the whole suite:
  // 13 seed solvers + the dist.*/sim.* simulated family.
  EXPECT_GE(solvers::SolverRegistry::instance().list().size(), 18u);
}

}  // namespace
}  // namespace isasgd
